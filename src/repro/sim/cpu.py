"""Simulated CPU-cycle accounting.

OS API code charges cycles as it executes (parameter validation, copies,
table walks...).  The cycles charged while a request handler runs are turned
into simulated service time by the server process model, so the *content* of
the executed code — including any mutation — directly shapes the measured
performance.  This is how a mutant that, say, loses a cache-lookup branch
shows up as a throughput regression rather than as an error.

The meter also enforces a per-operation sanity budget: a mutant that turns a
small retry loop into a multi-thousand-iteration spin charges an enormous
number of cycles and trips :class:`~repro.sim.errors.CpuBudgetExceeded`,
which the process model reports as a CPU-hogging worker (the paper's KCP
condition).
"""

from repro.sim.errors import CpuBudgetExceeded

__all__ = ["CpuMeter"]


class CpuMeter:
    """Accumulates simulated CPU cycles for one process.

    Parameters
    ----------
    speed_hz:
        Simulated cycles per simulated second; converts cycles to time.
    operation_budget:
        Maximum cycles a single metered operation may charge before the
        meter raises :class:`CpuBudgetExceeded`.  ``None`` disables the
        check (used by substrate unit tests).
    """

    def __init__(self, speed_hz=50_000_000, operation_budget=None):
        if speed_hz <= 0:
            raise ValueError("speed_hz must be positive")
        self.speed_hz = speed_hz
        self.operation_budget = operation_budget
        self.total_cycles = 0
        self._operation_cycles = 0
        self._operation_active = False

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, cycles):
        """Charge ``cycles`` to the meter.

        Negative charges are clamped to zero so a mutated arithmetic
        expression cannot create time out of nothing.
        """
        if cycles < 0:
            cycles = 0
        cycles = int(cycles)
        self.total_cycles += cycles
        if self._operation_active:
            self._operation_cycles += cycles
            if (
                self.operation_budget is not None
                and self._operation_cycles > self.operation_budget
            ):
                raise CpuBudgetExceeded(
                    f"operation exceeded CPU budget "
                    f"({self._operation_cycles} > {self.operation_budget})",
                    cycles=self._operation_cycles,
                )

    # ------------------------------------------------------------------
    # Per-operation bracketing
    # ------------------------------------------------------------------
    def begin_operation(self):
        """Start metering one operation (e.g. handling one HTTP request)."""
        self._operation_active = True
        self._operation_cycles = 0

    def end_operation(self):
        """Stop metering and return the cycles charged by the operation."""
        self._operation_active = False
        return self._operation_cycles

    @property
    def operation_cycles(self):
        """Cycles charged by the operation in progress (or the last one)."""
        return self._operation_cycles

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def cycles_to_seconds(self, cycles):
        return cycles / self.speed_hz

    def seconds_to_cycles(self, seconds):
        return int(seconds * self.speed_hz)

    def __repr__(self):
        return (
            f"CpuMeter(speed_hz={self.speed_hz}, "
            f"total_cycles={self.total_cycles})"
        )
