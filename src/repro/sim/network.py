"""Network link model.

The testbed in the paper is a single 100 Mbps Ethernet segment between the
client machine and the server machine; SPECWeb99 additionally throttles each
simultaneous connection to roughly last-mile modem speed (at most ~400 kbps)
so that the *number of conforming connections* — not raw LAN bandwidth — is
the headline metric.

:class:`NetworkLink` models both effects: a shared link capacity and a
per-connection cap.  Transfer time for one response is computed analytically
from the number of concurrently active transfers, which is accurate enough
for the benchmark's purposes and keeps the event count low.
"""

__all__ = ["NetworkLink"]


class NetworkLink:
    """A shared full-duplex link with a per-connection bandwidth cap.

    Parameters
    ----------
    bandwidth_bps:
        Total link capacity in bits per second (default 100 Mbps).
    latency:
        One-way propagation + protocol latency in seconds.
    per_connection_bps:
        Per-connection throttle in bits per second, emulating the SPECWeb99
        connection speed model.  ``None`` disables the cap.
    """

    def __init__(
        self,
        bandwidth_bps=100_000_000,
        latency=0.0002,
        per_connection_bps=400_000,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.per_connection_bps = per_connection_bps
        self._active_transfers = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Transfer accounting
    # ------------------------------------------------------------------
    def begin_transfer(self):
        """Mark one transfer as active (affects the fair-share estimate)."""
        self._active_transfers += 1

    def end_transfer(self):
        if self._active_transfers > 0:
            self._active_transfers -= 1

    @property
    def active_transfers(self):
        return self._active_transfers

    def effective_rate_bps(self):
        """Bits/second one transfer gets right now.

        The share of the link is ``capacity / max(1, active)``, clamped by
        the per-connection cap.
        """
        share = self.bandwidth_bps / max(1, self._active_transfers)
        if self.per_connection_bps is not None:
            share = min(share, self.per_connection_bps)
        return share

    def transfer_time(self, nbytes):
        """Seconds to move ``nbytes`` over the link for one connection."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        self.total_bytes += nbytes
        rate = self.effective_rate_bps()
        return self.latency + (nbytes * 8.0) / rate

    def request_time(self, nbytes=420):
        """Seconds for a (small) HTTP request to reach the server.

        Requests are small enough that the per-connection throttle is what
        matters; the default size matches a typical SPECWeb99 GET header.
        """
        rate = self.per_connection_bps or self.bandwidth_bps
        return self.latency + (nbytes * 8.0) / rate

    def __repr__(self):
        return (
            f"NetworkLink(bandwidth={self.bandwidth_bps}bps, "
            f"latency={self.latency}s, "
            f"per_connection={self.per_connection_bps}bps)"
        )
