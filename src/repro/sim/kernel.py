"""The discrete-event simulator.

:class:`Simulator` owns the clock and the event queue.  Entities (client
connections, server processes, the fault injector, the watchdog) interact by
scheduling callbacks; nothing in the system reads the wall clock.
"""

from repro.sim.errors import SchedulingError
from repro.sim.events import EventQueue
from repro.sim.rng import SeededRng

__all__ = ["Simulator"]


class Simulator:
    """Deterministic event-driven simulator.

    Parameters
    ----------
    seed:
        Base seed for every random stream derived via :meth:`rng_for`.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self.now = 0.0
        self.events = EventQueue()
        self.rng = SeededRng(seed)
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        return self.events.push(self.now + delay, callback, args)

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f} (now is {self.now:.6f})"
            )
        return self.events.push(time, callback, args)

    def cancel(self, event):
        """Cancel a previously scheduled event (safe to call twice)."""
        self.events.cancel(event)

    def rng_for(self, *labels):
        """Return an independent random stream derived from the base seed."""
        return self.rng.substream(*labels)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire the next event.  Return False when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SchedulingError("event queue returned an event in the past")
        self.now = event.time
        self._events_fired += 1
        event.callback(*event.args)
        return True

    def run_until(self, time):
        """Run events up to and including simulated ``time``.

        The clock is left at exactly ``time`` even if no event fires there,
        so back-to-back ``run_until`` calls partition the timeline cleanly.
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot run backwards to t={time:.6f} (now {self.now:.6f})"
            )
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self.now = time

    def run(self, max_events=None):
        """Run until the event queue drains (or ``max_events`` fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    @property
    def events_fired(self):
        """Total number of events executed so far (diagnostics)."""
        return self._events_fired

    def __repr__(self):
        return (
            f"Simulator(now={self.now:.3f}, pending={len(self.events)}, "
            f"fired={self._events_fired})"
        )
