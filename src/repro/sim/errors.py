"""Exception hierarchy shared by the simulation and the simulated OS.

The exceptions here model *machine-level* failure modes.  When a mutated OS
function misbehaves, the failure surfaces as one of these, and the web-server
process model decides what the failure means for the server as a whole
(worker death, full crash, hung worker, ...).
"""


class SimulationError(Exception):
    """Base class for every error raised by the simulation substrate."""


class SimSegfault(SimulationError):
    """The simulated equivalent of an access violation.

    Raised when code executing inside a simulated process does something
    that would crash a native process: dereferencing an invalid handle where
    the API contract says the caller already validated it, corrupting heap
    metadata, using a variable that was never initialized, and so on.

    Unhandled Python exceptions escaping *mutated* OS code are converted to
    ``SimSegfault`` by the API dispatcher, mirroring how a software fault
    inside ``ntdll`` takes down the calling process rather than the kernel.
    """

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class SimBlockedForever(SimulationError):
    """A simulated thread blocked on a resource that can never be released.

    The canonical producer is ``RtlEnterCriticalSection`` finding the section
    owned by a thread that no longer runs (for example because a mutation
    removed the matching ``RtlLeaveCriticalSection`` call).  In a native
    system the thread would simply hang; in the event-driven simulation we
    cannot suspend a synchronous handler, so the condition is reported as an
    exception and the server process model marks the worker as hung.
    """


class CpuBudgetExceeded(SimulationError):
    """A single operation burned more simulated CPU than the sanity budget.

    This is the simulation's backstop against runaway mutants (for example a
    retry loop whose exit condition was mutated): the work is bounded in real
    time, but the simulated cost may be enormous.  The process model treats
    this as a CPU-hogging worker, the condition behind the paper's KCP
    counter.
    """

    def __init__(self, message, cycles=0):
        super().__init__(message)
        self.cycles = cycles


class SchedulingError(SimulationError):
    """Misuse of the simulator API (scheduling in the past, re-running...)."""
