"""Event queue for the discrete-event kernel.

A tiny binary-heap priority queue with stable FIFO ordering for events
scheduled at the same timestamp, plus O(1) cancellation by flagging.
"""

import heapq
import itertools

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that two events scheduled for
    the same instant fire in scheduling order — determinism matters more
    than fairness here.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(self, time, sequence, callback, args):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Mark the event so the kernel skips it when it is popped."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, #{self.sequence}, {name}{state})"


class EventQueue:
    """Binary heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def push(self, time, callback, args=()):
        """Schedule ``callback(*args)`` at ``time`` and return the event."""
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self):
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self):
        """Return the timestamp of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def cancel(self, event):
        """Cancel an event previously returned by :meth:`push`."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self):
        self._heap.clear()
        self._live = 0
