"""Discrete-event simulation kernel.

This package provides the deterministic substrate every other subsystem runs
on: a simulated clock and event queue (:mod:`repro.sim.kernel`), seeded
random-number streams (:mod:`repro.sim.rng`), CPU-cycle accounting used to
turn executed OS code into simulated service time (:mod:`repro.sim.cpu`),
and a simple network link model (:mod:`repro.sim.network`).

The paper's experiments ran for roughly 24 wall-clock hours on a two-machine
testbed; running on a simulated clock makes the same experiment repeatable
to the bit and executable in seconds, which is exactly the *repeatability*
property the faultload methodology is required to have.
"""

from repro.sim.errors import (
    CpuBudgetExceeded,
    SimBlockedForever,
    SimSegfault,
    SimulationError,
)
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.cpu import CpuMeter
from repro.sim.network import NetworkLink
from repro.sim.rng import SeededRng, derive_seed

__all__ = [
    "CpuBudgetExceeded",
    "CpuMeter",
    "Event",
    "EventQueue",
    "NetworkLink",
    "SeededRng",
    "SimBlockedForever",
    "SimSegfault",
    "SimulationError",
    "Simulator",
    "derive_seed",
]
