"""Deterministic random-number streams.

Every stochastic decision in the system (workload mix, file selection, think
times) draws from a :class:`SeededRng`.  Streams are derived from a base seed
and a string label, so adding a new consumer never perturbs the draws seen
by existing consumers — a property the repeatability experiments rely on.
"""

import hashlib
import random

__all__ = ["SeededRng", "derive_seed"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(base_seed, *labels):
    """Return a child seed derived from ``base_seed`` and the given labels.

    The derivation hashes the base seed together with every label, so
    ``derive_seed(s, "client", 3)`` is stable across runs and independent of
    ``derive_seed(s, "client", 4)``.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & _SEED_MASK


class SeededRng:
    """A labelled, reproducible random stream.

    Wraps :class:`random.Random` and adds :meth:`substream` for deriving
    independent child streams.
    """

    def __init__(self, seed, label="root"):
        self.seed = int(seed) & _SEED_MASK
        self.label = label
        self._random = random.Random(self.seed)

    def substream(self, *labels):
        """Return a new independent :class:`SeededRng` for the given labels."""
        child_seed = derive_seed(self.seed, *labels)
        child_label = "/".join([self.label] + [str(item) for item in labels])
        return SeededRng(child_seed, label=child_label)

    def random(self):
        return self._random.random()

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def randint(self, low, high):
        return self._random.randint(low, high)

    def choice(self, sequence):
        return self._random.choice(sequence)

    def choices(self, population, weights=None, k=1):
        return self._random.choices(population, weights=weights, k=k)

    def shuffle(self, items):
        self._random.shuffle(items)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def expovariate(self, rate):
        return self._random.expovariate(rate)

    def gauss(self, mean, sigma):
        return self._random.gauss(mean, sigma)

    def zipf_index(self, count, alpha=1.0):
        """Draw an index in ``[0, count)`` following a Zipf-like law.

        SPECWeb99 accesses files with a Zipf distribution; this helper keeps
        the (small) amount of numerical code in one tested place.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        weights = [1.0 / ((rank + 1) ** alpha) for rank in range(count)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if target <= acc:
                return index
        return count - 1

    def __repr__(self):
        return f"SeededRng(seed={self.seed}, label={self.label!r})"
