"""State-level fault models (hardware and operator faults).

Unlike the software faultload — which mutates *code* — these faults
perturb *state*: machine memory, disk behaviour, or the system's
configuration, the way a DRAM bit-flip, a dying disk, or a fat-fingered
administrator would.  Each fault knows how to apply itself to a
:class:`~repro.harness.machine.ServerMachine` and how to revert, so the
slot structure of the benchmark (inject, exercise, remove, repair) is
identical to the G-SWFIT campaign's.
"""

from contextlib import contextmanager

__all__ = [
    "ConfigFileRemoval",
    "DiskReadErrorBurst",
    "HeapMetadataCorruption",
    "LogVolumeFull",
    "MistakenProcessKill",
    "StaleHandleFault",
    "StateFault",
    "StateFaultInjector",
    "standard_extension_faultload",
]

HARDWARE = "hardware"
OPERATOR = "operator"


class StateFault:
    """One applicable/revertible state fault."""

    name = "state-fault"
    fault_class = HARDWARE

    def apply(self, machine):
        """Perturb the machine; returns opaque revert info."""
        raise NotImplementedError

    def revert(self, machine, info):
        """Undo whatever survives of the perturbation.

        Damage the system incurred *because* of the fault (crashes,
        corrupted requests) is intentionally not undone — repair is the
        watchdog's job, exactly as with software faults.
        """
        raise NotImplementedError

    @property
    def fault_id(self):
        return f"{self.fault_class}:{self.name}"

    def __repr__(self):
        return f"<{type(self).__name__} {self.fault_id}>"


# ----------------------------------------------------------------------
# Hardware faults
# ----------------------------------------------------------------------

class HeapMetadataCorruption(StateFault):
    """A bit-flip lands in the server process's heap bookkeeping.

    The process heap is marked corrupted; the allocator's deterministic
    blast-radius machinery then fails some of the following operations —
    the same propagation channel double-free software faults use.
    """

    name = "heap-metadata-corruption"
    fault_class = HARDWARE

    def apply(self, machine):
        ctx = machine.runtime.ctx
        if ctx is not None:
            ctx.heap.mark_corrupted("simulated memory bit-flip")
        return None

    def revert(self, machine, info):
        # Memory corruption is not revertible; a process restart (the
        # watchdog's repair) replaces the heap wholesale.
        return None


class DiskReadErrorBurst(StateFault):
    """The disk serves corrupted sectors for the duration of the slot."""

    name = "disk-read-error-burst"
    fault_class = HARDWARE

    def __init__(self, period=7):
        self.period = period

    def apply(self, machine):
        vfs = machine.kernel.vfs
        previous = vfs.read_fault_period
        vfs.read_fault_period = self.period
        return previous

    def revert(self, machine, info):
        machine.kernel.vfs.read_fault_period = info


class StaleHandleFault(StateFault):
    """A live kernel handle of the server silently goes stale.

    Models a transient fault in the handle table: the highest live handle
    is closed behind the process's back; the next use fails with
    INVALID_HANDLE.
    """

    name = "stale-handle"
    fault_class = HARDWARE

    def apply(self, machine):
        ctx = machine.runtime.ctx
        if ctx is None:
            return None
        handles = ctx.handles.handles()
        if not handles:
            return None
        ctx.handles.close(handles[-1])
        return None

    def revert(self, machine, info):
        return None  # the damage is the fault


# ----------------------------------------------------------------------
# Operator faults
# ----------------------------------------------------------------------

class MistakenProcessKill(StateFault):
    """An administrator kills the wrong process: the web server's."""

    name = "mistaken-process-kill"
    fault_class = OPERATOR

    def apply(self, machine):
        machine.runtime.kill()
        return None

    def revert(self, machine, info):
        return None  # recovery is the watchdog/administrator's job


class ConfigFileRemoval(StateFault):
    """The server's configuration file is deleted by mistake.

    Latent until the server (re)starts: a running server keeps serving,
    but any restart during or after the slot fails at startup — the
    classic operator fault that turns a small incident into an outage.
    """

    name = "config-file-removal"
    fault_class = OPERATOR

    def apply(self, machine):
        path = machine.server.config_path
        vfs = machine.kernel.vfs
        node = vfs.lookup(path)
        if node is None:
            return None
        size = node.size
        vfs.delete(path)
        return (path, size)

    def revert(self, machine, info):
        if info is None:
            return
        path, size = info
        if machine.kernel.vfs.lookup(path) is None:
            machine.kernel.vfs.create_file(path, size=size)


class LogVolumeFull(StateFault):
    """The log volume runs out of space: every log/POST write fails."""

    name = "log-volume-full"
    fault_class = OPERATOR

    def apply(self, machine):
        vfs = machine.kernel.vfs
        previous = vfs.capacity_bytes
        vfs.capacity_bytes = vfs.used_bytes  # no room for another byte
        return previous

    def revert(self, machine, info):
        machine.kernel.vfs.capacity_bytes = info


# ----------------------------------------------------------------------
# Injector and the standard extension faultload
# ----------------------------------------------------------------------

class StateFaultInjector:
    """Applies/reverts state faults with the same discipline as G-SWFIT."""

    def __init__(self, machine):
        self.machine = machine
        self._active = {}
        self.injection_count = 0

    def inject(self, fault):
        if fault.fault_id in self._active:
            raise ValueError(f"fault already active: {fault.fault_id}")
        info = fault.apply(self.machine)
        self._active[fault.fault_id] = (fault, info)
        self.injection_count += 1

    def restore(self, fault):
        entry = self._active.pop(fault.fault_id, None)
        if entry is None:
            return
        active_fault, info = entry
        active_fault.revert(self.machine, info)

    def restore_all(self):
        for fault, info in list(self._active.values()):
            fault.revert(self.machine, info)
        self._active.clear()

    @contextmanager
    def injected(self, fault):
        self.inject(fault)
        try:
            yield self
        finally:
            self.restore(fault)


def standard_extension_faultload(repetitions=4):
    """The default extended faultload: each fault, ``repetitions`` times.

    Repetition matters because state faults interact with the current
    machine state (which handle is live, how full the logs are); several
    applications at different points of the workload sample that space.
    """
    faults = []
    for _ in range(repetitions):
        faults.extend([
            HeapMetadataCorruption(),
            DiskReadErrorBurst(),
            StaleHandleFault(),
            MistakenProcessKill(),
            ConfigFileRemoval(),
            LogVolumeFull(),
        ])
    return faults
