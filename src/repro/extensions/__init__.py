"""Additional fault models — the paper's sketched "full benchmark".

The conclusion of the paper: "a full dependability benchmark for
web-servers can be defined by adding more fault models (hardware faults,
operator faults, etc.) and measures".  This package adds those two fault
classes as *state-level* faults that plug into the same slot/watchdog
harness the software faultload uses:

* hardware faults (:mod:`repro.extensions.statefaults`):
  heap-metadata corruption (a flipped bit in allocator bookkeeping),
  disk read-error bursts (corrupted sector content), stale-handle faults;
* operator faults: a mistaken ``kill`` of the server process, removal of
  the server's configuration file, a full log volume.

``repro.extensions.experiment`` runs a mixed campaign and reports the
same SPC/THR/RTM/ER%/MIS/KNS/KCP measures per fault class.
"""

from repro.extensions.statefaults import (
    ConfigFileRemoval,
    DiskReadErrorBurst,
    HeapMetadataCorruption,
    LogVolumeFull,
    MistakenProcessKill,
    StaleHandleFault,
    StateFault,
    StateFaultInjector,
    standard_extension_faultload,
)
from repro.extensions.experiment import (
    ExtendedFaultCampaign,
    FaultClassResult,
)

__all__ = [
    "ConfigFileRemoval",
    "DiskReadErrorBurst",
    "ExtendedFaultCampaign",
    "FaultClassResult",
    "HeapMetadataCorruption",
    "LogVolumeFull",
    "MistakenProcessKill",
    "StaleHandleFault",
    "StateFault",
    "StateFaultInjector",
    "standard_extension_faultload",
]
