"""Mixed-fault-class campaigns (the "full benchmark" sketch).

Runs the same slot structure as the software-fault experiment, but over
a faultload of state faults, and reports the familiar measures per fault
class, so software, hardware and operator faults can be compared on one
server/OS pair — the combination the paper names as the road to a full
dependability benchmark.
"""

from dataclasses import dataclass, field

from repro.extensions.statefaults import (
    StateFaultInjector,
    standard_extension_faultload,
)
from repro.harness.machine import ServerMachine
from repro.harness.watchdog import Watchdog

__all__ = ["ExtendedFaultCampaign", "FaultClassResult"]


@dataclass
class FaultClassResult:
    """Measures for one fault class within a mixed campaign."""

    fault_class: str
    faults_injected: int
    metrics: object  # SpecWebMetrics
    mis: int
    kns: int
    kcp: int

    @property
    def admf(self):
        return self.mis + self.kns + self.kcp


class ExtendedFaultCampaign:
    """One pass of a state-faultload over one server/OS machine."""

    def __init__(self, config, faults=None):
        self.config = config
        self.faults = (
            list(faults) if faults is not None
            else standard_extension_faultload()
        )

    def run(self, iteration=1):
        """Run every fault for one slot; returns per-class results."""
        config = self.config
        rules = config.rules
        machine = ServerMachine(config, iteration=iteration)
        if not machine.boot():
            raise RuntimeError("server failed to start pristine")
        injector = StateFaultInjector(machine)
        watchdog = Watchdog(
            machine.sim,
            machine.runtime,
            poll_seconds=config.watchdog_poll_seconds,
            unresponsive_after=config.unresponsive_after_seconds,
            restart_grace=config.restart_grace_seconds,
        )
        machine.client.start()
        machine.run_for(rules.warmup_seconds + rules.rampup_seconds)
        watchdog.start()

        windows_by_class = {}
        counters_before = {}
        counts = {}
        for fault in self.faults:
            fault_class = fault.fault_class
            counts[fault_class] = counts.get(fault_class, 0) + 1
            slot_start = machine.sim.now
            before = (watchdog.mis, watchdog.kns, watchdog.kcp)
            injector.inject(fault)
            machine.sim.run_until(slot_start + rules.slot_seconds)
            injector.restore(fault)
            machine.client.pause()
            machine.run_for(rules.slot_gap_seconds)
            watchdog.check_now()
            machine.client.resume()
            after = (watchdog.mis, watchdog.kns, watchdog.kcp)
            windows_by_class.setdefault(fault_class, []).append(
                (slot_start, slot_start + rules.slot_seconds)
            )
            deltas = counters_before.setdefault(
                fault_class, [0, 0, 0]
            )
            for index in range(3):
                deltas[index] += after[index] - before[index]

        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        watchdog.stop()

        results = {}
        for fault_class, windows in windows_by_class.items():
            metrics = machine.client.collector.compute(
                windows, conformance_group=config.conformance_slots
            )
            mis, kns, kcp = counters_before[fault_class]
            results[fault_class] = FaultClassResult(
                fault_class=fault_class,
                faults_injected=counts[fault_class],
                metrics=metrics,
                mis=mis, kns=kns, kcp=kcp,
            )
        return results
