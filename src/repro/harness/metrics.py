"""Derived dependability metrics (Section 3.2 of the paper).

From a baseline run and the runs in the presence of the faultload, the
paper derives:

* **performance degradation** — SPCf, THRf, RTMf: the SPECWeb99 measures
  under fault injection (most useful relative to the baseline);
* **ADMf** — the need for administrator intervention, MIS + KNS + KCP;
* **ER%f** — error rate in the presence of the faultload.

:class:`DependabilityMetrics` packages the absolute values and the
relative views used by the paper's Figure 5.
"""

from dataclasses import dataclass

__all__ = ["DependabilityMetrics"]


@dataclass(frozen=True)
class DependabilityMetrics:
    """Dependability measures of one server/OS pair."""

    server_name: str
    os_display: str
    spc_baseline: float
    thr_baseline: float
    rtm_baseline_ms: float
    spcf: float
    thrf: float
    rtmf_ms: float
    erf_percent: float
    mis: float
    kns: float
    kcp: float

    @classmethod
    def from_results(cls, result):
        """Build from a :class:`~repro.harness.results.BenchmarkResult`.

        The baseline is the profile-mode run when available (the paper
        compares against the injector-attached baseline, since the
        injector is part of the load), the plain baseline otherwise.
        """
        reference = result.profile_mode or result.baseline
        average = result.average_row()
        return cls(
            server_name=result.server_name,
            os_display=result.os_display,
            spc_baseline=reference.spc,
            thr_baseline=reference.thr,
            rtm_baseline_ms=reference.rtm_ms,
            spcf=average.get("SPC", 0.0),
            thrf=average.get("THR", 0.0),
            rtmf_ms=average.get("RTM", 0.0),
            erf_percent=average.get("ER%", 0.0),
            mis=average.get("MIS", 0.0),
            kns=average.get("KNS", 0.0),
            kcp=average.get("KCP", 0.0),
        )

    # ------------------------------------------------------------------
    # The relative views of Figure 5
    # ------------------------------------------------------------------
    @property
    def admf(self):
        """Administrator interventions per iteration (MIS+KNS+KCP)."""
        return self.mis + self.kns + self.kcp

    @property
    def spc_relative(self):
        """SPCf as a fraction of the baseline SPC (1.0 = no degradation)."""
        return self.spcf / self.spc_baseline if self.spc_baseline else 0.0

    @property
    def thr_relative(self):
        return self.thrf / self.thr_baseline if self.thr_baseline else 0.0

    @property
    def rtm_relative(self):
        """RTMf over baseline RTM (>1.0 = slower under faults)."""
        return (
            self.rtmf_ms / self.rtm_baseline_ms
            if self.rtm_baseline_ms else 0.0
        )

    def as_dict(self):
        return {
            "server": self.server_name,
            "os": self.os_display,
            "SPCf": self.spcf,
            "THRf": self.thrf,
            "RTMf": self.rtmf_ms,
            "ER%f": self.erf_percent,
            "ADMf": self.admf,
            "SPC_rel": self.spc_relative,
            "THR_rel": self.thr_relative,
            "RTM_rel": self.rtm_relative,
            "MIS": self.mis,
            "KNS": self.kns,
            "KCP": self.kcp,
        }
