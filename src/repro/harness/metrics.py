"""Derived dependability metrics (Section 3.2 of the paper).

From a baseline run and the runs in the presence of the faultload, the
paper derives:

* **performance degradation** — SPCf, THRf, RTMf: the SPECWeb99 measures
  under fault injection (most useful relative to the baseline);
* **ADMf** — the need for administrator intervention, MIS + KNS + KCP;
* **ER%f** — error rate in the presence of the faultload.

:class:`DependabilityMetrics` packages the absolute values and the
relative views used by the paper's Figure 5.

The sequential campaign mode (DESIGN.md §14) estimates the same derived
metrics *while the campaign runs*: :class:`StreamingEstimator` keeps
Welford-style running moments per metric and :class:`StratumEstimator`
turns them into per-stratum confidence intervals — normal-approximation
once enough batches exist, a deterministic bootstrap fallback for small
strata — whose half-widths drive the stop-at-confidence decision.
"""

import math
from dataclasses import dataclass

__all__ = [
    "DependabilityMetrics",
    "SEQUENTIAL_TRACKED_METRICS",
    "StratumEstimator",
    "StreamingEstimator",
    "normal_quantile",
]

# The derived metrics the sequential stopping rule tracks, in report
# order.  ADMf is per-slot (interventions per injection slot) so strata
# of different sizes stay comparable.
SEQUENTIAL_TRACKED_METRICS = ("SPCf", "THRf", "RTMf", "ADMf", "ER%f")


def normal_quantile(p):
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1) — far tighter than the stopping rule
    needs — and dependency-free, which keeps the container constraint
    (no scipy) honest.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                * q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q
                                + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q
                                 + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
            * r + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r
                                 + b[3]) * r + b[4]) * r + 1.0)


class StreamingEstimator:
    """Welford running mean/variance over a stream of observations."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value):
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self):
        """Sample variance (n-1 denominator); None below two points."""
        if self.count < 2:
            return None
        return self._m2 / (self.count - 1)

    @property
    def sd(self):
        variance = self.variance
        return None if variance is None else math.sqrt(max(variance, 0.0))


class StratumEstimator:
    """Interval estimators for one stratum's tracked derived metrics.

    Observations are *batch means*: each completed batch of injection
    slots contributes one value per tracked metric.  Half-widths use the
    normal approximation ``z * sd / sqrt(n)`` once ``n >=
    bootstrap_below`` batches exist; below that a percentile bootstrap
    of the mean is used instead (small-sample normality is exactly what
    cannot be assumed for a stratum of a handful of batches).  The
    bootstrap draws from the :class:`~repro.sim.rng.SeededRng` passed to
    :meth:`half_widths`, so the stopping decision is a pure function of
    (observations, seed) — which is what lets two campaigns with the
    same stopping schedule make byte-identical decisions on any worker
    count or backend.
    """

    def __init__(self, confidence=0.95, bootstrap_below=8,
                 bootstrap_resamples=200):
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        self.confidence = confidence
        self.bootstrap_below = bootstrap_below
        self.bootstrap_resamples = bootstrap_resamples
        self._z = normal_quantile(0.5 + confidence / 2.0)
        self.estimators = {
            metric: StreamingEstimator()
            for metric in SEQUENTIAL_TRACKED_METRICS
        }
        self.observations = {
            metric: [] for metric in SEQUENTIAL_TRACKED_METRICS
        }

    @property
    def count(self):
        return self.estimators[SEQUENTIAL_TRACKED_METRICS[0]].count

    def observe(self, values):
        """Record one batch's metric values (a dict keyed by metric)."""
        for metric in SEQUENTIAL_TRACKED_METRICS:
            value = float(values[metric])
            self.estimators[metric].add(value)
            self.observations[metric].append(value)

    def means(self):
        return {
            metric: self.estimators[metric].mean
            for metric in SEQUENTIAL_TRACKED_METRICS
        }

    def _bootstrap_half_width(self, values, rng):
        count = len(values)
        resampled = []
        for _ in range(self.bootstrap_resamples):
            total = 0.0
            for _ in range(count):
                total += values[rng.randint(0, count - 1)]
            resampled.append(total / count)
        resampled.sort()
        alpha = 1.0 - self.confidence
        last = len(resampled) - 1
        low = resampled[int(math.floor(alpha / 2.0 * last))]
        high = resampled[int(math.ceil((1.0 - alpha / 2.0) * last))]
        return (high - low) / 2.0

    def half_widths(self, rng=None):
        """Current interval half-width per metric (None = undefined).

        ``rng`` feeds the small-sample bootstrap; when omitted, small
        strata fall back to the normal approximation (useful for tests,
        but campaigns always pass a derived stream).
        """
        widths = {}
        for metric in SEQUENTIAL_TRACKED_METRICS:
            estimator = self.estimators[metric]
            if estimator.count < 2:
                widths[metric] = None
                continue
            sd = estimator.sd
            if sd == 0.0:
                # Zero variance: the interval is a point, whatever the
                # sample size — a constant-metric stratum stops at the
                # slot floor instead of looping.
                widths[metric] = 0.0
            elif estimator.count < self.bootstrap_below and rng is not None:
                widths[metric] = self._bootstrap_half_width(
                    self.observations[metric], rng
                )
            else:
                widths[metric] = (
                    self._z * sd / math.sqrt(estimator.count)
                )
        return widths

    def converged(self, ci_target, rng=None):
        """True once every tracked half-width is under the target.

        The target is relative: ``half_width <= ci_target *
        max(|mean|, 1.0)``.  The 1.0 floor gives near-zero metrics
        (ADMf, ER%f on a robust target) an absolute budget of
        ``ci_target`` instead of an impossible relative one.
        """
        widths = self.half_widths(rng)
        for metric in SEQUENTIAL_TRACKED_METRICS:
            width = widths[metric]
            if width is None:
                return False
            mean = self.estimators[metric].mean
            if width > ci_target * max(abs(mean), 1.0):
                return False
        return True


@dataclass(frozen=True)
class DependabilityMetrics:
    """Dependability measures of one server/OS pair."""

    server_name: str
    os_display: str
    spc_baseline: float
    thr_baseline: float
    rtm_baseline_ms: float
    spcf: float
    thrf: float
    rtmf_ms: float
    erf_percent: float
    mis: float
    kns: float
    kcp: float

    @classmethod
    def from_results(cls, result):
        """Build from a :class:`~repro.harness.results.BenchmarkResult`.

        The baseline is the profile-mode run when available (the paper
        compares against the injector-attached baseline, since the
        injector is part of the load), the plain baseline otherwise.
        """
        reference = result.profile_mode or result.baseline
        average = result.average_row()
        return cls(
            server_name=result.server_name,
            os_display=result.os_display,
            spc_baseline=reference.spc,
            thr_baseline=reference.thr,
            rtm_baseline_ms=reference.rtm_ms,
            spcf=average.get("SPC", 0.0),
            thrf=average.get("THR", 0.0),
            rtmf_ms=average.get("RTM", 0.0),
            erf_percent=average.get("ER%", 0.0),
            mis=average.get("MIS", 0.0),
            kns=average.get("KNS", 0.0),
            kcp=average.get("KCP", 0.0),
        )

    # ------------------------------------------------------------------
    # The relative views of Figure 5
    # ------------------------------------------------------------------
    @property
    def admf(self):
        """Administrator interventions per iteration (MIS+KNS+KCP)."""
        return self.mis + self.kns + self.kcp

    @property
    def spc_relative(self):
        """SPCf as a fraction of the baseline SPC (1.0 = no degradation)."""
        return self.spcf / self.spc_baseline if self.spc_baseline else 0.0

    @property
    def thr_relative(self):
        return self.thrf / self.thr_baseline if self.thr_baseline else 0.0

    @property
    def rtm_relative(self):
        """RTMf over baseline RTM (>1.0 = slower under faults)."""
        return (
            self.rtmf_ms / self.rtm_baseline_ms
            if self.rtm_baseline_ms else 0.0
        )

    def as_dict(self):
        return {
            "server": self.server_name,
            "os": self.os_display,
            "SPCf": self.spcf,
            "THRf": self.thrf,
            "RTMf": self.rtmf_ms,
            "ER%f": self.erf_percent,
            "ADMf": self.admf,
            "SPC_rel": self.spc_relative,
            "THR_rel": self.thr_relative,
            "RTM_rel": self.rtm_relative,
            "MIS": self.mis,
            "KNS": self.kns,
            "KCP": self.kcp,
        }
