"""Sequential statistical injection (DESIGN.md §14).

An exhaustive campaign executes every sampled slot even when a fault
type's dependability metrics converged long ago.  This module replaces
slot-count exhaustion with statistical sufficiency — the "iterative
statistical injection" speed-up of the DAVOS line of work:

* the prepared faultload is **stratified by fault type**, preserving the
  Table 1 proportions and the prepared slot order within each stratum;
* each stratum is cut into fixed-size **batches** (the batch-means
  observation unit — one :class:`~repro.harness.campaign.CampaignShard`
  per batch, so the existing executor backends dispatch them unchanged);
* after a batch completes, the stratum's
  :class:`~repro.harness.metrics.StratumEstimator` updates and the
  stratum **stops** once every tracked metric's confidence interval is
  tighter than the target (or its slots run out, or its ceiling hits).

Determinism is by construction, exactly like the rest of the campaign
engine: the batch plan is a pure function of (faultload, batch size);
batches run on shard-seeded private machines; and stopping decisions are
evaluated per stratum, in fault-type order, from that stratum's batch
outcomes alone — never from arrival order, worker count, or backend.
Two campaigns with the same stopping schedule therefore execute the
*same slot set* and merge to byte-identical ``metrics_digest`` values,
which the sequential-gate CI job enforces.
"""

from dataclasses import dataclass, field

from repro.harness.metrics import (
    SEQUENTIAL_TRACKED_METRICS,
    StratumEstimator,
)
from repro.sim.rng import SeededRng, derive_seed

__all__ = [
    "SequentialController",
    "StratumPlan",
    "StratumState",
    "batch_observation",
    "plan_sequential_strata",
]


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StratumPlan:
    """One fault type's share of the campaign, cut into batches.

    ``batches`` are :class:`CampaignShard` instances with globally
    unique indices and contiguous slot ranges, assigned in stratum-major
    plan order — so journal replay, shard seeding, and merge ordering
    all work exactly as in an exhaustive campaign.
    """

    position: int
    fault_type: str
    first_slot: int
    planned_slots: int
    batches: tuple


def plan_sequential_strata(faultload, batch_slots):
    """Stratify a prepared faultload and cut each stratum into batches.

    A pure function of the faultload order and the batch size — worker
    count and backend never enter, which is what makes the executed slot
    set (and hence the digest) independent of them.
    """
    # Imported here: campaign.py imports this module, and CampaignShard
    # lives there.
    from repro.harness.campaign import CampaignShard

    if batch_slots < 1:
        raise ValueError("batch_slots must be >= 1")
    strata = []
    shard_index = 0
    slot = 0
    for position, (fault_type, locations) in enumerate(
            faultload.strata_by_type()):
        batches = []
        for first in range(0, len(locations), batch_slots):
            chunk = tuple(locations[first:first + batch_slots])
            batches.append(CampaignShard(
                index=shard_index,
                first_slot=slot,
                locations=chunk,
            ))
            shard_index += 1
            slot += len(chunk)
        strata.append(StratumPlan(
            position=position,
            fault_type=fault_type.value,
            first_slot=batches[0].first_slot,
            planned_slots=len(locations),
            batches=tuple(batches),
        ))
    return strata


def batch_observation(outcome, num_connections):
    """One batch's observation vector for the stratum estimator.

    SPCf/THRf/RTMf/ER%f come from the batch's merged SPECWeb partial;
    ADMf is normalized per slot so batches (and strata) of different
    sizes stay comparable.
    """
    metrics = outcome.partial.to_metrics(num_connections)
    slots = max(1, outcome.num_slots)
    return {
        "SPCf": metrics.spc,
        "THRf": metrics.thr,
        "RTMf": metrics.rtm_ms,
        "ADMf": (outcome.mis + outcome.kns + outcome.kcp) / slots,
        "ER%f": metrics.er_percent,
    }


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
@dataclass
class StratumState:
    """Mutable sampling state of one stratum during a campaign."""

    plan: StratumPlan
    estimator: StratumEstimator
    rng: SeededRng
    next_batch: int = 0
    executed_slots: int = 0
    stop_reason: str | None = None
    # One snapshot per observed batch: the interval trajectory the
    # manifest exposes (diagnostic, outside the metrics digest).
    trajectory: list = field(default_factory=list)

    @property
    def open(self):
        return self.stop_reason is None

    def pending_batch(self):
        """The next undispatched batch, or None when exhausted."""
        if self.next_batch >= len(self.plan.batches):
            return None
        return self.plan.batches[self.next_batch]


class SequentialController:
    """Drives the batch rounds and the per-stratum stopping decisions.

    The campaign asks for :meth:`next_round` (one pending batch per
    still-open stratum, in fault-type order), dispatches those batches
    through whatever executor backend is configured, then feeds each
    completed outcome back via :meth:`complete_batch` — again in
    fault-type order, never arrival order.  Because every decision is a
    pure function of (config, seed, the stratum's own outcomes), a
    resumed campaign replaying journaled outcomes recomputes the exact
    stopping decisions of the uninterrupted run.
    """

    def __init__(self, config, strata):
        self.config = config
        self.ci_target = float(config.ci_target)
        self.batch_slots = config.resolved_sequential_batch()
        self.min_slots = config.resolved_sequential_min_slots()
        self.max_slots = config.sequential_max_slots
        self.states = [
            StratumState(
                plan=plan,
                estimator=StratumEstimator(
                    confidence=config.ci_confidence
                ),
                # The bootstrap stream is seeded per stratum *position*
                # (not shard index), so it is independent of how many
                # batches ran — a resume consumes it identically.
                rng=SeededRng(derive_seed(
                    config.seed, "sequential-ci", plan.position
                )),
            )
            for plan in strata
        ]

    # ------------------------------------------------------------------
    def next_round(self):
        """One pending batch per open stratum, in fault-type order."""
        round_batches = []
        for state in self.states:
            if not state.open:
                continue
            batch = state.pending_batch()
            if batch is None:
                # All planned slots ran without hitting the target.
                state.stop_reason = "exhausted"
                continue
            round_batches.append((state, batch))
        return round_batches

    def complete_batch(self, state, batch, outcome):
        """Fold one completed batch into its stratum and decide.

        ``outcome=None`` marks a quarantined batch: its slots are
        missing from the merged metrics, so the stratum's estimates can
        no longer be trusted to converge — it stops immediately with
        reason ``"quarantined"`` rather than sampling around the hole.
        """
        state.next_batch += 1
        if outcome is None:
            state.stop_reason = "quarantined"
            return
        state.executed_slots += outcome.num_slots
        state.estimator.observe(
            batch_observation(outcome, self.config.client.connections)
        )
        # Half-widths are computed for every observed batch — including
        # ones below the slot floor — so the bootstrap rng advances the
        # same way no matter where the floor sits.
        widths = state.estimator.half_widths(state.rng)
        means = state.estimator.means()
        state.trajectory.append({
            "batch": state.next_batch - 1,
            "executed_slots": state.executed_slots,
            "half_widths": _rounded(widths),
        })
        if state.pending_batch() is None:
            state.stop_reason = "exhausted"
        elif (self.max_slots is not None
                and state.executed_slots >= self.max_slots):
            state.stop_reason = "max-slots"
        elif (state.executed_slots >= self.min_slots
                and _converged(widths, means, self.ci_target)):
            state.stop_reason = "confidence"

    # ------------------------------------------------------------------
    def summary(self):
        """The iteration's ``sequential`` accounting block.

        Diagnostic — written to the manifest *outside* the metrics
        digest.  ``stopping_points`` (fault type → slots executed) is
        what the sequential-gate CI job compares across worker counts
        and backends.
        """
        planned = sum(state.plan.planned_slots for state in self.states)
        executed = sum(state.executed_slots for state in self.states)
        strata = []
        for state in self.states:
            strata.append({
                "fault_type": state.plan.fault_type,
                "planned_slots": state.plan.planned_slots,
                "executed_slots": state.executed_slots,
                "batches_executed": len(state.trajectory),
                "stop_reason": state.stop_reason,
                "means": _rounded(state.estimator.means()),
                # The final interval snapshot is the last trajectory
                # entry (bootstrap-backed); falling back to the normal
                # approximation only for a stratum that never observed.
                "half_widths": (
                    state.trajectory[-1]["half_widths"]
                    if state.trajectory
                    else _rounded(state.estimator.half_widths())
                ),
                "trajectory": state.trajectory,
            })
        return {
            "planned_slots": planned,
            "executed_slots": executed,
            "slots_skipped": planned - executed,
            "stopping_points": {
                state.plan.fault_type: state.executed_slots
                for state in self.states
            },
            "stop_reasons": {
                state.plan.fault_type: state.stop_reason
                for state in self.states
            },
            "strata": strata,
        }


def _converged(widths, means, ci_target):
    """The stopping rule over precomputed half-widths.

    Relative target with an absolute floor: ``half_width <= ci_target *
    max(|mean|, 1.0)``.  ``None`` (undefined, fewer than two batches)
    never converges.
    """
    for metric in SEQUENTIAL_TRACKED_METRICS:
        width = widths[metric]
        if width is None:
            return False
        if width > ci_target * max(abs(means[metric]), 1.0):
            return False
    return True


def _rounded(values):
    """JSON-safe copy of a metric dict (None survives, floats round)."""
    return {
        metric: None if value is None else round(float(value), 6)
        for metric, value in values.items()
    }
