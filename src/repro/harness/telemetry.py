"""Campaign telemetry: a JSONL event stream and the run manifest.

Dependability benchmarking (the paper's Section 2 properties, and the
fault-injection services in PAPERS.md) demands that a campaign be
*auditable*: a result you cannot trace back to what actually ran — which
slots, on how many workers, with how many retries — is scrollback, not
evidence.  This module produces two artifacts, both written next to the
campaign journal:

* **Telemetry** (:class:`TelemetryWriter`) — an append-only JSONL event
  stream.  Every supervision decision (dispatch, completion, retry,
  quarantine, pool rebuild, serial fallback) and every campaign phase
  lands here with a wall-clock timestamp and a monotone sequence
  number.  It is the flight recorder: diagnostic, *not* part of the
  campaign's identity.
* **Run manifest** (:class:`RunManifest`) — one JSON document that
  identifies the run: campaign key, seed, build fingerprint, faultload
  digest, worker count, per-phase wall timings, everything supervision
  had to do, and a **metrics digest** — a SHA-256 over the merged,
  deterministic results.  The digest is the contract the determinism
  CI gate checks: ``workers=N`` and ``workers=1`` must produce
  byte-identical digests, so the gate is a one-line comparison of two
  manifest fields.

The split matters: timings and timestamps vary run to run, so they live
*outside* :func:`metrics_digest`, which covers only fields that are pure
functions of ``(config, seed, faultload)``.
"""

import dataclasses
import hashlib
import json
import time
from pathlib import Path

from repro.harness.jsonl import read_jsonl

__all__ = [
    "MANIFEST_VERSION",
    "NullTelemetry",
    "RunManifest",
    "TelemetryWriter",
    "faultload_digest",
    "metrics_digest",
    "read_telemetry",
]

# v6: sequential-sampling summary (``sequential`` block: stopping
# schedule, per-stratum stopping points, interval trajectories,
# slots_skipped) — diagnostic only, never part of the metrics digest.
# v5: executor-backend summary (``fabric`` block: backend kind, worker
# roster, steal/requeue/heartbeat/death counters) — diagnostic only,
# never part of the metrics digest.
# v4: snapshot summary (epoch-setup accounting: booted vs restored
# epochs, pristine restarts).
MANIFEST_VERSION = 6
TELEMETRY_VERSION = 1


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------
class NullTelemetry:
    """No-op sink used when no telemetry path is configured."""

    path = None

    def emit(self, event, **fields):
        pass

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        pass


class TelemetryWriter:
    """Append-only JSONL event stream with a monotone sequence number.

    Events are flushed line by line, so a crash loses at most the event
    being written — the stream stays parseable (readers drop a torn
    final line, exactly like the campaign journal).
    """

    def __init__(self, path, clock=time.time):
        self.path = Path(path)
        self.clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._sequence = 0
        self.emit("telemetry_open", version=TELEMETRY_VERSION)

    def emit(self, event, **fields):
        entry = {
            "seq": self._sequence,
            "t": round(self.clock(), 6),
            "event": event,
        }
        entry.update(fields)
        self._sequence += 1
        # One buffered write per event, newline included, flushed before
        # returning: a crash can tear at most the final line, and two
        # writers never interleave a record with its newline.
        self._handle.write(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
        )
        self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_telemetry(path):
    """Parse a telemetry JSONL file, dropping a torn final line."""
    return [entry for _lineno, entry in read_jsonl(path)]


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def _metrics_dict(metrics):
    if metrics is None:
        return None
    return dataclasses.asdict(metrics)


def metrics_digest(result):
    """SHA-256 over the deterministic content of a campaign result.

    Covers exactly the fields that are pure functions of
    ``(config, seed, faultload)`` — metrics, ADMf counters, runtime
    stats, watchdog incidents — and nothing that varies run to run
    (wall timings, retry counts, host facts).  ``workers=N`` and
    ``workers=1`` therefore hash identically, which is the property the
    determinism CI gate enforces byte-for-byte.
    """
    payload = {
        "baseline": _metrics_dict(result.baseline),
        "profile_mode": _metrics_dict(result.profile_mode),
        "iterations": [
            {
                "iteration": iteration.iteration,
                "metrics": _metrics_dict(iteration.metrics),
                "mis": iteration.mis,
                "kns": iteration.kns,
                "kcp": iteration.kcp,
                "faults_injected": iteration.faults_injected,
                "runtime_stats": iteration.runtime_stats,
                "incidents": iteration.incidents,
                "contaminated_slots": getattr(
                    iteration, "contaminated_slots", []
                ),
                "reboots": getattr(iteration, "reboots", []),
                "integrity_enabled": getattr(
                    iteration, "integrity_enabled", False
                ),
                # Activation telemetry is deterministic by construction:
                # hit counts are pure workload facts and first-hit
                # timestamps are sim-time relative to slot start.
                "activations": getattr(iteration, "activations", []),
                "faults_activated": getattr(
                    iteration, "faults_activated", 0
                ),
                "slots_truncated": getattr(
                    iteration, "slots_truncated", 0
                ),
                "truncated_seconds": getattr(
                    iteration, "truncated_seconds", 0.0
                ),
                "activation_enabled": getattr(
                    iteration, "activation_enabled", False
                ),
            }
            for iteration in result.iterations
        ],
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def faultload_digest(faultload):
    """SHA-256 over the exact slot sequence (order-sensitive)."""
    blob = "\n".join(location.fault_id for location in faultload)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunManifest:
    """One campaign run, identified end to end.

    Field-by-field schema (also documented in DESIGN.md):

    * ``manifest_version`` — schema version of this document.
    * ``campaign_key`` — SHA-256 of (config, slot sequence); the same
      key the journal header carries.
    * ``server`` / ``os_codename`` / ``os_display`` — the (BT, FIT)
      pair under benchmark.
    * ``seed`` — the campaign's base seed.
    * ``build_fingerprint`` — SHA-256 of the scanned OS build's library
      sources (the scan-cache fingerprint).
    * ``faultload_digest`` — SHA-256 of the exact fault-id sequence.
    * ``slots`` — total injection slots in the prepared faultload.
    * ``workers`` / ``slots_per_shard`` / ``num_shards`` — execution
      shape (diagnostic; never part of the metrics digest).
    * ``iterations`` — planned injection iterations.
    * ``journal_version`` — checkpoint schema the journal used.
    * ``phase_timings`` — wall seconds per phase (prepare, warm-up,
      baseline, profile mode, each iteration).
    * ``supervision`` — retries, pool rebuilds, serial fallback, and
      the quarantined shards (with their fault ids), plus ``degraded``.
    * ``integrity`` — the integrity-protocol summary: whether auditing
      ran, the per-shard reboot budget, campaign totals for
      contaminated slots / verified reboots / contamination left in
      place after budget exhaustion, and a violation-kind histogram.
    * ``activation`` — the activation summary: whether tracking ran,
      whether adaptive slots were on, faults injected/activated, the
      overall activation rate, slots truncated with the simulated
      seconds saved, and the deadline-table size.
    * ``snapshot`` — the epoch-setup summary: whether epoch snapshots
      and pristine-slot mode were on, campaign totals for booted vs
      restored epochs and pristine restarts, and the restore rate.
      Diagnostic only — restored and booted epochs are digest-identical
      by construction, which the restored-vs-booted CI gate enforces.
    * ``fabric`` — the executor-backend summary: which backend
      dispatched the shards (``pool`` or ``fabric``) and, for the
      fabric, the worker roster (name/pid/host/shards done/alive) with
      steal/requeue/heartbeat/worker-death/version-skew counters.
      Diagnostic only — the shard plan, seeds, and merge are
      backend-blind, so the digest is identical across backends, which
      the fabric CI gate enforces.
    * ``sequential`` — the sequential-sampling summary: whether the
      mode ran, the full stopping schedule (target, confidence, batch /
      min / max slots), planned vs executed slots with
      ``slots_skipped``, per-stratum stopping points and stop reasons,
      and each stratum's confidence-interval trajectory.  Diagnostic
      only — the stopping decisions are *reflected in* the executed
      slot set (which the digest covers); the block itself is never
      hashed, so interval bookkeeping can evolve without breaking
      digest parity.  The sequential-gate CI job compares
      ``stopping_points`` across worker counts and backends.
    * ``metrics_digest`` — :func:`metrics_digest` of the final result;
      the determinism gate's comparand.
    * ``created_at`` — unix time the manifest was written.
    """

    campaign_key: str
    server: str
    os_codename: str
    os_display: str
    seed: int
    build_fingerprint: str
    faultload_digest: str
    slots: int
    workers: int
    slots_per_shard: int
    num_shards: int
    iterations: int
    journal_version: int
    phase_timings: dict = dataclasses.field(default_factory=dict)
    supervision: dict = dataclasses.field(default_factory=dict)
    integrity: dict = dataclasses.field(default_factory=dict)
    activation: dict = dataclasses.field(default_factory=dict)
    snapshot: dict = dataclasses.field(default_factory=dict)
    fabric: dict = dataclasses.field(default_factory=dict)
    sequential: dict = dataclasses.field(default_factory=dict)
    metrics_digest: str = ""
    created_at: float = 0.0
    manifest_version: int = MANIFEST_VERSION

    def to_dict(self):
        return dataclasses.asdict(self)

    def write(self, path):
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path):
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(**data)
