"""Copy-on-write machine snapshots (DESIGN.md §12).

The paper's Fig. 4 protocol restarts the SUB between injection slots so
every fault meets a pristine OS.  Booting and warming a simulated
machine is deterministic for a given ``(config, iteration)`` — so it
only ever needs to happen once.  This module captures the complete
simulated state of a warmed-up :class:`~repro.harness.machine.ServerMachine`
(simulator clock / event queue / RNG streams, kernel VFS / heap /
handles / sync, dispatch tables, server runtime threads and CPU
accounting, client collector and connection state) as one immutable
pickle image, and manufactures as many private copies as the harness
asks for.

Copy-on-write here is logical, not page-table: the image bytes are
shared and never mutated; each :meth:`MachineSnapshot.restore` is a
fresh materialization whose objects are private to the epoch that
requested it.  ``pickle`` rather than ``copy.deepcopy`` because the
C-speed round-trip restores in a fraction of the time the pure-Python
memo walk needs — the restore path is the hot path.

Two objects are deliberately *not* captured:

* the :class:`~repro.harness.config.ExperimentConfig` — immutable for
  the lifetime of a run and part of the snapshot key itself;
* the :class:`~repro.ossim.builds.OsBuild` — module-level code shared
  by every machine in the process.  The G-SWFIT injector mutates it
  globally (``__code__`` swaps), so a restored machine must dispatch
  against the *live* build, not a frozen copy of it.

Both are tunnelled through the pickle as persistent IDs and re-attached
by reference on restore.

Restore-verify protocol: alongside the image, the capturer stores the
:class:`~repro.ossim.integrity.IntegrityAuditor`'s capture-time audit
report.  A restored machine is re-audited before use and must reproduce
that report byte-for-byte; a mismatch discards the snapshot and the
caller falls back to a full boot + warm-up.
"""

import hashlib
import io
import json
import pickle
from collections import OrderedDict
from dataclasses import asdict

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "MachineSnapshot",
    "SnapshotCache",
    "snapshot_cache",
    "snapshot_key",
]

# Snapshots are a few hundred KB each; one entry per concurrently-live
# (config, iteration) is plenty — a shard worker only ever cycles
# through its own iteration's key, plus a retry's.
DEFAULT_CACHE_ENTRIES = 8


def snapshot_key(config, iteration):
    """Identity of one captured epoch: the full config plus iteration.

    Every field that shapes boot + warm-up is in the config, and the
    machine seed is ``config.iteration_seed(iteration)`` — so this key
    names the deterministic post-warm-up state exactly.  It is the same
    ``asdict`` serialization :func:`~repro.harness.campaign.campaign_key`
    hashes, which is how the snapshot identity folds into the campaign
    identity.
    """
    payload = json.dumps(asdict(config), sort_keys=True, default=str)
    blob = f"{payload}\n{iteration}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class MachineSnapshot:
    """One warmed-up machine epoch, frozen as immutable bytes.

    ``reference`` is the capture-time integrity audit as a plain dict
    (None when auditing is off): the comparand of the restore-verify
    protocol.
    """

    def __init__(self, key, image, shared, reference=None):
        self.key = key
        self._image = image
        self._shared = shared
        self.reference = reference
        self.restores = 0

    @classmethod
    def capture(cls, key, machine, auditor=None):
        """Freeze ``machine`` (and its auditor) into a snapshot.

        Capturing only reads state — the live machine keeps running
        and stays the canonical first epoch.
        """
        shared = (machine.config, machine.build)
        by_id = {id(obj): index for index, obj in enumerate(shared)}
        buffer = io.BytesIO()
        pickler = pickle.Pickler(
            buffer, protocol=pickle.HIGHEST_PROTOCOL
        )
        pickler.persistent_id = lambda obj: by_id.get(id(obj))
        pickler.dump({"machine": machine, "auditor": auditor})
        return cls(key, buffer.getvalue(), shared)

    def restore(self):
        """Materialize a private ``(machine, auditor)`` copy.

        Every call returns fresh objects: nothing a restored epoch does
        can reach the image or any other epoch's copy.  The config and
        build come back by reference (see module docstring).
        """
        unpickler = pickle.Unpickler(io.BytesIO(self._image))
        unpickler.persistent_load = self._shared.__getitem__
        state = unpickler.load()
        self.restores += 1
        return state["machine"], state["auditor"]

    @property
    def image_bytes(self):
        """Size of the frozen image in bytes (diagnostic)."""
        return len(self._image)

    def __repr__(self):
        return (
            f"MachineSnapshot(key={self.key[:12]}..., "
            f"bytes={self.image_bytes}, restores={self.restores})"
        )


class SnapshotCache:
    """Process-level LRU of captured epochs, keyed by snapshot key.

    One instance per process (module singleton below): shard workers
    that rerun the same ``(config, iteration)`` — contamination
    reboots, pristine-slot restarts, supervisor retries landing on the
    same worker — restore instead of booting again.
    """

    def __init__(self, max_entries=DEFAULT_CACHE_ENTRIES):
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        snapshot = self._entries.get(key)
        if snapshot is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return snapshot

    def put(self, snapshot):
        self._entries[snapshot.key] = snapshot
        self._entries.move_to_end(snapshot.key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def discard(self, key):
        self._entries.pop(key, None)

    def resize(self, max_entries):
        self.max_entries = max(1, int(max_entries))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self):
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return (
            f"SnapshotCache(entries={len(self._entries)}/"
            f"{self.max_entries}, hits={self.hits}, "
            f"misses={self.misses})"
        )


_CACHE = SnapshotCache()


def snapshot_cache():
    """The process-wide snapshot cache."""
    return _CACHE
