"""Dependability benchmark harness.

Orchestrates the paper's experiment: deploy a server/OS combination on a
simulated machine (:mod:`repro.harness.machine`), run the SPECWeb99-like
workload, and — for injection runs — walk the faultload slot by slot
(Fig. 4 of the paper) while a watchdog (:mod:`repro.harness.watchdog`)
observes the server and repairs it, producing the MIS/KNS/KCP counters.
:mod:`repro.harness.experiment` ties it together;
:mod:`repro.harness.metrics` derives the dependability measures (SPCf,
THRf, RTMf, ADMf, ER%f) the paper proposes.
"""

from repro.harness.config import ExperimentConfig
from repro.harness.machine import ServerMachine
from repro.harness.watchdog import Watchdog
from repro.harness.experiment import WebServerExperiment
from repro.harness.campaign import ParallelCampaign
from repro.harness.metrics import DependabilityMetrics
from repro.harness.results import (
    BenchmarkResult,
    InjectionIteration,
    average_iterations,
)

__all__ = [
    "BenchmarkResult",
    "DependabilityMetrics",
    "ExperimentConfig",
    "InjectionIteration",
    "ParallelCampaign",
    "ServerMachine",
    "Watchdog",
    "WebServerExperiment",
    "average_iterations",
]
