"""The experiment watchdog.

Plays the role of the monitoring half of the paper's G-SWFIT injector: it
polls the web server's externally observable state and intervenes exactly
like the paper's tooling, producing the three administration counters:

* **MIS** — the server died and did not self-restart (it needed an
  explicit restart);
* **KNS** — the server was alive but not responding to requests and had
  to be killed and restarted;
* **KCP** — the server was hogging the CPU while providing no service and
  had to be killed.

A restart attempted while the fault is still active can fail (the child
crashes during startup); the watchdog retries on its polling cadence but
counts the death only once per incident.  Retries per incident are capped
(``max_restart_attempts``): a fault that keeps killing the child at
startup would otherwise turn every poll into a futile restart storm.  At
the cap the watchdog records one ``RESTART_EXHAUSTED`` incident and waits;
the harness re-arms it from the slot gap (``retry_exhausted=True``) once
the fault has been removed, when a restart can actually succeed.
"""

__all__ = ["Watchdog"]


class Watchdog:
    """Polls one server runtime and repairs it."""

    def __init__(self, sim, runtime, poll_seconds=1.0,
                 unresponsive_after=4.0, restart_grace=5.0,
                 max_restart_attempts=5):
        self.sim = sim
        self.runtime = runtime
        self.poll_seconds = poll_seconds
        self.unresponsive_after = unresponsive_after
        # Consecutive *failed* restart attempts allowed per death
        # incident before the watchdog stops storming and waits for the
        # harness to re-arm it (fault removed at the slot boundary).
        self.max_restart_attempts = max_restart_attempts
        # After killing and restarting the server, give it this long to
        # prove itself before judging responsiveness again — otherwise a
        # stale last-success timestamp earns an immediate second kill.
        self.restart_grace = restart_grace
        self.mis = 0
        self.kns = 0
        self.kcp = 0
        # Every administration incident, in simulated-time order: the
        # raw material behind the ADMf counters, exported through shard
        # outcomes into campaign telemetry.  Sim time is deterministic,
        # so the log is identical for any worker count.
        self.incidents = []
        self.restarts_performed = 0
        self._death_counted = False
        self._failed_restart_attempts = 0
        self._exhaustion_recorded = False
        self._last_restart_time = float("-inf")
        self._poll_event = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._running:
            return
        self._running = True
        self._poll_event = self.sim.schedule(self.poll_seconds, self._poll)

    def stop(self):
        self._running = False
        if self._poll_event is not None:
            self.sim.cancel(self._poll_event)
            self._poll_event = None

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def _poll(self):
        self._poll_event = None
        if not self._running:
            return
        self.check_now()
        self._poll_event = self.sim.schedule(self.poll_seconds, self._poll)

    def check_now(self, retry_exhausted=False):
        """One health check + repair cycle (also used at slot cleanup).

        ``retry_exhausted=True`` (the slot-gap call, after the fault has
        been removed) grants an exhausted incident a fresh attempt
        budget — a restart can succeed now that nothing kills startup.
        """
        runtime = self.runtime
        if runtime.is_dead():
            if not self._death_counted:
                self.mis += 1
                self._record_incident("MIS")
                self._death_counted = True
            if retry_exhausted and self._exhaustion_recorded:
                self._failed_restart_attempts = 0
                self._exhaustion_recorded = False
            if self._failed_restart_attempts >= self.max_restart_attempts:
                if not self._exhaustion_recorded:
                    self._record_incident("RESTART_EXHAUSTED")
                    self._exhaustion_recorded = True
                return
            if runtime.restart():
                self._death_counted = False
                self.restarts_performed += 1
                self._last_restart_time = self.sim.now
                self._failed_restart_attempts = 0
                self._exhaustion_recorded = False
            else:
                self._failed_restart_attempts += 1
                if (self._failed_restart_attempts
                        >= self.max_restart_attempts):
                    self._record_incident("RESTART_EXHAUSTED")
                    self._exhaustion_recorded = True
            return
        self._death_counted = False
        self._failed_restart_attempts = 0
        self._exhaustion_recorded = False
        in_grace = (
            self.sim.now - self._last_restart_time < self.restart_grace
        )
        if not in_grace and self._looks_unresponsive():
            if runtime.cpu_hog_recent:
                self.kcp += 1
                self._record_incident("KCP")
            else:
                self.kns += 1
                self._record_incident("KNS")
            runtime.restart()
            self.restarts_performed += 1
            self._last_restart_time = self.sim.now

    def _looks_unresponsive(self):
        """Alive, being asked for service, delivering none."""
        runtime = self.runtime
        now = self.sim.now
        horizon = now - self.unresponsive_after
        if runtime.last_attempt_time < horizon:
            return False  # no recent demand; nothing observable
        if runtime.last_success_time >= horizon:
            return False  # it served something recently
        # Demand without service for the whole window.
        return True

    def _record_incident(self, kind):
        # Keys in sorted order so a journal round-trip (sort_keys=True)
        # reproduces the live dict byte-for-byte in exports.
        self.incidents.append({"kind": kind, "t": self.sim.now})

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def admf(self):
        """Administrator interventions: MIS + KNS + KCP (paper ADMf)."""
        return self.mis + self.kns + self.kcp

    def counters(self):
        return {"MIS": self.mis, "KNS": self.kns, "KCP": self.kcp}

    def __repr__(self):
        return (
            f"Watchdog(MIS={self.mis}, KNS={self.kns}, KCP={self.kcp})"
        )
