"""Result records for benchmark campaigns."""

from dataclasses import dataclass, field

from repro.specweb.metrics import SpecWebMetrics

__all__ = [
    "BenchmarkResult",
    "InjectionIteration",
    "average_iterations",
]


@dataclass
class InjectionIteration:
    """One full pass over the faultload (one of the paper's iterations)."""

    iteration: int
    metrics: SpecWebMetrics
    mis: int
    kns: int
    kcp: int
    faults_injected: int
    runtime_stats: dict = field(default_factory=dict)
    # Per-incident ADMf detail from the watchdog: {"t": sim_time,
    # "kind": "MIS"|"KNS"|"KCP"|"RESTART_EXHAUSTED"}, ordered by slot
    # then sim time.
    incidents: list = field(default_factory=list)
    # Integrity protocol (DESIGN.md §10): per-slot contamination records
    # ({"slot", "fault_id", "kinds", "violations", "rebooted"}), the
    # verified-reboot log ({"after_slot", "verified"}), and whether
    # auditing ran at all (False = RES is unknowable, not zero).
    contaminated_slots: list = field(default_factory=list)
    reboots: list = field(default_factory=list)
    integrity_enabled: bool = False

    @property
    def admf(self):
        return self.mis + self.kns + self.kcp

    @property
    def residual_errors(self):
        """Slots measured on a state-damaged machine (None = not audited)."""
        if not self.integrity_enabled:
            return None
        return len(self.contaminated_slots)

    def as_row(self):
        """The paper's Table 5 row shape (plus the RES audit column)."""
        return {
            "SPC": self.metrics.spc,
            "THR": self.metrics.thr,
            "RTM": self.metrics.rtm_ms,
            "ER%": self.metrics.er_percent,
            "MIS": self.mis,
            "KCP": self.kcp,
            "KNS": self.kns,
            "RES": self.residual_errors,
        }


@dataclass
class BenchmarkResult:
    """Everything measured for one server/OS pair."""

    server_name: str
    os_codename: str
    os_display: str
    baseline: SpecWebMetrics | None = None
    profile_mode: SpecWebMetrics | None = None
    iterations: list = field(default_factory=list)
    # Supervised execution: True when at least one shard was quarantined
    # (its slots are missing from the merged metrics); the quarantine
    # list records each poisoned shard with its iteration and fault ids.
    degraded: bool = False
    quarantine: list = field(default_factory=list)

    def average_row(self):
        return average_iterations(self.iterations)

    def add_iteration(self, iteration_result):
        self.iterations.append(iteration_result)

    def __repr__(self):
        return (
            f"BenchmarkResult({self.server_name} on {self.os_display}, "
            f"iterations={len(self.iterations)})"
        )


def average_iterations(iterations):
    """Average the Table 5 row values over iterations (paper's last row).

    ``RES`` is None for unaudited iterations; it averages over audited
    iterations only and stays None when there are none.
    """
    if not iterations:
        return {}
    keys = ["SPC", "THR", "RTM", "ER%", "MIS", "KCP", "KNS"]
    totals = {key: 0.0 for key in keys}
    res_total = 0.0
    res_count = 0
    for iteration in iterations:
        row = iteration.as_row()
        for key in keys:
            totals[key] += row[key]
        if row.get("RES") is not None:
            res_total += row["RES"]
            res_count += 1
    count = len(iterations)
    averaged = {key: value / count for key, value in totals.items()}
    averaged["RES"] = res_total / res_count if res_count else None
    return averaged
