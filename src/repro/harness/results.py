"""Result records for benchmark campaigns."""

from dataclasses import dataclass, field

from repro.specweb.metrics import SpecWebMetrics

__all__ = [
    "BenchmarkResult",
    "InjectionIteration",
    "average_iterations",
]


@dataclass
class InjectionIteration:
    """One full pass over the faultload (one of the paper's iterations)."""

    iteration: int
    metrics: SpecWebMetrics
    mis: int
    kns: int
    kcp: int
    faults_injected: int
    runtime_stats: dict = field(default_factory=dict)
    # Per-incident ADMf detail from the watchdog: {"t": sim_time,
    # "kind": "MIS"|"KNS"|"KCP"|"RESTART_EXHAUSTED"}, ordered by slot
    # then sim time.
    incidents: list = field(default_factory=list)
    # Integrity protocol (DESIGN.md §10): per-slot contamination records
    # ({"slot", "fault_id", "kinds", "violations", "rebooted"}), the
    # verified-reboot log ({"after_slot", "verified"}), and whether
    # auditing ran at all (False = RES is unknowable, not zero).
    contaminated_slots: list = field(default_factory=list)
    reboots: list = field(default_factory=list)
    integrity_enabled: bool = False
    # Activation telemetry (DESIGN.md §11): per-slot probe records
    # ({"slot", "fault_id", "hits", "first_hit", "truncated"}, slot
    # order), the activated/truncated totals, and whether tracking ran
    # at all (False = ACT% is unknowable, not zero).
    activations: list = field(default_factory=list)
    faults_activated: int = 0
    slots_truncated: int = 0
    truncated_seconds: float = 0.0
    activation_enabled: bool = False
    # Epoch-setup accounting (DESIGN.md §12): machine epochs that came
    # up via full boot vs snapshot restore, and the count of per-slot
    # pristine restarts.  Diagnostic — deliberately excluded from the
    # metrics digest, which must be identical either way.
    epochs_booted: int = 0
    epochs_restored: int = 0
    pristine_restarts: int = 0
    snapshot_enabled: bool = False

    @property
    def admf(self):
        return self.mis + self.kns + self.kcp

    @property
    def residual_errors(self):
        """Slots measured on a state-damaged machine (None = not audited)."""
        if not self.integrity_enabled:
            return None
        return len(self.contaminated_slots)

    @property
    def activation_rate(self):
        """Fraction of injected faults whose code ran (None = untracked)."""
        if not self.activation_enabled or not self.faults_injected:
            return None
        return self.faults_activated / self.faults_injected

    def as_row(self):
        """The paper's Table 5 row shape (plus the RES audit column)."""
        rate = self.activation_rate
        return {
            "SPC": self.metrics.spc,
            "THR": self.metrics.thr,
            "RTM": self.metrics.rtm_ms,
            "ER%": self.metrics.er_percent,
            "MIS": self.mis,
            "KCP": self.kcp,
            "KNS": self.kns,
            "RES": self.residual_errors,
            "ACT%": None if rate is None else rate * 100.0,
        }


@dataclass
class BenchmarkResult:
    """Everything measured for one server/OS pair."""

    server_name: str
    os_codename: str
    os_display: str
    baseline: SpecWebMetrics | None = None
    profile_mode: SpecWebMetrics | None = None
    iterations: list = field(default_factory=list)
    # Supervised execution: True when at least one shard was quarantined
    # (its slots are missing from the merged metrics); the quarantine
    # list records each poisoned shard with its iteration and fault ids.
    degraded: bool = False
    quarantine: list = field(default_factory=list)
    # Sequential-sampling accounting (DESIGN.md §14): the campaign's
    # ``sequential`` block — stopping schedule, per-stratum stopping
    # points, interval trajectories, slots skipped.  Diagnostic, and
    # deliberately excluded from the metrics digest: the decisions are
    # reflected in which slots ran, not hashed themselves.
    sequential: dict = field(default_factory=dict)

    def average_row(self):
        return average_iterations(self.iterations)

    def add_iteration(self, iteration_result):
        self.iterations.append(iteration_result)

    def __repr__(self):
        return (
            f"BenchmarkResult({self.server_name} on {self.os_display}, "
            f"iterations={len(self.iterations)})"
        )


def average_iterations(iterations):
    """Average the Table 5 row values over iterations (paper's last row).

    ``RES`` and ``ACT%`` are None for unaudited/untracked iterations;
    each averages over the iterations that report it and stays None when
    there are none.
    """
    if not iterations:
        return {}
    keys = ["SPC", "THR", "RTM", "ER%", "MIS", "KCP", "KNS"]
    totals = {key: 0.0 for key in keys}
    optional = {"RES": [0.0, 0], "ACT%": [0.0, 0]}
    for iteration in iterations:
        row = iteration.as_row()
        for key in keys:
            totals[key] += row[key]
        for key, bucket in optional.items():
            if row.get(key) is not None:
                bucket[0] += row[key]
                bucket[1] += 1
    count = len(iterations)
    averaged = {key: value / count for key, value in totals.items()}
    for key, (total, seen) in optional.items():
        averaged[key] = total / seen if seen else None
    return averaged
