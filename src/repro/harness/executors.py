"""Pluggable executor backends for the shard supervisor.

The supervisor used to be welded to one dispatch mechanism — an
in-process :class:`~concurrent.futures.ProcessPoolExecutor`.  Scaling a
campaign beyond one machine's cores means the *mechanics* of running a
shard (submit it somewhere, learn what happened to it) must be separable
from the *policy* of supervising it (retries, probation, quarantine,
serial fallback), which stays in
:class:`~repro.harness.supervisor.ShardSupervisor`.

A backend implements four methods::

    can_accept()                 -> bool   # room for another dispatch?
    submit_shard(ticket, shard, task) -> list[ShardEvent]  # dispatch
    drain(timeout)               -> list[ShardEvent]       # what happened
    shutdown()                                             # release it

plus an optional ``stats()`` supervision hook returning a JSON-ready
summary for the run manifest.  Every dispatch is identified by a
*ticket* (the shard index — unique within one supervised pass), and
everything the backend has to tell the supervisor travels as
:class:`ShardEvent` records out of :meth:`drain`: completions, charged
failures, uncharged requeues, whole-backend losses, and telemetry to be
emitted from the supervisor's thread (backends may run threads of their
own, and the telemetry writer is single-threaded by design).

Two backends exist: :class:`PoolExecutorBackend` here (the default —
the original process-pool path, behaviour preserved) and the socket
coordinator in :mod:`repro.harness.fabric` (workers on other processes
or other machines, pull-based work stealing).
"""

import math
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

__all__ = [
    "PoolExecutorBackend",
    "ShardEvent",
    "terminate_pool_processes",
]


@dataclass
class ShardEvent:
    """One thing a backend has to tell the supervisor.

    ``kind`` is one of:

    * ``done``         — ``ticket`` completed with ``outcome``.
    * ``failed``       — ``ticket`` suffered a *charged* failure
      (``reason``); the supervisor retries or quarantines it.
    * ``requeue``      — ``ticket`` must re-run but is *not* charged
      (innocent bystander of a backend loss).
    * ``backend_lost`` — the execution substrate itself failed (pool
      broke, every fabric worker gone); counts against the supervisor's
      rebuild budget and triggers serial fallback when exhausted.
    * ``info``         — telemetry only: emit ``event`` with ``fields``
      on the supervisor's stream (thread-safe funnel for backends that
      run their own threads).

    ``probation``/``front`` say where a surviving ``failed``/``requeue``
    attempt goes: the probation queue (solo re-dispatch) or the pending
    queue, optionally at the front.
    """

    kind: str
    ticket: int | None = None
    outcome: object = None
    seconds: float = 0.0
    reason: str = ""
    probation: bool = False
    front: bool = False
    event: str = ""
    fields: dict = field(default_factory=dict)


def terminate_pool_processes(pool):
    """Hard-kill a process pool's workers, best-effort.

    A hung worker never returns, so the only way to reclaim it is to
    terminate the processes under the executor.  The ``_processes`` map
    is executor-internal (stable since 3.7) — when it is absent (another
    executor implementation, a test double, a future stdlib) this falls
    back to ``shutdown(cancel_futures=True)`` so the pool is still
    released rather than leaked.  Returns the number of processes
    terminated.
    """
    processes = getattr(pool, "_processes", None)
    if processes is None:
        pool.shutdown(wait=False, cancel_futures=True)
        return 0
    killed = 0
    for process in list(processes.values()):
        try:
            if process.is_alive():
                process.terminate()
                killed += 1
        except (OSError, ValueError):
            pass
    return killed


class PoolExecutorBackend:
    """The original dispatch mechanics: one ProcessPoolExecutor.

    Capacity is the worker count; a dispatch carries an optional
    wall-clock deadline.  Failure translation:

    * a task exception is a charged ``failed`` (crash);
    * ``BrokenProcessPool`` poisons every in-flight future, so the
      culprit is ambiguous — a solo victim is charged, multiple victims
      are requeued uncharged onto probation;
    * a deadline overrun charges the hung dispatch, and the whole pool
      is torn down (a hung worker cannot be preempted any other way) —
      innocents go back to the front of the pending queue.
    """

    def __init__(self, workers=1, *, shard_timeout=None):
        self.workers = max(1, int(workers))
        self.shard_timeout = shard_timeout
        self._pool = None
        self._running = {}

    # ------------------------------------------------------------------
    def can_accept(self):
        return len(self._running) < self.workers

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, kill=False):
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            terminate_pool_processes(pool)
        pool.shutdown(wait=False, cancel_futures=True)

    def submit_shard(self, ticket, shard, task):
        pool = self._ensure_pool()
        try:
            future = pool.submit(task, shard)
        except BrokenProcessPool:
            # The pool died between our last drain and this submit.
            self._discard_pool()
            return [
                ShardEvent("backend_lost", reason="submit-on-broken"),
                ShardEvent("requeue", ticket=ticket,
                           reason="submit-on-broken",
                           probation=True, front=True),
            ]
        now = time.monotonic()
        deadline = (math.inf if self.shard_timeout is None
                    else now + self.shard_timeout)
        self._running[future] = (ticket, deadline, now)
        return []

    def drain(self, timeout):
        if not self._running:
            return []
        done, _ = wait(list(self._running), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        now = time.monotonic()
        events = []
        broken = []
        for future in done:
            ticket, _deadline, started = self._running.pop(future)
            exception = future.exception()
            if exception is None:
                events.append(ShardEvent(
                    "done", ticket=ticket, outcome=future.result(),
                    seconds=now - started,
                ))
            elif isinstance(exception, BrokenProcessPool):
                broken.append(ticket)
            else:
                events.append(ShardEvent(
                    "failed", ticket=ticket,
                    reason=f"crash: {exception!r}",
                ))
        if broken:
            events.extend(self._pool_loss(broken, now))
            return events
        events.extend(self._check_deadlines(now))
        return events

    def _pool_loss(self, broken, now):
        """A worker died; every in-flight future is (or will be) broken."""
        events = []
        victims = list(broken)
        for future in list(self._running):
            ticket, _deadline, started = self._running.pop(future)
            if future.done() and future.exception() is None:
                # Finished in the gap between the kill and our drain.
                events.append(ShardEvent(
                    "done", ticket=ticket, outcome=future.result(),
                    seconds=now - started,
                ))
            else:
                victims.append(ticket)
        self._discard_pool()
        events.append(ShardEvent(
            "backend_lost", reason="worker-died",
            fields={"suspects": list(victims)},
        ))
        if len(victims) == 1:
            # Solo dispatch: the culprit is unambiguous — charge it.
            events.append(ShardEvent(
                "failed", ticket=victims[0],
                reason="worker died (pool lost)", probation=True,
            ))
        else:
            # Culprit unknown: everyone goes to probation, uncharged,
            # to be re-run one at a time.
            events.extend(
                ShardEvent("requeue", ticket=ticket,
                           reason="pool lost", probation=True)
                for ticket in victims
            )
        return events

    def _check_deadlines(self, now):
        hung = {
            future for future, (_t, deadline, _s) in self._running.items()
            if now >= deadline
        }
        if not hung:
            return []
        events = []
        for future in list(self._running):
            ticket, _deadline, started = self._running.pop(future)
            if future in hung:
                events.append(ShardEvent(
                    "failed", ticket=ticket,
                    reason=(f"hang: exceeded {self.shard_timeout}s "
                            f"deadline"),
                    probation=True,
                ))
            elif future.done() and future.exception() is None:
                events.append(ShardEvent(
                    "done", ticket=ticket, outcome=future.result(),
                    seconds=now - started,
                ))
            else:
                # Innocent bystander: requeue uncharged, ahead of new
                # work.
                events.append(ShardEvent(
                    "requeue", ticket=ticket, reason="pool torn down",
                    front=True,
                ))
        # A hung worker cannot be preempted individually — kill the pool.
        self._discard_pool(kill=True)
        events.append(ShardEvent("backend_lost", reason="hang"))
        return events

    def shutdown(self):
        self._discard_pool()

    def stats(self):
        return {"backend": "pool", "workers": self.workers}
