"""Exponential backoff with deterministic jitter.

Every place the campaign stack talks to something that can transiently
fail — a fabric worker redialling its coordinator, the service daemon
retrying a failed campaign attempt — retries on the same policy:
exponential growth from a base delay, a hard ceiling, and a jitter term
that spreads simultaneous retriers apart so they do not reconverge on
the exact same instant (the classic thundering-herd failure of
un-jittered backoff).

The jitter is *deterministic*: attempt ``n`` under seed ``s`` always
yields the same delay, because the draw comes from a private
``random.Random`` keyed on ``(seed, attempt)`` rather than from shared
global state.  Two workers with different seeds spread apart; one
worker re-running a test produces byte-identical sleep schedules, which
is what lets the reconnect tests assert exact delays instead of
sleeping through real ones.
"""

import random

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """``delay(attempt)`` = min(cap, base * factor^(attempt-1)) * jitter.

    ``jitter`` is the maximum *fractional* inflation: the delay is
    multiplied by ``1 + jitter * u`` with ``u`` drawn uniformly from
    ``[0, 1)`` — the deterministic draw described in the module
    docstring.  ``jitter=0`` disables it entirely.
    """

    def __init__(self, base=0.5, factor=2.0, max_delay=30.0,
                 jitter=0.5, seed=0):
        if base <= 0:
            raise ValueError("base delay must be positive")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if jitter < 0:
            raise ValueError("jitter fraction must be >= 0")
        self.base = float(base)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed

    def delay(self, attempt):
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay,
                  self.base * self.factor ** (attempt - 1))
        if not self.jitter:
            return raw
        draw = random.Random(f"{self.seed}:{attempt}").random()
        return raw * (1.0 + self.jitter * draw)
