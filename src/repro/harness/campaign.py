"""Parallel campaign engine.

The paper's experiment is embarrassingly parallel: every injection slot
is independent (the fault is removed and the server repaired between
slots), so a campaign can be sharded across worker processes.  The unit
of work is a **shard** — one contiguous run of ``slots_per_shard`` slots,
by default exactly one SPECWeb conformance batch, so the conformance
grouping of a sharded run matches a serial one.

Determinism is the design constraint:

* the shard plan depends only on the prepared faultload and the shard
  size — never on the worker count;
* each shard runs on a private :class:`ServerMachine` seeded from
  ``derive_seed(config.seed, "campaign-shard", shard.index)``, so its
  behaviour is independent of scheduling;
* workers return :class:`~repro.specweb.metrics.MetricsPartial` sums,
  which the parent merges in slot order (MIS/KNS/KCP and the per-shard
  runtime stats are summed the same way).

Consequently ``workers=N`` is bit-identical to ``workers=1`` for the
same config and seed.

**Checkpoint/resume**: when given a journal path the campaign appends
one JSON line per completed unit (header, baseline/profile phases, and
every ``(iteration, shard)``).  ``resume=True`` replays completed units
from the journal — a campaign killed mid-iteration and resumed produces
exactly the result of an uninterrupted run.

**Supervision**: shards run under a
:class:`~repro.harness.supervisor.ShardSupervisor` — a crashed or killed
worker is retried on a fresh dispatch, a hung shard is detected by its
wall-clock deadline, and a shard that keeps failing is quarantined
(recorded with its fault ids) instead of sinking the campaign, which
then completes with ``degraded=True``.  Every supervision decision and
phase boundary is streamed to a telemetry JSONL file, and the run ends
by writing a :class:`~repro.harness.telemetry.RunManifest` whose
``metrics_digest`` is byte-identical for any worker count — the hook CI
gates determinism on.
"""

import hashlib
import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from functools import partial
from pathlib import Path

from repro.faults.faultload import Faultload
from repro.gswfit.cache import (
    library_fingerprint,
    scan_build_cached,
    warm_mutant_cache,
)
from repro.harness.experiment import WebServerExperiment, profile_servers
from repro.harness.jsonl import read_jsonl
from repro.harness.results import BenchmarkResult, InjectionIteration
from repro.harness.sequential import (
    SequentialController,
    plan_sequential_strata,
)
from repro.harness.supervisor import (
    DEFAULT_MAX_POOL_REBUILDS,
    DEFAULT_MAX_RETRIES,
    ShardSupervisor,
    SupervisionInterrupted,
    SupervisionReport,
)
from repro.harness.telemetry import (
    NullTelemetry,
    RunManifest,
    TelemetryWriter,
    faultload_digest,
    metrics_digest,
)
from repro.ossim.builds import get_build
from repro.sim.rng import derive_seed
from repro.specweb.metrics import MetricsPartial, SpecWebMetrics

__all__ = [
    "CampaignInterrupted",
    "CampaignJournal",
    "CampaignShard",
    "ParallelCampaign",
    "ShardOutcome",
    "campaign_key",
    "derive_activation_deadlines",
    "merge_outcomes",
    "plan_shards",
    "run_shard",
]


class CampaignInterrupted(RuntimeError):
    """A campaign stopped early at a shard boundary (drain or budget).

    Every unit completed before the stop is in the journal, so a later
    run with ``resume=True`` replays them and finishes the campaign with
    a ``metrics_digest`` identical to an uninterrupted run — this is the
    contract the service daemon's graceful drain and wall-clock budget
    are built on.
    """

    def __init__(self, campaign_key, completed, remaining):
        super().__init__(
            f"campaign interrupted: {completed} shard(s) journaled, "
            f"{remaining} not run"
        )
        self.campaign_key = campaign_key
        self.completed = completed
        self.remaining = remaining

# v6: sequential campaigns append ``batch`` records — the per-stratum
# stopping decisions — alongside the shard outcomes they were derived
# from, so a resumed run can be audited against the uninterrupted one.
# v5: shard outcomes carry epoch-setup accounting (booted vs restored
# epochs, pristine restarts); older journals rerun rather than merge
# half-schema outcomes.
JOURNAL_VERSION = 6


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignShard:
    """A contiguous run of injection slots (one worker task)."""

    index: int
    first_slot: int
    locations: tuple

    def __len__(self):
        return len(self.locations)


def plan_shards(faultload, slots_per_shard):
    """Cut a prepared faultload into contiguous shards.

    The plan is a pure function of the faultload order and the shard
    size — the worker count never enters, which is what makes the merged
    result independent of it.
    """
    if slots_per_shard < 1:
        raise ValueError("slots_per_shard must be >= 1")
    locations = list(faultload)
    shards = []
    for index, first in enumerate(range(0, len(locations),
                                        slots_per_shard)):
        shards.append(CampaignShard(
            index=index,
            first_slot=first,
            locations=tuple(locations[first:first + slots_per_shard]),
        ))
    return shards


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class ShardOutcome:
    """What one shard contributes to an iteration's merged result."""

    shard_index: int
    first_slot: int
    num_slots: int
    partial: MetricsPartial
    mis: int
    kns: int
    kcp: int
    faults_injected: int
    runtime_stats: dict
    incidents: list = field(default_factory=list)
    # Integrity protocol: slot-global contamination records and the
    # shard's verified-reboot log (see SlotRunResult).
    contaminated_slots: list = field(default_factory=list)
    reboots: list = field(default_factory=list)
    integrity_enabled: bool = False
    # Activation telemetry (journal v4): per-slot probe records in
    # shard-local slot order, plus the shard's totals.
    activations: list = field(default_factory=list)
    faults_activated: int = 0
    slots_truncated: int = 0
    truncated_seconds: float = 0.0
    activation_enabled: bool = False
    # Epoch-setup accounting (journal v5): how the shard's machine
    # epochs came up.  Diagnostic — never part of the metrics digest.
    epochs_booted: int = 0
    epochs_restored: int = 0
    pristine_restarts: int = 0
    snapshot_enabled: bool = False

    def to_dict(self):
        data = asdict(self)
        data["partial"] = self.partial.to_dict()
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["partial"] = MetricsPartial.from_dict(data["partial"])
        data.setdefault("incidents", [])
        data.setdefault("contaminated_slots", [])
        data.setdefault("reboots", [])
        data.setdefault("integrity_enabled", False)
        data.setdefault("activations", [])
        data.setdefault("faults_activated", 0)
        data.setdefault("slots_truncated", 0)
        data.setdefault("truncated_seconds", 0.0)
        data.setdefault("activation_enabled", False)
        data.setdefault("epochs_booted", 0)
        data.setdefault("epochs_restored", 0)
        data.setdefault("pristine_restarts", 0)
        data.setdefault("snapshot_enabled", False)
        return cls(**data)


def derive_activation_deadlines(config):
    """Profile the target and derive per-function activation deadlines.

    Runs a short deterministic API-usage trace of the configured server
    (the Section 3.3 profiling phase, reused) and converts each observed
    function's call rate into a truncation deadline: a function called
    every ``gap`` seconds that has not activated within ``4 * gap`` of
    slot start almost certainly never will this slot.  The deadline is
    clamped between the configured floor fraction and the slot length.

    The table is a pure function of the config (trace seeded like every
    other machine), so the campaign parent derives it once *before* the
    campaign key is computed and every worker inherits the same table —
    worker-count parity is preserved by construction.  Functions the
    trace never observed fall back to the floor fraction at lookup time.
    """
    seconds = config.activation_profile_seconds
    tracer = profile_servers(
        config, [config.server_name], seconds=seconds
    )[config.server_name]
    slot = config.rules.slot_seconds
    floor = slot * config.activation_floor_fraction
    per_function = {}
    for (_module_display, function), count in tracer.counts.items():
        per_function[function] = per_function.get(function, 0) + count
    deadlines = {}
    for function in sorted(per_function):
        gap = seconds / per_function[function]
        deadlines[function] = round(min(slot, max(4.0 * gap, floor)), 6)
    return deadlines


def shard_seed(base_seed, shard_index):
    """The seed family one shard's machine draws from."""
    return derive_seed(base_seed, "campaign-shard", shard_index)


def run_shard(config, iteration, shard, mutant_cache_dir=None):
    """Run one shard's slots on a private machine (worker entry point).

    Top-level so it pickles into a :class:`ProcessPoolExecutor`; it is
    also what ``workers=1`` calls directly, keeping the two modes on one
    code path.  ``mutant_cache_dir`` is passed alongside the config (not
    inside it) so the campaign key — a pure function of the experiment's
    parameters — is unaffected by where a machine keeps its caches.
    """
    if config.operator_specs:
        # Workers may be freshly spawned (or remote fabric) processes:
        # the dynamic operators behind the shard's fault ids must exist
        # before any mutant is resolved.  Idempotent by spec digest.
        from repro.gswfit.dsl import install_spec_operators

        install_spec_operators(config.operator_specs)
    shard_config = replace(config)
    shard_config.seed = shard_seed(config.seed, shard.index)
    faultload = Faultload(
        config.os_codename,
        shard.locations,
        name=f"shard-{shard.index}",
        prepared=True,
    )
    experiment = WebServerExperiment(shard_config)
    run = experiment.run_slots(
        faultload, iteration=iteration,
        mutant_cache_dir=mutant_cache_dir,
        first_slot=shard.first_slot,
    )
    partial = run.compute_partial(config.conformance_slots)
    return ShardOutcome(
        shard_index=shard.index,
        first_slot=shard.first_slot,
        num_slots=len(shard.locations),
        partial=partial,
        mis=run.mis,
        kns=run.kns,
        kcp=run.kcp,
        faults_injected=run.faults_injected,
        runtime_stats=dict(run.runtime_stats),
        incidents=list(run.incidents),
        contaminated_slots=list(run.contaminated_slots),
        reboots=list(run.reboots),
        integrity_enabled=run.integrity_enabled,
        activations=list(run.activations),
        faults_activated=run.faults_activated,
        slots_truncated=run.slots_truncated,
        truncated_seconds=run.truncated_seconds,
        activation_enabled=run.activation_enabled,
        epochs_booted=run.epochs_booted,
        epochs_restored=run.epochs_restored,
        pristine_restarts=run.pristine_restarts,
        snapshot_enabled=run.snapshot_enabled,
    )


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_outcomes(outcomes, iteration, num_connections):
    """Fold shard outcomes into one :class:`InjectionIteration`.

    Outcomes are re-sorted by slot index first, so arrival order (which
    *does* depend on scheduling) never leaks into the result.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.first_slot)
    partial = MetricsPartial.merge(
        outcome.partial for outcome in ordered
    )
    runtime_stats = {}
    for outcome in ordered:
        for key, value in outcome.runtime_stats.items():
            runtime_stats[key] = runtime_stats.get(key, 0) + value
    # Key order must not depend on whether an outcome came from a live
    # worker or a journal replay (JSON round-trips sort keys), or the
    # exported campaign.json would differ byte-wise between the two.
    runtime_stats = dict(sorted(runtime_stats.items()))

    def _records(attribute):
        # Same byte-level concern as runtime_stats above: records from
        # a live shard carry insertion key order, records replayed from
        # the journal come back with sort_keys order — normalize so a
        # resumed run's campaign.json is byte-identical to a live one's.
        return [
            dict(sorted(record.items())) if isinstance(record, dict)
            else record
            for outcome in ordered
            for record in getattr(outcome, attribute, ()) or ()
        ]

    incidents = [
        incident
        for outcome in ordered
        for incident in outcome.incidents
    ]
    contaminated = _records("contaminated_slots")
    reboots = _records("reboots")
    activations = _records("activations")
    return InjectionIteration(
        iteration=iteration,
        metrics=partial.to_metrics(num_connections),
        mis=sum(outcome.mis for outcome in ordered),
        kns=sum(outcome.kns for outcome in ordered),
        kcp=sum(outcome.kcp for outcome in ordered),
        faults_injected=sum(
            outcome.faults_injected for outcome in ordered
        ),
        runtime_stats=runtime_stats,
        incidents=incidents,
        contaminated_slots=contaminated,
        reboots=reboots,
        integrity_enabled=any(
            getattr(outcome, "integrity_enabled", False)
            for outcome in ordered
        ),
        activations=activations,
        faults_activated=sum(
            getattr(outcome, "faults_activated", 0) for outcome in ordered
        ),
        slots_truncated=sum(
            getattr(outcome, "slots_truncated", 0) for outcome in ordered
        ),
        truncated_seconds=round(sum(
            getattr(outcome, "truncated_seconds", 0.0)
            for outcome in ordered
        ), 6),
        activation_enabled=any(
            getattr(outcome, "activation_enabled", False)
            for outcome in ordered
        ),
        epochs_booted=sum(
            getattr(outcome, "epochs_booted", 0) for outcome in ordered
        ),
        epochs_restored=sum(
            getattr(outcome, "epochs_restored", 0) for outcome in ordered
        ),
        pristine_restarts=sum(
            getattr(outcome, "pristine_restarts", 0) for outcome in ordered
        ),
        snapshot_enabled=any(
            getattr(outcome, "snapshot_enabled", False)
            for outcome in ordered
        ),
    )


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def campaign_key(config, faultload):
    """Identity of one campaign: config + exact slot sequence."""
    payload = json.dumps(
        {
            "config": asdict(config),
            "faultload": [loc.fault_id for loc in faultload],
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CampaignJournal:
    """Append-only JSONL checkpoint of completed campaign units.

    Line kinds:

    * ``header`` — journal version + campaign key + shape metadata,
      written once; resume refuses a journal whose key differs.
    * ``phase``  — a completed baseline / profile-mode phase with its
      :class:`SpecWebMetrics` fields.
    * ``shard``  — a completed ``(iteration, shard)`` with its
      :class:`ShardOutcome`.
    * ``batch``  — a sequential-mode stopping record: which stratum the
      shard belonged to, the slots executed so far, and the decision the
      controller took after folding it in.  Audit trail only — resume
      *recomputes* decisions from the replayed shard outcomes (a pure
      function, so they match), and tests assert they do.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.header = None
        self.phases = {}
        self.shards = {}
        self.batches = {}

    @classmethod
    def load(cls, path):
        journal = cls(path)
        # The shared torn-tail reader (also behind the telemetry reader
        # and the service's spec queue): a torn final line reruns its
        # unit, a torn interior line means real corruption and raises.
        for lineno, entry in read_jsonl(journal.path):
            kind = entry.get("kind")
            if kind == "header":
                journal.header = entry
                if entry.get("version") != JOURNAL_VERSION:
                    # Version skew: the payload schema below may not
                    # round-trip through today's classes.  Keep the
                    # header (so the caller can diagnose) but replay
                    # nothing — every unit reruns, which is always
                    # correct, just slower.
                    warnings.warn(
                        f"journal {journal.path} is version "
                        f"{entry.get('version')} (current "
                        f"{JOURNAL_VERSION}); ignoring its completed "
                        "units — they will rerun",
                        RuntimeWarning, stacklevel=2,
                    )
                    break
            elif kind == "phase":
                journal.phases[entry["phase"]] = SpecWebMetrics(
                    **entry["metrics"]
                )
            elif kind == "shard":
                try:
                    outcome = ShardOutcome.from_dict(entry["outcome"])
                except (KeyError, TypeError, ValueError) as exc:
                    # A record today's schema cannot rebuild (e.g. a
                    # fragment written by a skewed worker): rerun that
                    # unit instead of dying on it.
                    warnings.warn(
                        f"journal {journal.path} line {lineno}: "
                        f"unreadable shard record ({exc!r}); that unit "
                        "will rerun",
                        RuntimeWarning, stacklevel=2,
                    )
                    continue
                journal.shards[
                    (entry["iteration"], entry["shard"])
                ] = outcome
            elif kind == "batch":
                journal.batches[
                    (entry["iteration"], entry["shard"])
                ] = entry
        return journal

    def _append(self, entry):
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            # One buffered write per record, newline included: a crash
            # mid-append can tear at most the final line, which load()
            # already tolerates.
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def write_header(self, key, num_shards, iterations):
        self.header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "campaign_key": key,
            "num_shards": num_shards,
            "iterations": iterations,
        }
        self._append(self.header)

    def matches(self, key):
        return (
            self.header is not None
            and self.header.get("campaign_key") == key
            and self.header.get("version") == JOURNAL_VERSION
        )

    def record_phase(self, phase, metrics):
        self.phases[phase] = metrics
        self._append({
            "kind": "phase",
            "phase": phase,
            "metrics": asdict(metrics),
        })

    def record_shard(self, iteration, outcome):
        self.shards[(iteration, outcome.shard_index)] = outcome
        self._append({
            "kind": "shard",
            "iteration": iteration,
            "shard": outcome.shard_index,
            "outcome": outcome.to_dict(),
        })

    def record_batch(self, iteration, shard_index, stratum,
                     executed_slots, stop_reason):
        entry = {
            "kind": "batch",
            "iteration": iteration,
            "shard": shard_index,
            "stratum": stratum,
            "executed_slots": executed_slots,
            "stop_reason": stop_reason,
        }
        self.batches[(iteration, shard_index)] = entry
        self._append(entry)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
class ParallelCampaign:
    """One server/OS campaign, sharded across worker processes.

    Parameters
    ----------
    config:
        The :class:`~repro.harness.config.ExperimentConfig` to run.
    workers:
        Process count (default: ``os.cpu_count()``).  ``1`` runs every
        shard in-process on the same code path.
    slots_per_shard:
        Shard size in slots; defaults to ``config.conformance_slots`` so
        each shard is exactly one conformance batch.
    journal_path / resume:
        Checkpointing (see :class:`CampaignJournal`).
    cache_dir:
        Disk cache directory for the build scan and the precompiled
        mutants (see :mod:`repro.gswfit.cache`).
    warm_mutants:
        Batch-compile the sampled faultload's mutants once, up-front,
        before any worker process exists (default True).  On fork-based
        platforms every worker inherits the warm in-process memo; with a
        ``cache_dir`` the compiled code objects are shared on disk too.
    shard_timeout:
        Wall-clock deadline in seconds for one shard attempt; a shard
        exceeding it is treated as hung (default None: no deadline).
    max_retries:
        Charged failures (crash / worker death / hang) a shard may
        accumulate before it is quarantined.
    max_pool_rebuilds:
        Pool losses tolerated before the supervisor falls back to
        in-process serial execution for the remaining shards.
    telemetry_path / manifest_path:
        Where to stream supervision events (JSONL) and write the run
        manifest.  Default: derived siblings of ``journal_path``
        (``<journal stem>.telemetry.jsonl`` / ``.manifest.json``) when a
        journal is configured, otherwise off / in-memory only.  The
        manifest is always available as ``campaign.manifest`` after
        :meth:`run`.
    backend:
        Shard dispatch mechanics: ``"pool"`` (default — in-process
        ``ProcessPoolExecutor``) or ``"fabric"`` (the socket
        coordinator/worker backend of :mod:`repro.harness.fabric`).
        Because the shard plan, seeds, and merge are backend-blind, the
        ``metrics_digest`` is identical across backends.
    fabric_listen:
        ``(host, port)`` for the fabric coordinator to accept external
        ``campaign-worker`` processes on; None (default) binds loopback
        on an ephemeral port.
    fabric_loopback:
        Local worker processes the fabric spawns itself.  Default: None
        → ``workers`` when no listen address is given, else 0 (external
        workers only).
    """

    def __init__(self, config, workers=None, slots_per_shard=None,
                 journal_path=None, resume=False, cache_dir=None,
                 warm_mutants=True, shard_timeout=None,
                 max_retries=DEFAULT_MAX_RETRIES,
                 max_pool_rebuilds=DEFAULT_MAX_POOL_REBUILDS,
                 telemetry_path=None, manifest_path=None,
                 backend="pool", fabric_listen=None,
                 fabric_loopback=None, stop_event=None):
        if backend not in ("pool", "fabric"):
            raise ValueError(
                f"unknown backend {backend!r}: expected 'pool' or "
                "'fabric'"
            )
        if backend != "fabric" and (fabric_listen is not None
                                    or fabric_loopback is not None):
            raise ValueError(
                "fabric_listen/fabric_loopback require backend='fabric'"
            )
        self.backend = backend
        self.fabric_listen = fabric_listen
        self.fabric_loopback = fabric_loopback
        if config.operator_specs:
            # Install DSL operators in the parent before anything scans
            # or computes fingerprints; workers repeat this in
            # :func:`run_shard` (idempotent by spec digest).
            from repro.gswfit.dsl import install_spec_operators

            install_spec_operators(config.operator_specs)
        self.config = config
        self.workers = max(1, int(workers or os.cpu_count() or 1))
        if backend == "fabric":
            loopback = fabric_loopback
            if loopback is None:
                loopback = self.workers if fabric_listen is None else 0
            if loopback <= 0 and fabric_listen is None:
                raise ValueError(
                    "fabric backend with fabric_loopback=0 needs a "
                    "fabric_listen address for external workers"
                )
            self.fabric_loopback = loopback
        self.slots_per_shard = int(
            slots_per_shard or config.conformance_slots
        )
        self.journal_path = journal_path
        self.resume = resume
        self.cache_dir = cache_dir
        self.warm_mutants = warm_mutants
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.max_pool_rebuilds = max_pool_rebuilds
        # Cooperative interruption: when this threading.Event is set the
        # campaign finishes the in-flight shard round, journals it, and
        # raises CampaignInterrupted instead of completing.
        self.stop_event = stop_event
        if journal_path is not None:
            journal = Path(journal_path)
            if telemetry_path is None:
                telemetry_path = journal.with_suffix(".telemetry.jsonl")
            if manifest_path is None:
                manifest_path = journal.with_suffix(".manifest.json")
        self.telemetry_path = telemetry_path
        self.manifest_path = manifest_path
        self.warmup_stats = None
        self.manifest = None
        self.experiment = WebServerExperiment(config)

    # ------------------------------------------------------------------
    def prepared_faultload(self, faultload=None):
        """Scan (through the cache) and prepare, exactly once."""
        if faultload is None:
            build = get_build(self.config.os_codename)
            faultload = scan_build_cached(
                build,
                include_internal=self.config.include_internal_functions,
                cache_dir=self.cache_dir,
            )
        return self.experiment.prepared_faultload(faultload)

    def _open_journal(self, key, num_shards):
        if self.journal_path is None:
            return None
        if self.resume:
            journal = CampaignJournal.load(self.journal_path)
            if journal.header is not None:
                if journal.header.get("campaign_key") != key:
                    raise ValueError(
                        f"journal {self.journal_path} belongs to a "
                        "different campaign (config/faultload changed); "
                        "delete it or drop --resume"
                    )
                if journal.matches(key):
                    return journal
                # Same campaign, older journal version: load() already
                # warned and dropped its units — start a fresh journal
                # and rerun everything rather than merging half-schema
                # records.
                Path(self.journal_path).unlink(missing_ok=True)
        else:
            Path(self.journal_path).unlink(missing_ok=True)
        journal = CampaignJournal(self.journal_path)
        journal.write_header(
            key, num_shards, self.config.rules.iterations
        )
        return journal

    def _run_phase(self, journal, phase, runner, telemetry, timings):
        if journal is not None and phase in journal.phases:
            telemetry.emit("phase_replayed", phase=phase)
            return journal.phases[phase]
        telemetry.emit("phase_start", phase=phase)
        started = time.perf_counter()
        metrics = runner()
        timings[phase] = round(time.perf_counter() - started, 6)
        telemetry.emit("phase_end", phase=phase,
                       seconds=timings[phase])
        if journal is not None:
            journal.record_phase(phase, metrics)
        return metrics

    def _shard_task(self, iteration):
        """The picklable per-shard callable one iteration dispatches."""
        return partial(run_shard, self.config, iteration,
                       mutant_cache_dir=self.cache_dir)

    def _backend_factory(self):
        """The supervisor's backend recipe; None selects the default
        process pool."""
        if self.backend == "pool":
            return None
        listen = self.fabric_listen
        loopback = self.fabric_loopback
        shard_timeout = self.shard_timeout

        def factory():
            # Imported lazily: the fabric imports campaign (for the
            # journal version the wire contract is pinned to), so the
            # top level must not import the fabric back.
            from repro.harness.fabric.backend import FabricExecutorBackend
            return FabricExecutorBackend(
                loopback_workers=loopback,
                listen=listen,
                shard_timeout=shard_timeout,
                journal_version=JOURNAL_VERSION,
                decoder=ShardOutcome.from_dict,
            )

        return factory

    def _run_iteration(self, journal, shards, iteration, supervisor):
        done = {}
        if journal is not None:
            for shard in shards:
                outcome = journal.shards.get((iteration, shard.index))
                if outcome is not None:
                    done[shard.index] = outcome
        todo = [shard for shard in shards if shard.index not in done]
        report = None
        if todo:
            def record(outcome):
                done[outcome.shard_index] = outcome
                if journal is not None:
                    journal.record_shard(iteration, outcome)

            report = supervisor.run(
                todo, self._shard_task(iteration), on_outcome=record
            )
        merged = merge_outcomes(
            done.values(), iteration, self.config.client.connections
        )
        return merged, report

    def _run_sequential_iteration(self, journal, strata, iteration,
                                  supervisor):
        """One iteration in sequential mode: batch rounds until every
        stratum stops.

        Each round dispatches the next pending batch of every open
        stratum through the supervisor (pool and fabric benefit
        identically), then feeds completions back to the controller in
        fault-type order — arrival order never reaches a decision.
        Journaled batches replay instead of dispatching, and because the
        controller's decisions are pure functions of the replayed
        outcomes, a resumed campaign stops every stratum exactly where
        the uninterrupted run would have.
        """
        controller = SequentialController(self.config, strata)
        done = {}
        report = SupervisionReport()
        ran_live = False
        task = self._shard_task(iteration)
        while True:
            round_batches = controller.next_round()
            if not round_batches:
                break
            todo = []
            replayed = set()
            for _state, batch in round_batches:
                outcome = (
                    journal.shards.get((iteration, batch.index))
                    if journal is not None else None
                )
                if outcome is not None:
                    done[batch.index] = outcome
                    replayed.add(batch.index)
                else:
                    todo.append(batch)
            if todo:
                ran_live = True

                def record(outcome):
                    done[outcome.shard_index] = outcome
                    if journal is not None:
                        journal.record_shard(iteration, outcome)

                round_report = supervisor.run(
                    todo, task, on_outcome=record
                )
                report.retries += round_report.retries
                report.pool_rebuilds += round_report.pool_rebuilds
                report.serial_fallback = (
                    report.serial_fallback
                    or round_report.serial_fallback
                )
                report.quarantined.extend(round_report.quarantined)
                report.outcomes.update(round_report.outcomes)
            for state, batch in round_batches:
                # A quarantined batch never completed: done has no
                # entry, and the stratum stops rather than sampling
                # around the hole.
                controller.complete_batch(
                    state, batch, done.get(batch.index)
                )
                if journal is not None and batch.index not in replayed:
                    journal.record_batch(
                        iteration, batch.index, state.plan.fault_type,
                        state.executed_slots, state.stop_reason,
                    )
        merged = merge_outcomes(
            done.values(), iteration, self.config.client.connections
        )
        return merged, (report if ran_live else None), controller.summary()

    def _sequential_summary(self, per_iteration, strata):
        """The manifest's ``sequential`` block (diagnostic, outside the
        metrics digest — stopping decisions are *reflected in* the
        executed slot set the digest covers, they are not hashed
        themselves)."""
        if strata is None:
            return {"enabled": False}
        planned = (
            sum(plan.planned_slots for plan in strata)
            * max(1, len(per_iteration))
        )
        executed = sum(
            summary["executed_slots"] for summary in per_iteration
        )
        skipped = planned - executed
        stopping_points = {}
        stop_reasons = {}
        for summary in per_iteration:
            for fault_type, slots in summary["stopping_points"].items():
                stopping_points.setdefault(fault_type, []).append(slots)
            for fault_type, reason in summary["stop_reasons"].items():
                stop_reasons.setdefault(fault_type, []).append(reason)
        return {
            "enabled": True,
            "ci_target": self.config.ci_target,
            "ci_confidence": self.config.ci_confidence,
            "batch_slots": self.config.resolved_sequential_batch(),
            "min_slots": self.config.resolved_sequential_min_slots(),
            "max_slots": self.config.sequential_max_slots,
            "planned_slots": planned,
            "executed_slots": executed,
            "slots_skipped": skipped,
            "slots_saved_percent": (
                round(100.0 * skipped / planned, 6) if planned else None
            ),
            "stopping_points": stopping_points,
            "stop_reasons": stop_reasons,
            "per_iteration": per_iteration,
        }

    # ------------------------------------------------------------------
    def run(self, faultload=None, include_baseline=True,
            include_profile_mode=True):
        """Run (or resume) the campaign; returns a BenchmarkResult.

        Worker crashes, kills, and hangs are absorbed by the shard
        supervisor: the campaign completes with ``result.degraded=True``
        and the offending slots quarantined (never with a worker
        exception).  The run manifest — including the deterministic
        metrics digest — is left on ``self.manifest`` and written to
        ``manifest_path`` when one is configured.
        """
        telemetry = (
            TelemetryWriter(self.telemetry_path)
            if self.telemetry_path is not None else NullTelemetry()
        )
        timings = {}
        started = time.perf_counter()
        faultload = self.prepared_faultload(faultload)
        timings["prepare"] = round(time.perf_counter() - started, 6)
        if (self.config.adaptive_slots and self.config.track_activation
                and self.config.activation_deadlines is None):
            # Derive the deadline table before the campaign key is
            # computed: the table becomes part of the config, hence of
            # the key and of every shard's behaviour — identically for
            # any worker count.  Mutated in place so the experiment
            # (which shares this config object) stays in sync.
            started = time.perf_counter()
            self.config.activation_deadlines = (
                derive_activation_deadlines(self.config)
            )
            timings["activation_profile"] = round(
                time.perf_counter() - started, 6
            )
        if self.warm_mutants:
            # Compile every sampled mutant exactly once, before any
            # worker process exists: fork-started workers inherit the
            # warm memo, and the disk tier covers spawn-started ones.
            # Probed variants when activation tracking is on — the same
            # entries the slot runs will request.
            started = time.perf_counter()
            self.warmup_stats = warm_mutant_cache(
                faultload, cache_dir=self.cache_dir,
                probed=self.config.track_activation,
            )
            timings["warm_mutants"] = round(
                time.perf_counter() - started, 6
            )
        strata = None
        if self.config.sequential:
            # Sequential mode: the shard plan is the stratified batch
            # plan — still a pure function of (faultload, config), so
            # the campaign key and every shard seed are unchanged by
            # worker count or backend.
            strata = plan_sequential_strata(
                faultload, self.config.resolved_sequential_batch()
            )
            shards = [batch for plan in strata for batch in plan.batches]
        else:
            shards = plan_shards(faultload, self.slots_per_shard)
        key = campaign_key(self.config, faultload)
        journal = self._open_journal(key, len(shards))
        telemetry.emit(
            "campaign_start",
            campaign_key=key,
            workers=self.workers,
            shards=len(shards),
            slots=len(faultload),
            iterations=self.config.rules.iterations,
        )
        result = BenchmarkResult(
            server_name=self.config.server_name,
            os_codename=self.config.os_codename,
            os_display=self.experiment.build.display_name,
        )
        if include_baseline:
            result.baseline = self._run_phase(
                journal, "baseline",
                lambda: self.experiment.run_baseline(iteration=0),
                telemetry, timings,
            )
        if include_profile_mode:
            result.profile_mode = self._run_phase(
                journal, "profile_mode",
                lambda: self.experiment.run_profile_mode(
                    iteration=0, faultload=faultload
                ),
                telemetry, timings,
            )
        supervision = {
            "retries": 0,
            "pool_rebuilds": 0,
            "serial_fallback": False,
            "quarantined": [],
        }
        # One supervisor (and thus at most one pool) for the whole
        # campaign: fork cost is paid once, not once per iteration.
        supervisor = ShardSupervisor(
            workers=self.workers,
            shard_timeout=self.shard_timeout,
            max_retries=self.max_retries,
            max_pool_rebuilds=self.max_pool_rebuilds,
            telemetry=telemetry,
            backend_factory=self._backend_factory(),
            stop_event=self.stop_event,
        )
        fabric = None
        sequential_iterations = []
        try:
            for iteration in range(1, self.config.rules.iterations + 1):
                telemetry.emit("iteration_start", iteration=iteration)
                started = time.perf_counter()
                if strata is not None:
                    merged, report, stratum_summary = (
                        self._run_sequential_iteration(
                            journal, strata, iteration, supervisor
                        )
                    )
                    sequential_iterations.append(stratum_summary)
                else:
                    merged, report = self._run_iteration(
                        journal, shards, iteration, supervisor
                    )
                timings[f"iteration-{iteration}"] = round(
                    time.perf_counter() - started, 6
                )
                if report is not None:
                    supervision["retries"] += report.retries
                    supervision["pool_rebuilds"] += report.pool_rebuilds
                    supervision["serial_fallback"] = (
                        supervision["serial_fallback"]
                        or report.serial_fallback
                    )
                    for quarantined in report.quarantined:
                        entry = {"iteration": iteration}
                        entry.update(quarantined.to_dict())
                        supervision["quarantined"].append(entry)
                result.add_iteration(merged)
                telemetry.emit(
                    "iteration_end",
                    iteration=iteration,
                    seconds=timings[f"iteration-{iteration}"],
                    quarantined=(
                        len(report.quarantined) if report else 0
                    ),
                )
            fabric = supervisor.backend_stats()
        except SupervisionInterrupted as interrupted:
            # Drain or budget stop: everything completed is in the
            # journal, so a later resume finishes with the digest of an
            # uninterrupted run.  Leave a marker in the telemetry and
            # surface the stop as CampaignInterrupted.
            completed = len(journal.shards) if journal is not None else (
                len(interrupted.report.outcomes)
            )
            telemetry.emit(
                "campaign_interrupted",
                campaign_key=key,
                completed=completed,
                remaining=interrupted.remaining,
            )
            telemetry.close()
            raise CampaignInterrupted(
                key, completed, interrupted.remaining
            ) from interrupted
        finally:
            supervisor.close()
        if fabric is None:
            fabric = supervisor.backend_stats()
        result.quarantine = supervision["quarantined"]
        result.degraded = bool(result.quarantine)
        supervision["degraded"] = result.degraded
        integrity = self._integrity_summary(result)
        activation = self._activation_summary(result)
        snapshot = self._snapshot_summary(result)
        sequential = self._sequential_summary(sequential_iterations, strata)
        result.sequential = sequential
        digest = metrics_digest(result)
        self.manifest = RunManifest(
            campaign_key=key,
            server=self.config.server_name,
            os_codename=self.config.os_codename,
            os_display=self.experiment.build.display_name,
            seed=self.config.seed,
            build_fingerprint=library_fingerprint(self.experiment.build),
            faultload_digest=faultload_digest(faultload),
            slots=len(faultload),
            workers=self.workers,
            slots_per_shard=self.slots_per_shard,
            num_shards=len(shards),
            iterations=self.config.rules.iterations,
            journal_version=JOURNAL_VERSION,
            phase_timings=timings,
            supervision=supervision,
            integrity=integrity,
            activation=activation,
            snapshot=snapshot,
            fabric=fabric,
            sequential=sequential,
            metrics_digest=digest,
            created_at=round(time.time(), 6),
        )
        if self.manifest_path is not None:
            self.manifest.write(self.manifest_path)
        telemetry.emit("integrity_summary", **integrity)
        telemetry.emit("activation_summary", **activation)
        telemetry.emit("snapshot_summary", **snapshot)
        telemetry.emit("fabric_summary", **fabric)
        telemetry.emit(
            "sequential_summary",
            **{key: value for key, value in sequential.items()
               if key != "per_iteration"},
        )
        telemetry.emit(
            "campaign_end",
            degraded=result.degraded,
            metrics_digest=digest,
        )
        telemetry.close()
        return result

    def _activation_summary(self, result):
        """Campaign-wide activation accounting for the manifest."""
        enabled = any(
            iteration.activation_enabled for iteration in result.iterations
        )
        injected = sum(
            iteration.faults_injected for iteration in result.iterations
        )
        activated = sum(
            iteration.faults_activated for iteration in result.iterations
        )
        truncated = sum(
            iteration.slots_truncated for iteration in result.iterations
        )
        saved = round(sum(
            iteration.truncated_seconds for iteration in result.iterations
        ), 6)
        rate = None
        if enabled and injected:
            rate = round(activated / injected, 6)
        return {
            "enabled": enabled,
            "adaptive": bool(self.config.adaptive_slots),
            "faults_injected": injected,
            "faults_activated": activated,
            "activation_rate": rate,
            "slots_truncated": truncated,
            "sim_seconds_saved": saved,
            "deadline_functions": len(self.config.activation_deadlines or {}),
        }

    def _snapshot_summary(self, result):
        """Campaign-wide epoch-setup accounting for the manifest."""
        booted = sum(
            iteration.epochs_booted for iteration in result.iterations
        )
        restored = sum(
            iteration.epochs_restored for iteration in result.iterations
        )
        restarts = sum(
            iteration.pristine_restarts for iteration in result.iterations
        )
        total = booted + restored
        return {
            "enabled": bool(self.config.snapshot_epochs),
            "pristine_slots": bool(self.config.pristine_slots),
            "epochs_booted": booted,
            "epochs_restored": restored,
            "pristine_restarts": restarts,
            "restore_rate": round(restored / total, 6) if total else None,
        }

    def _integrity_summary(self, result):
        """Campaign-wide contamination accounting for the manifest."""
        contaminated = 0
        reboots = 0
        unrebooted = 0
        unverified_reboots = 0
        kinds = {}
        for iteration in result.iterations:
            contaminated += len(iteration.contaminated_slots)
            reboots += len(iteration.reboots)
            for record in iteration.contaminated_slots:
                if not record.get("rebooted"):
                    unrebooted += 1
                for kind in record.get("kinds", []):
                    kinds[kind] = kinds.get(kind, 0) + 1
            for record in iteration.reboots:
                if not record.get("verified"):
                    unverified_reboots += 1
        return {
            "enabled": bool(self.config.integrity_audit),
            "reboot_budget": self.config.reboot_budget,
            "contaminated_slots": contaminated,
            "reboots": reboots,
            "unrebooted_contamination": unrebooted,
            "unverified_reboots": unverified_reboots,
            "violation_kinds": dict(sorted(kinds.items())),
        }
