"""Experiment configuration.

One :class:`ExperimentConfig` describes a full benchmark campaign for one
server/OS pair: workload scale, run rules, watchdog thresholds, and the
knobs that trade fidelity for host time (connection count, faultload
subsampling).  ``paper_scale()`` reproduces the paper's parameters;
``scaled()`` (the default) preserves the structure at laptop cost.
"""

from dataclasses import dataclass, field, replace

from repro.specweb.client import ClientConfig
from repro.specweb.rules import RunRules

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Everything one experiment needs to be reproducible."""

    os_codename: str = "nt50"
    server_name: str = "apache"
    seed: int = 2004

    rules: RunRules = field(default_factory=RunRules)
    client: ClientConfig = field(default_factory=ClientConfig)

    # Fileset scale (directories of 36 files each).
    fileset_directories: int = 8

    # Server machine.
    cpu_hz: int = 400_000_000
    operation_budget_seconds: float = 8.0

    # Injector sharing the server machine: fraction of CPU it consumes
    # while attached (profile mode and live injection alike).  The value
    # models mutant preparation plus monitoring on the single-CPU server
    # box of the paper's testbed.
    injector_cpu_fraction: float = 0.05

    # Fault application cadence: each fault stays injected for one slot
    # (rules.slot_seconds, 10 s in the paper).
    fault_sample: int | None = None  # None = full faultload
    include_internal_functions: bool = True

    # Watchdog.
    watchdog_poll_seconds: float = 1.0
    unresponsive_after_seconds: float = 4.0
    restart_grace_seconds: float = 5.0
    watchdog_max_restart_attempts: int = 5

    # Slot-gap state-integrity auditing (DESIGN.md §10): after each
    # fault is removed, audit the machine for residual damage; on
    # contamination perform a verified reboot, at most ``reboot_budget``
    # times per slot run (budget exhausted = keep running, keep
    # flagging).
    integrity_audit: bool = True
    reboot_budget: int = 2

    # Copy-on-write epoch snapshots (DESIGN.md §12): capture the
    # post-warm-up machine state once per (config, iteration) and make
    # every later epoch — contamination reboot, pristine-slot restart,
    # retried shard — a verified restore instead of a boot + warm-up.
    # Digest-neutral by construction (boot + warm-up is deterministic),
    # which the restored-vs-booted CI gate proves on every push.
    snapshot_epochs: bool = True

    # Paper-faithful Fig. 4 isolation: retire and replace the machine
    # after *every* slot, so no fault can see another fault's residue
    # even in principle.  Changes the measured timeline (each slot
    # starts at the post-warm-up instant), so it is an explicit opt-in
    # (--pristine-slots); affordable when snapshot_epochs is on.
    pristine_slots: bool = False

    # False = control run: walk the full slot protocol with the injector
    # attached in profile mode but no code swapped.  Any integrity
    # violation reported in such a run is an auditor false positive —
    # the clean-machine CI gate relies on this.
    inject_faults: bool = True

    # Fault-activation telemetry (DESIGN.md §11).  When on, mutants carry
    # an entry probe and each slot records whether/when the faulty code
    # executed; the ACT% report column and the activation-gate CI job
    # come from this.
    track_activation: bool = True

    # Adaptive slot scheduling: truncate a slot once the faulted
    # function's activation deadline passes with zero probe hits.  Off by
    # default — changes observed windows, so it is an explicit opt-in
    # (--adaptive-slots).
    adaptive_slots: bool = False

    # function name -> activation deadline in seconds from slot start,
    # derived from a deterministic profiling trace by the campaign parent
    # (before the campaign key is computed, so all workers share it).
    # None = no table; adaptive slots fall back to the grace fraction.
    activation_deadlines: dict | None = None

    # Fallback deadline (fraction of slot_seconds) used when no deadline
    # table is available at all (e.g. single runs outside a campaign).
    activation_grace_fraction: float = 0.5

    # Deadline floor (fraction of slot_seconds) given to functions the
    # profiling trace never observed — mostly internal helpers that only
    # run on rare paths.
    activation_floor_fraction: float = 0.15

    # Length of the profiling trace used to derive the deadline table.
    activation_profile_seconds: float = 20.0

    # SPECWeb99 judges connection conformance over whole measurement
    # batches; we group this many consecutive slots per conformance batch.
    conformance_slots: int = 6

    # Sequential statistical injection (DESIGN.md §14).  When on, the
    # campaign stratifies the faultload by fault type, runs each stratum
    # in batches, and stops a stratum once the confidence interval of
    # every tracked derived metric (SPCf/THRf/RTMf, ADMf, ER%f) is
    # tighter than the target — "run until confidence, not until done".
    # Every knob below is part of the campaign key, so two runs with the
    # same stopping schedule produce byte-identical digests for any
    # worker count or backend.
    sequential: bool = False

    # Target relative half-width: a stratum's interval for a metric is
    # tight enough when half_width <= ci_target * max(|mean|, 1.0) (the
    # 1.0 floor keeps near-zero metrics such as ADMf from demanding an
    # impossible relative precision).
    ci_target: float = 0.10

    # Two-sided confidence level of the intervals.
    ci_confidence: float = 0.95

    # Slots per sequential batch (the unit of dispatch and the
    # batch-means observation unit).  None = one conformance batch.
    sequential_batch_slots: int | None = None

    # Per-stratum floor: never stop on confidence before this many
    # slots.  None = two batches (the minimum that yields a variance).
    sequential_min_slots: int | None = None

    # Per-stratum ceiling: stop after this many slots even without
    # convergence.  None = the stratum's full planned size.
    sequential_max_slots: int | None = None

    # Declarative operator specs (DESIGN.md §16): a tuple of *canonical*
    # spec dicts, installed into the operator registry by the campaign
    # parent and by every worker before scanning (the config pickles to
    # them, so pool, spawn, and fabric workers all see the same library).
    # Part of ``asdict()``, hence of the campaign key — and each spec's
    # canonical JSON is the operator's cache fingerprint, so scan and
    # mutant caches stay sound across spec edits.  None = built-ins only.
    operator_specs: tuple | None = None

    def resolved_sequential_batch(self):
        """The effective sequential batch size in slots."""
        return int(self.sequential_batch_slots or self.conformance_slots)

    def resolved_sequential_min_slots(self):
        """The effective per-stratum slot floor (>= two batches)."""
        if self.sequential_min_slots is not None:
            return int(self.sequential_min_slots)
        return 2 * self.resolved_sequential_batch()

    def iteration_seed(self, iteration):
        """Seed for one iteration: same workload family, fresh draws."""
        return self.seed * 1_000 + iteration

    @property
    def operation_budget_cycles(self):
        return int(self.operation_budget_seconds * self.cpu_hz)

    def with_target(self, server_name=None, os_codename=None):
        """A copy of this config aimed at another server/OS pair."""
        updated = replace(self)
        if server_name is not None:
            updated.server_name = server_name
        if os_codename is not None:
            updated.os_codename = os_codename
        return updated

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides):
        """The paper's parameters (24 h-class runs; heavy on host CPU)."""
        config = cls(
            rules=RunRules.paper(),
            client=ClientConfig(connections=40),
            fileset_directories=16,
            fault_sample=None,
        )
        return replace(config, **overrides)

    @classmethod
    def scaled(cls, fault_sample=96, connections=16, **overrides):
        """Laptop-scale preset: same structure, compressed time.

        ``fault_sample`` stratified-samples the faultload per fault type;
        fewer connections shrink the event count proportionally.
        """
        config = cls(
            rules=RunRules.scaled(),
            client=ClientConfig(connections=connections),
            fileset_directories=4,
            fault_sample=fault_sample,
        )
        return replace(config, **overrides)

    @classmethod
    def smoke(cls, **overrides):
        """Minimal preset for unit tests."""
        config = cls(
            rules=RunRules(
                warmup_seconds=5.0,
                rampup_seconds=1.0,
                rampdown_seconds=1.0,
                iterations=1,
                slot_seconds=5.0,
                slot_gap_seconds=1.0,
                baseline_seconds=20.0,
            ),
            client=ClientConfig(connections=8),
            fileset_directories=2,
            fault_sample=12,
        )
        return replace(config, **overrides)
