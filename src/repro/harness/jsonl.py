"""Torn-tail-tolerant JSONL reading, shared by every durable log.

Three append-only JSONL files carry campaign state across a crash: the
campaign journal, the telemetry stream, and (since the service daemon)
the spec queue.  All three are written the same way — one buffered
``write`` per record, newline included, flushed (and for the journal
and queue, fsynced) before the writer moves on — so all three share the
same failure geometry: a process killed mid-append can tear **at most
the final line**.  A torn line anywhere *else* is not a crash artifact,
it is real corruption (a seeked writer, a concurrent editor, bit rot),
and silently skipping it would hide lost state.

:func:`read_jsonl` is the one reader implementing that policy, so the
journal, the telemetry reader, and the service's spec queue cannot
drift apart on it.  A torn final line is dropped (the unit it described
simply reruns on resume); a torn interior line raises the original
:class:`json.JSONDecodeError` — exactly the behaviour the journal and
telemetry readers had before the service grew a third durable log.
"""

import json
from pathlib import Path

__all__ = ["read_jsonl"]


def read_jsonl(path):
    """Parse an append-only JSONL file into ``[(lineno, entry), ...]``.

    ``lineno`` is 1-based over the *non-blank* lines, matching the
    positions the journal's warnings report.  A torn (undecodable)
    final line is dropped; a torn interior line raises
    :class:`json.JSONDecodeError`.  A missing file is an empty log.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = [
        line.strip()
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    entries = []
    for position, line in enumerate(lines):
        try:
            entries.append((position + 1, json.loads(line)))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                # A crash mid-append tears at most the final line; the
                # record it carried simply reruns on resume.
                break
            raise
    return entries
