"""The campaign daemon: a scheduler loop over the durable spec queue.

One scheduler thread drains the queue in submission order, one campaign
at a time (campaigns parallelize *internally* across workers; running
two at once would just fight over the same cores and interleave their
telemetry).  Each run is a fresh attempt against the campaign's own
journal with ``resume=True``, so an attempt that dies — process crash,
budget interrupt, drain — costs only the shard round in flight, never
completed work.

State machine per entry (every arrow fsync'd to the queue log):

    queued ──start──▶ running ──success──▶ done
      ▲                 │
      │                 ├── drain / crash ──▶ queued   (resume later)
      ├─ retry+backoff ─┤
      │                 └── budget exceeded ─▶ failed
      └─────────────────┴── attempts exhausted ▶ failed

The wall-clock budget and the drain path share one mechanism: the
per-campaign ``stop_event`` makes the supervisor finish its in-flight
shard round and raise
:class:`~repro.harness.campaign.CampaignInterrupted` — cooperative, so
no worker is killed mid-slot and the journal stays consistent.
"""

import threading
import time
from pathlib import Path

from repro.harness.backoff import BackoffPolicy
from repro.harness.campaign import CampaignInterrupted
from repro.harness.service.queue import SpecQueue
from repro.harness.service.recovery import recover_queue
from repro.harness.service.spec import namespace_from_spec
from repro.harness.telemetry import TelemetryWriter

__all__ = ["CampaignDaemon", "ReportPending", "ServiceDraining"]


class ServiceDraining(RuntimeError):
    """The daemon is draining and refuses new submissions."""


class ReportPending(RuntimeError):
    """The campaign exists but has not successfully completed yet."""

    def __init__(self, entry_id, state):
        super().__init__(
            f"campaign {entry_id} is {state}; no report yet"
        )
        self.entry_id = entry_id
        self.state = state


class CampaignDaemon:
    """Owns the queue, the scheduler thread, and the recovery pass.

    ``runner`` is injectable for tests: a callable
    ``runner(entry, stop_event) -> dict`` whose return value lands in
    the entry's ``done`` record (the default runs a real
    ParallelCampaign and returns its digest/key/export path).
    """

    def __init__(self, home, *, queue_capacity=16, campaign_budget=None,
                 retry_after=5.0, max_attempts=3, backoff=None,
                 runner=None, poll_seconds=0.05, clock=time.monotonic):
        self.home = Path(home)
        self.home.mkdir(parents=True, exist_ok=True)
        self.queue = SpecQueue(
            self.home / "queue.jsonl", capacity=queue_capacity
        )
        self.telemetry = TelemetryWriter(
            self.home / "service.telemetry.jsonl"
        )
        self.campaign_budget = campaign_budget
        self.retry_after = float(retry_after)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff = backoff or BackoffPolicy(
            base=0.5, factor=2.0, max_delay=60.0, jitter=0.5,
            seed="reprod",
        )
        self.poll_seconds = poll_seconds
        self.clock = clock
        self._runner = runner or self._run_campaign
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._thread = None
        self._active_stop = None
        self._retry_not_before = {}
        # Restart recovery happens before any work is accepted, and its
        # requeue records are durable before start() can run anything.
        self.recovery = recover_queue(self.queue, self.telemetry)

    # ------------------------------------------------------------------
    # Front-end surface (called from HTTP handler threads)
    # ------------------------------------------------------------------
    @property
    def draining(self):
        return self._draining.is_set()

    def submit(self, spec):
        """Validate + durably enqueue a spec; returns the entry.

        Raises SpecError (bad spec), QueueFull (shed), or
        ServiceDraining (shutting down).
        """
        if self.draining:
            raise ServiceDraining("service is draining")
        namespace_from_spec(spec)
        entry = self.queue.submit(spec, retry_after=self.retry_after)
        self.telemetry.emit("campaign_submitted", id=entry.id)
        return entry

    def status(self, entry_id):
        """The entry's current state dict, or None for an unknown id."""
        entry = self.queue.get(entry_id)
        return None if entry is None else entry.to_dict()

    def campaign_dir(self, entry_id):
        return self.home / "campaigns" / entry_id

    def telemetry_file(self, entry_id):
        """The campaign's own telemetry stream (None until it exists)."""
        if self.queue.get(entry_id) is None:
            return None
        path = self.campaign_dir(entry_id) / "journal.telemetry.jsonl"
        return path if path.exists() else None

    def report(self, entry_id):
        """The finished campaign's combined report document.

        Raises KeyError (unknown id) or ReportPending (not done yet).
        """
        from repro.reporting.export import load_campaign_report

        entry = self.queue.get(entry_id)
        if entry is None:
            raise KeyError(entry_id)
        if entry.state != "done":
            raise ReportPending(entry_id, entry.state)
        return load_campaign_report(self.campaign_dir(entry_id) / "export")

    def healthz(self):
        return {
            "status": "draining" if self.draining else "ok",
            "capacity": self.queue.capacity,
            "queue": self.queue.state_counts(),
            "recovery": self.recovery,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._thread = threading.Thread(
            target=self._loop, name="reprod-scheduler", daemon=True
        )
        self._thread.start()

    def drain(self):
        """Stop admissions; interrupt the active campaign at its next
        shard-round boundary; let the scheduler exit."""
        if not self._draining.is_set():
            self._draining.set()
            self.telemetry.emit("service_drain")
        active = self._active_stop
        if active is not None:
            active.set()
        if self._thread is None:
            self._drained.set()

    def wait_drained(self, timeout=None):
        return self._drained.wait(timeout)

    def close(self):
        self.queue.close()
        self.telemetry.close()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _loop(self):
        try:
            while not self._draining.is_set():
                entry = self._next_ready()
                if entry is None:
                    _sleep(self.poll_seconds)
                    continue
                self._run_entry(entry)
        finally:
            self._drained.set()

    def _next_ready(self):
        now = self.clock()
        for entry in self.queue.in_order():
            if entry.state != "queued":
                continue
            not_before = self._retry_not_before.get(entry.id)
            if not_before is not None and now < not_before:
                continue
            return entry
        return None

    def _run_entry(self, entry):
        attempt = entry.detail.get("attempts", 0) + 1
        self.queue.mark(entry.id, "running", attempts=attempt)
        self.telemetry.emit(
            "campaign_started", id=entry.id, attempt=attempt
        )
        stop_event = threading.Event()
        self._active_stop = stop_event
        if self._draining.is_set():
            # drain() may have raced the assignment above; never start
            # an attempt that should already be stopping.
            stop_event.set()
        budget_hit = threading.Event()
        timer = None
        if self.campaign_budget is not None:
            def _expire():
                budget_hit.set()
                stop_event.set()
            timer = threading.Timer(self.campaign_budget, _expire)
            timer.daemon = True
            timer.start()
        try:
            outcome = self._runner(entry, stop_event)
        except CampaignInterrupted as interrupted:
            if budget_hit.is_set() and not self._draining.is_set():
                self.queue.mark(
                    entry.id, "failed", error="budget_exceeded",
                    completed_shards=interrupted.completed,
                    remaining_shards=interrupted.remaining,
                )
                self.telemetry.emit(
                    "campaign_failed", id=entry.id,
                    reason="budget_exceeded",
                )
            else:
                # Drain: completed rounds are journaled; the entry goes
                # back to queued so the next start resumes it.
                self.queue.mark(entry.id, "queued", interrupted=True)
                self.telemetry.emit(
                    "campaign_interrupted", id=entry.id,
                    completed=interrupted.completed,
                    remaining=interrupted.remaining,
                )
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            if attempt >= self.max_attempts:
                self.queue.mark(entry.id, "failed", error=repr(exc))
                self.telemetry.emit(
                    "campaign_failed", id=entry.id, reason=repr(exc),
                    attempts=attempt,
                )
            else:
                delay = self.backoff.delay(attempt)
                self._retry_not_before[entry.id] = self.clock() + delay
                self.queue.mark(entry.id, "queued", error=repr(exc))
                self.telemetry.emit(
                    "campaign_retry", id=entry.id, attempt=attempt,
                    delay=round(delay, 6), error=repr(exc),
                )
        else:
            self.queue.mark(entry.id, "done", **outcome)
            self.telemetry.emit(
                "campaign_done", id=entry.id,
                metrics_digest=outcome.get("metrics_digest"),
            )
        finally:
            if timer is not None:
                timer.cancel()
            self._active_stop = None

    # ------------------------------------------------------------------
    # The default runner: a real campaign, built the CLI's way
    # ------------------------------------------------------------------
    def _run_campaign(self, entry, stop_event):
        from repro.cli import _campaign_config, _campaign_kwargs
        from repro.harness.campaign import ParallelCampaign
        from repro.reporting.export import export_campaign

        args = namespace_from_spec(entry.spec)
        config = _campaign_config(args)
        kwargs = _campaign_kwargs(args)
        home = self.campaign_dir(entry.id)
        # The daemon owns the paths: per-campaign journal (always
        # resumed — the crash-safety contract), shared scan/mutant
        # cache, telemetry + manifest as journal siblings.
        kwargs["journal_path"] = str(home / "journal.jsonl")
        kwargs["resume"] = True
        kwargs["cache_dir"] = str(self.home / "cache")
        campaign = ParallelCampaign(
            config, stop_event=stop_event, **kwargs
        )
        result = campaign.run(
            include_baseline=not args.no_baseline,
            include_profile_mode=not args.no_profile,
        )
        export_dir = home / "export"
        export_campaign(
            result, export_dir, config=config,
            manifest=campaign.manifest,
            telemetry_path=campaign.telemetry_path,
        )
        return {
            "metrics_digest": campaign.manifest.metrics_digest,
            "campaign_key": campaign.manifest.campaign_key,
            "export": str(export_dir),
        }


def _sleep(seconds):
    # time.sleep via an Event so tests can monkeypatch trivially.
    threading.Event().wait(seconds)
