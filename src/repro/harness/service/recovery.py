"""Restart recovery: make a daemon crash invisible to results.

Replaying the spec queue rebuilds everything the dead process knew; the
only judgement call is what to do with entries recorded ``running`` —
campaigns that were in flight at the instant of death, at any of three
lifecycle stages:

* **spec accepted** — no journal exists yet; the rerun starts from
  slot zero.  Nothing was lost because nothing had run.
* **shard in flight** — the per-campaign journal holds every shard
  round that completed before the kill (each fsync'd before
  acknowledgement); the rerun opens it with ``resume=True`` and replays
  completed units instead of re-executing them.  No slot runs twice —
  the journal is the exactly-once ledger, the queue only says *whether*
  to run.
* **report pending** — every unit is journaled but the terminal
  ``done`` record never landed; the rerun replays the whole journal
  (fast — no slots execute), re-derives the identical
  ``metrics_digest``, re-exports, and marks done.

In every stage the correct action is the same: durably flip the entry
back to ``queued`` and let the scheduler take it from the top.  The
flip is written to the queue log *before* the daemon accepts work, so
a second crash during recovery changes nothing.
"""

__all__ = ["recover_queue"]


def recover_queue(queue, telemetry=None):
    """Requeue in-flight entries after a restart; returns a summary."""
    requeued = []
    for entry in queue.in_order():
        if entry.state == "running":
            queue.mark(entry.id, "queued", recovered=True)
            requeued.append(entry.id)
            if telemetry is not None:
                telemetry.emit("campaign_recovered", id=entry.id)
    summary = {"entries": len(queue), "requeued": requeued}
    if telemetry is not None and requeued:
        telemetry.emit("service_recovery", **summary)
    return summary
