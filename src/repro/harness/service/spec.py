"""Campaign specs: the service's submission format.

A spec is a flat JSON object whose keys are the ``campaign``
subcommand's flags — ``{"server": "apache", "faults": 24, "workers": 2,
"no-baseline": true}`` — hyphens and underscores interchangeable.
Rather than maintaining a parallel schema that would drift from the
CLI, the spec is *rendered back into an argv* and pushed through the
real parser: every type coercion, ``choices`` check, and the rc-2
flag-combination rules (``_validate_campaign_args``) apply verbatim,
so a spec is valid exactly when the equivalent command line is.  A
rejected spec raises :class:`SpecError` (the daemon's 400), never a
traceback.

Keys the service itself manages — journal, resume, telemetry,
manifest, export, cache-dir — are refused: the daemon owns the
campaign's paths and always resumes, because that is what makes the
recovery guarantee hold.
"""

import contextlib
import io

__all__ = ["MANAGED_KEYS", "SpecError", "namespace_from_spec"]

#: Flags a spec may not set because the daemon controls them.
MANAGED_KEYS = frozenset({
    "cache_dir",
    "export",
    "journal",
    "manifest",
    "resume",
    "telemetry",
})


class SpecError(ValueError):
    """A campaign spec failed validation; str(exc) is user-facing."""


def _campaign_flag_table():
    """Map spec keys → (flag string, takes_value) for ``campaign``.

    Derived from the live parser so new campaign flags become valid
    spec keys automatically.  Each option registers under both its
    ``dest`` (``os_codename``) and its flag spelling (``os``), so specs
    can use either.
    """
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    campaign = None
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            campaign = action.choices["campaign"]
            break
    table = {}
    for action in campaign._actions:
        if not action.option_strings or action.dest == "help":
            continue
        flag = action.option_strings[-1]
        takes_value = action.nargs != 0
        entry = (flag, takes_value)
        table[action.dest] = entry
        table[flag.lstrip("-").replace("-", "_")] = entry
    return table


def _spec_argv(spec):
    """Render a spec dict into the equivalent ``campaign`` argv."""
    table = _campaign_flag_table()
    argv = ["campaign"]
    for raw_key in sorted(spec):
        key = str(raw_key).replace("-", "_")
        if key in MANAGED_KEYS:
            raise SpecError(
                f"spec key {raw_key!r} is managed by the service "
                "(the daemon owns journals, telemetry, and exports)"
            )
        if key not in table:
            raise SpecError(f"unknown spec key {raw_key!r}")
        flag, takes_value = table[key]
        value = spec[raw_key]
        if not takes_value:
            if not isinstance(value, bool):
                raise SpecError(
                    f"spec key {raw_key!r} is a flag and must be a "
                    f"boolean, got {value!r}"
                )
            if value:
                argv.append(flag)
        else:
            if value is None:
                continue
            if isinstance(value, bool):
                raise SpecError(
                    f"spec key {raw_key!r} expects a value, got a "
                    "boolean"
                )
            if isinstance(value, (list, tuple)):
                # Repeatable flags (e.g. operator_specs) take a JSON
                # array; each item becomes one occurrence of the flag.
                for item in value:
                    if not isinstance(item, (str, int, float)) or (
                        isinstance(item, bool)
                    ):
                        raise SpecError(
                            f"spec key {raw_key!r} items must be "
                            f"scalars, got {item!r}"
                        )
                    argv.extend([flag, str(item)])
                continue
            argv.extend([flag, str(value)])
    return argv


def namespace_from_spec(spec):
    """Validate a spec; returns the parsed ``campaign`` namespace.

    Raises :class:`SpecError` with the parser's (or the rc-2 flag
    rules') own message on any problem.
    """
    from repro.cli import _validate_campaign_args, build_parser

    if not isinstance(spec, dict):
        raise SpecError(
            f"spec must be a JSON object, got {type(spec).__name__}"
        )
    argv = _spec_argv(spec)
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr):
            args = build_parser().parse_args(argv)
    except SystemExit:
        lines = [line for line in stderr.getvalue().splitlines()
                 if line.strip()]
        raise SpecError(lines[-1] if lines else "invalid spec") from None
    # Mirror main(): --faults 0 means the full faultload.
    if getattr(args, "faults", None) == 0:
        args.faults = None
    error = _validate_campaign_args(args)
    if error is not None:
        raise SpecError(error)
    return args
