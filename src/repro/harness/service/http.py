"""The stdlib HTTP front end for the campaign daemon.

Deliberately small: a :class:`ThreadingHTTPServer` whose handler
translates six routes onto :class:`~.daemon.CampaignDaemon` methods and
maps the daemon's exceptions onto status codes.  JSON in, JSON out
(telemetry streams as ``application/x-ndjson``), no framework, no new
dependencies.

    POST /submit          202 accepted {"id": ...} | 400 bad spec
                          | 429 shed (Retry-After) | 503 draining
    GET  /healthz         200 {"status", "capacity", "queue", ...}
    GET  /status/<id>     200 entry state | 404
    GET  /telemetry/<id>  200 the campaign's JSONL event stream | 404
    GET  /report/<id>     200 combined report | 404 | 409 not done yet
    POST /drain           202 {"status": "draining"}

The 429 carries ``Retry-After`` — the admission-control contract: a
shed submission is *retryable*, and well-behaved clients back off by
the hint instead of hammering.
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.harness.service.daemon import ReportPending, ServiceDraining
from repro.harness.service.queue import QueueFull
from repro.harness.service.spec import SpecError

__all__ = ["ServiceHandler", "make_server"]

MAX_SPEC_BYTES = 1 << 20  # a campaign spec is a handful of flags


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes onto the daemon bound as the ``service`` class attribute."""

    service = None
    protocol_version = "HTTP/1.1"

    # The daemon's telemetry is the log; request chatter on stderr is
    # noise for a long-lived service.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    def _send_json(self, status, payload, headers=()):
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n")
        body = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_file(self, path, content_type):
        body = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_SPEC_BYTES:
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    def do_GET(self):
        parts = [part for part in self.path.split("/") if part]
        if parts == ["healthz"]:
            self._send_json(200, self.service.healthz())
            return
        if len(parts) == 2 and parts[0] == "status":
            status = self.service.status(parts[1])
            if status is None:
                self._send_json(
                    404, {"error": f"unknown campaign {parts[1]!r}"}
                )
            else:
                self._send_json(200, status)
            return
        if len(parts) == 2 and parts[0] == "telemetry":
            path = self.service.telemetry_file(parts[1])
            if path is None:
                self._send_json(
                    404,
                    {"error": f"no telemetry for campaign "
                              f"{parts[1]!r}"},
                )
            else:
                self._send_file(path, "application/x-ndjson")
            return
        if len(parts) == 2 and parts[0] == "report":
            try:
                report = self.service.report(parts[1])
            except KeyError:
                self._send_json(
                    404, {"error": f"unknown campaign {parts[1]!r}"}
                )
            except ReportPending as pending:
                self._send_json(
                    409, {"error": str(pending), "state": pending.state}
                )
            else:
                self._send_json(200, report)
            return
        self._send_json(404, {"error": f"no route for {self.path!r}"})

    def do_POST(self):
        parts = [part for part in self.path.split("/") if part]
        if parts == ["drain"]:
            self.service.drain()
            self._send_json(202, {"status": "draining"})
            return
        if parts != ["submit"]:
            self._send_json(
                404, {"error": f"no route for {self.path!r}"}
            )
            return
        body = self._read_body()
        if body is None:
            self._send_json(413, {"error": "spec too large"})
            return
        try:
            spec = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(
                400, {"error": f"body is not valid JSON: {exc}"}
            )
            return
        try:
            entry = self.service.submit(spec)
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
        except QueueFull as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers=[("Retry-After", f"{exc.retry_after:g}")],
            )
        except ServiceDraining as exc:
            self._send_json(503, {"error": str(exc)})
        else:
            self._send_json(
                202, {"id": entry.id, "state": entry.state}
            )


def make_server(service, host="127.0.0.1", port=0):
    """Bind a ThreadingHTTPServer serving ``service`` on host:port.

    The handler is a per-server subclass so two daemons in one process
    (tests do this) never share routing state.
    """
    handler = type(
        "BoundServiceHandler", (ServiceHandler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)
