"""Campaign-as-a-service: ``reprod``, the campaign service daemon.

The CLI runs one campaign per invocation and dies with its terminal.
This package turns the same campaign engine into a long-lived service:
an HTTP front end accepts campaign *specs* (JSON bodies naming the same
flags the ``campaign`` subcommand takes), a durable append-only queue
on disk absorbs them, and a scheduler loop drains the queue through
:class:`~repro.harness.campaign.ParallelCampaign` — every existing
execution mode (pool or fabric backend, snapshots, adaptive slots,
sequential sampling) composes unchanged, because the daemon builds the
exact config the CLI would have built.

The robustness contract, in order of importance:

* **Crash safety** — every accepted spec and every state transition is
  fsync'd to the queue log before it is acknowledged; campaigns run
  against per-campaign journals with ``resume=True``.  SIGKILL the
  daemon at any instant, restart it on the same ``--home``, and it
  replays the queue, requeues whatever was in flight, resumes from the
  journal, and finishes with the *same* ``metrics_digest`` an
  uninterrupted run would have produced.
* **Admission control** — the queue is bounded; a submission past
  capacity is shed with a retryable 429 and a ``Retry-After`` hint
  instead of being silently absorbed into an unbounded backlog.
* **Graceful drain** — SIGTERM (or ``POST /drain``) stops admissions,
  lets the active campaign finish its in-flight shard round, journals
  it, and requeues the campaign for the next start.
* **Bounded retry** — a campaign that fails is retried with
  exponential backoff + jitter up to ``--max-attempts`` times, then
  marked failed with the error preserved.

Module map: :mod:`.queue` (durable spec queue), :mod:`.spec` (JSON spec
→ validated CLI namespace), :mod:`.daemon` (scheduler + recovery
orchestration), :mod:`.recovery` (restart replay), :mod:`.http` (the
stdlib HTTP front end).
"""

from repro.harness.service.daemon import (
    CampaignDaemon,
    ReportPending,
    ServiceDraining,
)
from repro.harness.service.http import make_server
from repro.harness.service.queue import QueueFull, SpecQueue
from repro.harness.service.recovery import recover_queue
from repro.harness.service.spec import SpecError, namespace_from_spec

__all__ = [
    "CampaignDaemon",
    "QueueFull",
    "ReportPending",
    "ServiceDraining",
    "SpecError",
    "SpecQueue",
    "make_server",
    "namespace_from_spec",
    "recover_queue",
    "serve",
]


def serve(args):
    """Entry point behind ``repro-bench serve``; returns an exit code.

    Runs the HTTP server on the calling thread; SIGTERM/SIGINT initiate
    a graceful drain (finish the active shard round, persist, refuse
    new work) and the process exits once the scheduler has stopped.
    """
    import signal
    import threading

    daemon = CampaignDaemon(
        args.home,
        queue_capacity=args.queue_capacity,
        campaign_budget=args.campaign_budget,
        retry_after=args.retry_after,
        max_attempts=args.max_attempts,
    )
    server = make_server(daemon, args.host, args.port)
    host, port = server.server_address[:2]
    daemon.start()
    print(f"reprod listening on http://{host}:{port} "
          f"(home {daemon.home})", flush=True)

    def _shutdown(_signum, _frame):
        daemon.drain()
        # serve_forever() must be stopped from another thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        daemon.drain()
        daemon.wait_drained()
        server.server_close()
        daemon.close()
    states = daemon.queue.state_counts()
    print("reprod drained: "
          + ", ".join(f"{state}={count}"
                      for state, count in sorted(states.items())),
          flush=True)
    return 0
