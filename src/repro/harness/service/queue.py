"""The durable spec queue: the service's source of truth on disk.

One append-only JSONL file holds the daemon's entire queue state, in
the same discipline as the campaign journal: every record is one line,
fsync'd before the operation it records is acknowledged, and a crash
can tear at most the final line (the shared torn-tail reader drops it).
Replaying the file front to back reconstructs the queue exactly, which
is the whole recovery story — there is no other state.

Two record kinds:

* ``spec``  — an accepted submission: ``{"kind": "spec", "id", "seq",
  "spec": {...}}``.  Appended exactly once per campaign, *before* the
  submitter gets its 202.
* ``state`` — a transition: ``{"kind": "state", "id", "state", ...}``
  with ``state`` one of ``queued`` / ``running`` / ``done`` /
  ``failed`` plus free-form detail (attempt count, digest, error).
  The latest state record for an id wins.

An entry whose replayed state is ``running`` marks a campaign that was
in flight when the process died; :mod:`.recovery` flips it back to
``queued`` (durably, so the flip itself survives a second crash) and
the per-campaign journal makes the rerun resume instead of repeat.

Admission control lives here too: ``submit`` counts queued + running
entries against ``capacity`` and raises :class:`QueueFull` — carrying
the ``Retry-After`` hint — instead of growing without bound.
"""

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.harness.jsonl import read_jsonl

__all__ = ["QueueEntry", "QueueFull", "SpecQueue"]

#: Every state a queue entry can be in.  ``queued`` and ``running`` are
#: *active* (they count against capacity); ``done`` and ``failed`` are
#: terminal.
STATES = ("queued", "running", "done", "failed")
ACTIVE_STATES = ("queued", "running")


class QueueFull(RuntimeError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, capacity, retry_after):
        super().__init__(
            f"queue at capacity ({capacity} active campaign(s)); "
            f"retry in {retry_after:g}s"
        )
        self.capacity = capacity
        self.retry_after = retry_after


class QueueEntry:
    """One accepted campaign spec and its current state."""

    def __init__(self, entry_id, seq, spec):
        self.id = entry_id
        self.seq = seq
        self.spec = spec
        self.state = "queued"
        self.detail = {}

    def apply(self, state, detail):
        self.state = state
        self.detail.update(detail)

    def to_dict(self):
        return {
            "id": self.id,
            "seq": self.seq,
            "state": self.state,
            "spec": self.spec,
            **self.detail,
        }


class SpecQueue:
    """The durable queue; thread-safe, one writer handle, fsync'd."""

    def __init__(self, path, capacity=16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = Path(path)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries = {}
        self._order = []
        self._seq = 0
        self._replay()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _replay(self):
        for _lineno, record in read_jsonl(self.path):
            kind = record.get("kind")
            if kind == "spec":
                entry = QueueEntry(
                    record["id"], record["seq"], record["spec"]
                )
                self._entries[entry.id] = entry
                self._order.append(entry.id)
                self._seq = max(self._seq, entry.seq + 1)
            elif kind == "state":
                entry = self._entries.get(record.get("id"))
                if entry is None:
                    # A state record for a spec we never saw can only
                    # mean the spec line itself was torn away — nothing
                    # to transition, skip it.
                    continue
                detail = {
                    key: value for key, value in record.items()
                    if key not in ("kind", "id", "state")
                }
                entry.apply(record["state"], detail)

    def _append(self, record):
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def submit(self, spec, retry_after=5.0):
        """Accept a spec; returns the new entry or raises QueueFull."""
        with self._lock:
            if self.active_count() >= self.capacity:
                raise QueueFull(self.capacity, retry_after)
            seq = self._seq
            self._seq += 1
            digest = hashlib.sha256(
                json.dumps(spec, sort_keys=True).encode("utf-8")
            ).hexdigest()
            entry = QueueEntry(f"c{seq:04d}-{digest[:12]}", seq, spec)
            self._append({
                "kind": "spec",
                "id": entry.id,
                "seq": entry.seq,
                "spec": entry.spec,
            })
            self._entries[entry.id] = entry
            self._order.append(entry.id)
            return entry

    def mark(self, entry_id, state, **detail):
        """Durably record a state transition for ``entry_id``."""
        if state not in STATES:
            raise ValueError(f"unknown queue state {state!r}")
        with self._lock:
            entry = self._entries[entry_id]
            self._append({
                "kind": "state",
                "id": entry_id,
                "state": state,
                **detail,
            })
            entry.apply(state, detail)
            return entry

    # ------------------------------------------------------------------
    def get(self, entry_id):
        return self._entries.get(entry_id)

    def in_order(self):
        """Entries in submission order (the scheduling order)."""
        return [self._entries[entry_id] for entry_id in self._order]

    def next_queued(self):
        """The oldest entry still waiting to run, or None."""
        with self._lock:
            for entry in self.in_order():
                if entry.state == "queued":
                    return entry
        return None

    def active_count(self):
        return sum(1 for entry in self._entries.values()
                   if entry.state in ACTIVE_STATES)

    def state_counts(self):
        counts = {}
        for entry in self._entries.values():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def __len__(self):
        return len(self._entries)

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
