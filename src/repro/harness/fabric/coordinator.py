"""The fabric coordinator: a TCP shard queue with supervision.

The coordinator owns a listening socket and three kinds of thread: an
accept loop, one handler per connected worker, and a monitor.  Workers
*pull* work ("steal" messages) rather than being pushed it, so a slow
worker naturally takes fewer shards and a dead one takes none — the
scheduling is load-driven without the coordinator modelling worker
speed at all.

Messages (flat JSON objects over :mod:`.protocol` frames):

worker → coordinator
    ``register``  name/pid/host + protocol and journal versions
    ``steal``     give me a shard
    ``heartbeat`` still alive (sent while running a shard)
    ``result``    ticket + journal_version + a ShardOutcome dict
    ``error``     ticket + the repr of the exception the task raised
    ``goodbye``   clean disconnect

coordinator → worker
    ``registered`` ack; carries the heartbeat interval to honour
    ``assign``     ticket + base64(pickle((task, shard)))
    ``wait``       no work right now; retry after ``seconds``
    ``shutdown``   drain finished, exit
    ``reject``     protocol mismatch; exit

Failure translation mirrors the rest of the supervision protocol but
with one difference from the process pool: a fabric dispatch is always
attributable (one shard, one worker, one connection), so a lost worker
*charges* its shard directly instead of routing survivors through the
probation queue — there is no ambiguity to resolve, and the bounded
retry budget still caps a poison shard that kills every worker it
lands on.  A result frame whose ``journal_version`` does not match ours
is a *fragment version skew*: the fragment is discarded and the shard
charged (re-run by an honest worker), never merged.

Everything the coordinator's threads learn is funnelled to the
supervisor as :class:`~repro.harness.executors.ShardEvent` records
through a thread-safe queue drained from the supervisor's thread — the
telemetry writer is single-threaded by design, so the coordinator never
emits telemetry itself.
"""

import base64
import pickle
import queue
import select
import socket
import threading
import time

from repro.harness.executors import ShardEvent
from repro.harness.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)

__all__ = ["FabricCoordinator"]

# How long the work queue may sit non-empty with zero live workers
# before the coordinator gives the shards back to the supervisor (which
# counts it against the rebuild budget and eventually falls back to
# serial execution).
DEFAULT_WORKER_GRACE = 30.0
DEFAULT_HEARTBEAT_SECONDS = 0.5


class _WorkerState:
    """Coordinator-side record of one worker connection."""

    __slots__ = ("name", "pid", "host", "conn", "alive", "clean_exit",
                 "last_seen", "shards_done")

    def __init__(self, name, pid, host, conn):
        self.name = name
        self.pid = pid
        self.host = host
        self.conn = conn
        self.alive = True
        self.clean_exit = False
        self.last_seen = time.monotonic()
        self.shards_done = 0


class FabricCoordinator:
    """Accepts workers, deals shards, survives the workers."""

    def __init__(self, host="127.0.0.1", port=0, *, shard_timeout=None,
                 heartbeat_seconds=DEFAULT_HEARTBEAT_SECONDS,
                 heartbeat_grace=None, journal_version,
                 worker_grace=DEFAULT_WORKER_GRACE):
        self.shard_timeout = shard_timeout
        self.heartbeat_seconds = heartbeat_seconds
        # A worker heartbeats every ``heartbeat_seconds`` while running;
        # missing several in a row means the process (or the network to
        # it) is gone, not merely slow.
        self.heartbeat_grace = (
            heartbeat_grace if heartbeat_grace is not None
            else max(heartbeat_seconds * 6, 2.0)
        )
        self.journal_version = journal_version
        self.worker_grace = worker_grace
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._events = queue.Queue()
        self._work = []              # [(ticket, payload_b64), ...] FIFO
        self._assignments = {}       # worker name -> (ticket, deadline, t0)
        self._workers = {}           # worker name -> _WorkerState
        self._counters = {
            "steals": 0, "requeues": 0, "heartbeats": 0,
            "worker_deaths": 0, "version_skew": 0, "results": 0,
        }
        self._starved_since = None
        self._stopping = False
        self._threads = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True)
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="fabric-monitor", daemon=True)
        self._accept_thread.start()
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Supervisor-facing surface (called from the supervisor's thread)
    # ------------------------------------------------------------------
    def submit(self, ticket, shard, task):
        payload = base64.b64encode(
            pickle.dumps((task, shard))).decode("ascii")
        with self._lock:
            self._work.append((ticket, payload))

    def drain(self, timeout):
        """Everything that happened since the last drain; blocks up to
        ``timeout`` for the first event."""
        events = []
        try:
            events.append(self._events.get(timeout=timeout))
        except queue.Empty:
            return events
        while True:
            try:
                events.append(self._events.get_nowait())
            except queue.Empty:
                return events

    def stats(self):
        with self._lock:
            roster = sorted(
                (
                    {
                        "name": state.name,
                        "pid": state.pid,
                        "host": state.host,
                        "shards_done": state.shards_done,
                        "alive": state.alive,
                    }
                    for state in self._workers.values()
                ),
                key=lambda entry: entry["name"],
            )
            summary = {"backend": "fabric", "workers": len(roster),
                       "roster": roster}
            summary.update(self._counters)
        return summary

    def live_workers(self):
        with self._lock:
            return sum(1 for s in self._workers.values() if s.alive)

    def stop(self):
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers.values())
        for state in workers:
            try:
                send_frame(state.conn, {"type": "shutdown"})
            except (OSError, FrameError):
                pass
        deadline = time.monotonic() + 2.0
        for thread in [self._accept_thread, self._monitor_thread,
                       *self._threads]:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for state in workers:
            try:
                state.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Accept + handler threads
    # ------------------------------------------------------------------
    def _accept_loop(self):
        while not self._stopping:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            handler = threading.Thread(
                target=self._handle_worker, args=(conn,),
                name="fabric-handler", daemon=True)
            self._threads.append(handler)
            handler.start()

    def _handle_worker(self, conn):
        state = None
        reason = "connection lost"
        try:
            conn.settimeout(5.0)
            hello = recv_frame(conn)
            if (not isinstance(hello, dict)
                    or hello.get("type") != "register"
                    or hello.get("protocol") != PROTOCOL_VERSION):
                send_frame(conn, {
                    "type": "reject",
                    "reason": f"need register/protocol {PROTOCOL_VERSION}",
                })
                conn.close()
                return
            name = str(hello.get("name") or f"worker-{id(conn):x}")
            state = _WorkerState(
                name=name,
                pid=hello.get("pid"),
                host=hello.get("host", ""),
                conn=conn,
            )
            with self._lock:
                # A reconnecting name replaces its dead predecessor in
                # the roster; two *live* workers must not share one.
                previous = self._workers.get(name)
                if previous is not None and previous.alive:
                    send_frame(conn, {
                        "type": "reject",
                        "reason": f"worker name {name!r} already live",
                    })
                    conn.close()
                    return
                if previous is not None:
                    state.shards_done = previous.shards_done
                self._workers[name] = state
            send_frame(conn, {
                "type": "registered",
                "heartbeat_seconds": self.heartbeat_seconds,
            })
            self._events.put(ShardEvent(
                "info", event="fabric_worker_register",
                fields={"worker": name, "pid": state.pid},
            ))
            reconnects = hello.get("reconnects") or 0
            if reconnects:
                # The worker redialled after losing us: surface the
                # recovery on the supervision stream (the roster entry
                # was already swapped in above).
                self._events.put(ShardEvent(
                    "info", event="worker_reconnected",
                    fields={"worker": name, "reconnects": reconnects},
                ))
            reason = self._serve(state)
        except FrameError as exc:
            # A torn, oversized, or undecodable frame is a protocol
            # error, not a coordinator bug: drop the connection and let
            # the reap below requeue whatever the worker was carrying.
            reason = f"protocol error: {exc}"
        except OSError:
            pass
        finally:
            if state is not None:
                self._reap(state, reason=reason)
            try:
                conn.close()
            except OSError:
                pass

    def _serve(self, state):
        """Serve one worker's message loop; returns the reap reason."""
        conn = state.conn
        # Wait for readability with a short poll (so the stop flag is
        # observed), then read the whole frame under a generous timeout
        # — a mid-frame timeout would tear the stream.
        conn.settimeout(5.0)
        while not self._stopping and state.alive:
            try:
                ready, _, _ = select.select([conn], [], [], 0.2)
            except (OSError, ValueError):
                return "connection lost"
            if not ready:
                continue
            try:
                message = recv_frame(conn)
            except FrameError as exc:
                # Torn frame, corrupt length prefix, invalid JSON: a
                # clean protocol error.  The reap that follows requeues
                # the worker's in-flight shard — the read loop itself
                # must never die on bad bytes.
                self._events.put(ShardEvent(
                    "info", event="fabric_protocol_error",
                    fields={"worker": state.name, "error": str(exc)},
                ))
                return f"protocol error: {exc}"
            except OSError:
                return "connection lost"
            if message is None:
                return "connection lost"  # clean EOF
            state.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "steal":
                self._on_steal(state)
            elif kind == "heartbeat":
                with self._lock:
                    self._counters["heartbeats"] += 1
            elif kind == "result":
                self._on_result(state, message)
            elif kind == "error":
                self._on_error(state, message)
            elif kind == "goodbye":
                state.clean_exit = True
                return "clean exit"
        return "connection lost"

    # ------------------------------------------------------------------
    # Message handlers (run on handler threads; events go via the queue)
    # ------------------------------------------------------------------
    def _on_steal(self, state):
        with self._lock:
            if self._stopping:
                reply = {"type": "shutdown"}
                assignment = None
            elif not self._work:
                reply = {"type": "wait", "seconds": 0.05}
                assignment = None
            else:
                ticket, payload = self._work.pop(0)
                now = time.monotonic()
                deadline = (now + self.shard_timeout
                            if self.shard_timeout is not None else None)
                self._assignments[state.name] = (ticket, deadline, now)
                self._counters["steals"] += 1
                reply = {"type": "assign", "ticket": ticket,
                         "payload": payload}
                assignment = ticket
        try:
            send_frame(state.conn, reply)
        except (OSError, FrameError):
            # The worker vanished between steal and assign; the reap
            # path (via _serve's exit) reclaims the ticket.
            return
        if assignment is not None:
            self._events.put(ShardEvent(
                "info", event="fabric_steal",
                fields={"worker": state.name, "shard": assignment},
            ))

    def _on_result(self, state, message):
        ticket = message.get("ticket")
        with self._lock:
            assignment = self._assignments.get(state.name)
            if assignment is None or assignment[0] != ticket:
                return  # stale result for a ticket already reclaimed
            del self._assignments[state.name]
            self._counters["results"] += 1
            version = message.get("journal_version")
            skew = version != self.journal_version
            if skew:
                self._counters["version_skew"] += 1
            else:
                state.shards_done += 1
            started = assignment[2]
        if skew:
            self._events.put(ShardEvent(
                "info", event="fabric_version_skew",
                fields={"worker": state.name, "shard": ticket,
                        "got": version, "want": self.journal_version},
            ))
            self._events.put(ShardEvent(
                "failed", ticket=ticket,
                reason=(f"fragment version skew: worker {state.name} "
                        f"sent journal v{version}, want "
                        f"v{self.journal_version}"),
            ))
            return
        self._events.put(ShardEvent(
            "done", ticket=ticket, outcome=message.get("outcome"),
            seconds=time.monotonic() - started,
        ))

    def _on_error(self, state, message):
        ticket = message.get("ticket")
        with self._lock:
            assignment = self._assignments.get(state.name)
            if assignment is None or assignment[0] != ticket:
                return
            del self._assignments[state.name]
        self._events.put(ShardEvent(
            "failed", ticket=ticket,
            reason=f"crash: {message.get('error', 'unknown')}",
        ))

    # ------------------------------------------------------------------
    # Reaping + monitoring
    # ------------------------------------------------------------------
    def _reap(self, state, reason):
        """A worker is gone; reclaim its shard (charged — the dispatch
        was solo, so the culprit is unambiguous)."""
        with self._lock:
            if not state.alive:
                return
            state.alive = False
            assignment = self._assignments.pop(state.name, None)
            if not state.clean_exit:
                self._counters["worker_deaths"] += 1
            if assignment is not None:
                self._counters["requeues"] += 1
        if state.clean_exit and assignment is None:
            return
        if not state.clean_exit:
            self._events.put(ShardEvent(
                "info", event="fabric_worker_dead",
                fields={"worker": state.name, "reason": reason},
            ))
        if assignment is not None:
            self._events.put(ShardEvent(
                "failed", ticket=assignment[0],
                reason=f"worker {state.name} died ({reason})",
            ))

    def _monitor_loop(self):
        while not self._stopping:
            time.sleep(0.1)
            now = time.monotonic()
            hung = []
            stale = []
            with self._lock:
                for name, (ticket, deadline, _t0) in list(
                        self._assignments.items()):
                    state = self._workers.get(name)
                    if state is None or not state.alive:
                        continue
                    if deadline is not None and now >= deadline:
                        hung.append((state, ticket))
                    elif now - state.last_seen > self.heartbeat_grace:
                        stale.append(state)
            for state, ticket in hung:
                self._kill_assignment(
                    state, ticket,
                    reason=(f"hang: exceeded {self.shard_timeout}s "
                            f"deadline"),
                )
            for state in stale:
                # Heartbeats stopped: the worker process is dead even if
                # the TCP connection hasn't noticed yet.
                state.clean_exit = False
                try:
                    state.conn.close()
                except OSError:
                    pass
                self._reap(state, reason="heartbeat lost")
            self._check_starvation()

    def _kill_assignment(self, state, ticket, reason):
        """Charge a hung shard and drop the worker that is stuck on it
        (closing the connection is the only preemption we have)."""
        with self._lock:
            assignment = self._assignments.get(state.name)
            if assignment is None or assignment[0] != ticket:
                return
            del self._assignments[state.name]
            state.alive = False
            self._counters["worker_deaths"] += 1
            self._counters["requeues"] += 1
        try:
            state.conn.close()
        except OSError:
            pass
        self._events.put(ShardEvent(
            "info", event="fabric_worker_dead",
            fields={"worker": state.name, "reason": "hang"},
        ))
        self._events.put(ShardEvent(
            "failed", ticket=ticket, reason=reason,
        ))

    def _check_starvation(self):
        """Queued work with zero live workers cannot complete; after a
        grace period hand it all back so the supervisor can count a
        backend loss and, eventually, fall back to serial."""
        with self._lock:
            starving = bool(self._work) and not any(
                s.alive for s in self._workers.values())
            if not starving:
                self._starved_since = None
                return
            if self._starved_since is None:
                self._starved_since = time.monotonic()
                return
            if time.monotonic() - self._starved_since < self.worker_grace:
                return
            reclaimed = [ticket for ticket, _payload in self._work]
            self._work.clear()
            self._counters["requeues"] += len(reclaimed)
            self._starved_since = None
        self._events.put(ShardEvent(
            "backend_lost", reason="no-workers",
            fields={"reclaimed": reclaimed},
        ))
        for ticket in reclaimed:
            self._events.put(ShardEvent(
                "requeue", ticket=ticket, reason="no live workers",
            ))
