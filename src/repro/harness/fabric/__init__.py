"""Socket coordinator/worker campaign fabric.

The executor backend that scales a campaign beyond one process pool: a
TCP coordinator (:mod:`.coordinator`) registers workers, hands out
shards via pull-based work stealing, and watches heartbeats against
per-shard wall-clock deadlines; a worker (:mod:`.worker`) is a plain
process — on this machine or another — that steals shards, runs them,
and ships :class:`~repro.harness.campaign.ShardOutcome` fragments back
over length-prefixed JSON frames (:mod:`.protocol`).  The supervisor
drives it all through :class:`.backend.FabricExecutorBackend`, which is
also where loopback mode (local worker processes) lives.

The wire contract *is* the journal record format: a result frame
carries exactly the dict :meth:`ShardOutcome.to_dict` writes into the
v5 journal, tagged with the journal version so skewed workers are
rejected rather than silently merged.  Because the campaign's merge is
exactly-once and order-independent, an N-worker fabric campaign is
byte-digest-identical to a serial run — the determinism gate holds.
"""

from repro.harness.fabric.backend import FabricExecutorBackend
from repro.harness.fabric.coordinator import FabricCoordinator
from repro.harness.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.harness.fabric.worker import FabricWorker

__all__ = [
    "PROTOCOL_VERSION",
    "FabricCoordinator",
    "FabricExecutorBackend",
    "FabricWorker",
    "FrameError",
    "parse_address",
    "recv_frame",
    "send_frame",
]
