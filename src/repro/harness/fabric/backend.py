"""The supervisor-facing face of the fabric.

:class:`FabricExecutorBackend` adapts a :class:`.FabricCoordinator` to
the executor-backend interface of :mod:`repro.harness.executors`.  Two
deployment shapes share it:

* **loopback** — the backend spawns N local worker processes itself
  (``multiprocessing.Process`` running :class:`.FabricWorker`); this is
  single-machine scale-out with the full wire protocol in the loop, and
  what the determinism/fabric CI gates exercise.  Workers are forked
  after the campaign warms the mutant cache, so they inherit the warm
  cache exactly like pool workers do.
* **listen** — the backend binds a caller-chosen address and waits for
  external ``repro campaign-worker host:port`` processes to register;
  nothing is spawned locally (loopback workers may still be added on
  top).

``can_accept`` is always true: the coordinator queues everything and
workers *pull*, so admission control is the queue and the per-shard
deadline clock starts at assignment (steal) time, not submit time — a
shard is never charged for time spent waiting on a busy fabric.

Result fragments arrive as journal-v5 dicts; ``decoder`` (the campaign
passes ``ShardOutcome.from_dict``) rebuilds the outcome object before
the supervisor sees it, and a fragment the decoder rejects is converted
to a charged failure rather than poisoning the merge.
"""

import multiprocessing
import os

from repro.harness.executors import ShardEvent
from repro.harness.fabric.coordinator import FabricCoordinator

__all__ = ["FabricExecutorBackend", "CHAOS_KILL_ENV"]

# CI chaos hook: when set to N, loopback worker 0 SIGKILLs itself on its
# Nth assignment (see FabricWorker.chaos_kill_after_assignments).
CHAOS_KILL_ENV = "REPRO_FABRIC_CHAOS_KILL_AFTER"


def _loopback_worker_main(host, port, index, journal_version,
                          chaos_kill_after):
    from repro.harness.fabric.worker import FabricWorker
    FabricWorker(
        host, port,
        name=f"loopback-{index}",
        journal_version=journal_version,
        chaos_kill_after_assignments=chaos_kill_after,
    ).run()


class FabricExecutorBackend:
    """Executor backend dispatching through a fabric coordinator."""

    def __init__(self, *, loopback_workers=0, listen=None,
                 shard_timeout=None, heartbeat_seconds=0.5,
                 worker_grace=None, journal_version=None,
                 decoder=None, chaos_kill_after=None):
        if journal_version is None:
            from repro.harness.campaign import JOURNAL_VERSION
            journal_version = JOURNAL_VERSION
        if loopback_workers <= 0 and listen is None:
            raise ValueError(
                "fabric backend needs loopback workers, a listen "
                "address, or both"
            )
        host, port = listen if listen is not None else ("127.0.0.1", 0)
        kwargs = {}
        if worker_grace is not None:
            kwargs["worker_grace"] = worker_grace
        self._decoder = decoder
        self._coordinator = FabricCoordinator(
            host, port,
            shard_timeout=shard_timeout,
            heartbeat_seconds=heartbeat_seconds,
            journal_version=journal_version,
            **kwargs,
        )
        self.address = self._coordinator.address
        if chaos_kill_after is None:
            chaos_env = os.environ.get(CHAOS_KILL_ENV)
            if chaos_env:
                chaos_kill_after = int(chaos_env)
        self._processes = []
        coordinator_host, coordinator_port = self.address
        connect_host = ("127.0.0.1"
                        if coordinator_host in ("0.0.0.0", "::")
                        else coordinator_host)
        for index in range(loopback_workers):
            process = multiprocessing.Process(
                target=_loopback_worker_main,
                args=(connect_host, coordinator_port, index,
                      journal_version,
                      chaos_kill_after if index == 0 else None),
                name=f"fabric-loopback-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    # ------------------------------------------------------------------
    # Executor backend interface
    # ------------------------------------------------------------------
    def can_accept(self):
        return True

    def submit_shard(self, ticket, shard, task):
        self._coordinator.submit(ticket, shard, task)
        return []

    def drain(self, timeout):
        events = self._coordinator.drain(timeout)
        if self._decoder is None:
            return events
        decoded = []
        for event in events:
            if event.kind == "done":
                try:
                    event.outcome = self._decoder(event.outcome)
                except Exception as exception:  # noqa: BLE001
                    event = ShardEvent(
                        "failed", ticket=event.ticket,
                        reason=f"undecodable fragment: {exception!r}",
                    )
            decoded.append(event)
        return decoded

    def shutdown(self):
        self._coordinator.stop()
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._processes = []

    def stats(self):
        summary = self._coordinator.stats()
        summary["loopback_workers"] = len(self._processes)
        return summary
