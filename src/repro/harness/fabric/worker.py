"""The fabric worker: steal a shard, run it, ship the fragment back.

A worker is one process with one TCP connection.  Its loop is dumb on
purpose — register, then steal/run/report until the coordinator says
``shutdown`` or the connection dies.  All supervision intelligence
(deadlines, retries, quarantine) lives on the coordinator side; the
worker's only obligations are to heartbeat while a shard is running (so
a *hang* is distinguishable from a *death*) and to tag every result
with the journal version it was built against (so a skewed worker's
fragments are rejected instead of merged).

The result payload is ``outcome.to_dict()`` — the exact record the
campaign journal writes — so the wire contract inherits the journal's
round-trip guarantees and the merged campaign stays byte-digest-
identical to a serial run.

``chaos_kill_after_assignments`` is the CI fault injector for the
fault injector: the worker SIGKILLs itself on receiving its Nth
assignment, exercising the death/requeue path in a real campaign.

**Reconnects**: a dropped socket (or an unreachable coordinator at
start-up) used to kill the worker outright, which turns every
coordinator blip into a fleet restart.  ``max_reconnects`` bounds a
redial loop with exponential backoff + deterministic jitter
(:class:`~repro.harness.backoff.BackoffPolicy`; tests pin the schedule
through the ``_sleep`` hook).  A re-registration carries the attempt
count, which the coordinator surfaces as a ``worker_reconnected``
telemetry event; a clean ``shutdown``/``reject`` never redials.
"""

import base64
import os
import pickle
import signal
import socket
import threading

from repro.harness.backoff import BackoffPolicy
from repro.harness.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)

__all__ = ["FabricWorker"]


class FabricWorker:
    """One worker process's connection to a fabric coordinator."""

    def __init__(self, host, port, *, name=None, journal_version=None,
                 chaos_kill_after_assignments=None, max_reconnects=0,
                 backoff=None):
        if journal_version is None:
            # The version this worker's checkout writes; imported lazily
            # so a skewed test double can override it.
            from repro.harness.campaign import JOURNAL_VERSION
            journal_version = JOURNAL_VERSION
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.journal_version = journal_version
        self.chaos_kill_after_assignments = chaos_kill_after_assignments
        self.max_reconnects = int(max_reconnects)
        # Seed the jitter per worker name so a redialling fleet spreads
        # apart instead of thundering back in lockstep.
        self.backoff = backoff or BackoffPolicy(
            base=0.2, factor=2.0, max_delay=5.0, jitter=0.5,
            seed=self.name,
        )
        self.reconnects = 0
        self._assignments = 0
        self._send_lock = threading.Lock()

    def _send(self, sock, message):
        with self._send_lock:
            send_frame(sock, message)

    def run(self):
        """Serve until shutdown/rejection, or until the reconnect
        budget is spent on a coordinator that keeps vanishing.

        Returns the total number of shards completed across every
        connection (0 also on rejection).
        """
        completed = 0
        while True:
            try:
                done, redial = self._session()
            except (OSError, FrameError):
                done, redial = 0, True
            completed += done
            if not redial or self.reconnects >= self.max_reconnects:
                return completed
            self.reconnects += 1
            _sleep(self.backoff.delay(self.reconnects))

    def _session(self):
        """One connection's lifetime; returns (completed, redial?)."""
        completed = 0
        with socket.create_connection((self.host, self.port)) as conn:
            self._send(conn, {
                "type": "register",
                "name": self.name,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "protocol": PROTOCOL_VERSION,
                "journal_version": self.journal_version,
                "reconnects": self.reconnects,
            })
            ack = recv_frame(conn)
            if not isinstance(ack, dict) or ack.get("type") != "registered":
                return completed, False
            heartbeat_seconds = float(ack.get("heartbeat_seconds", 0.5))
            while True:
                try:
                    self._send(conn, {"type": "steal"})
                    message = recv_frame(conn)
                except (OSError, FrameError):
                    return completed, True
                if message is None:
                    return completed, True
                kind = message.get("type")
                if kind == "shutdown":
                    try:
                        self._send(conn, {"type": "goodbye"})
                    except (OSError, FrameError):
                        pass
                    return completed, False
                if kind == "wait":
                    _sleep(float(message.get("seconds", 0.05)))
                    continue
                if kind != "assign":
                    continue
                self._assignments += 1
                if (self.chaos_kill_after_assignments is not None
                        and self._assignments
                        >= self.chaos_kill_after_assignments):
                    # CI chaos mode: die like a real worker dies — no
                    # goodbye, no cleanup, mid-assignment.
                    os.kill(os.getpid(), signal.SIGKILL)
                completed += self._run_assignment(
                    conn, message, heartbeat_seconds)

    def _run_assignment(self, conn, message, heartbeat_seconds):
        ticket = message.get("ticket")
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, stop, heartbeat_seconds),
            name="fabric-heartbeat", daemon=True)
        heartbeat.start()
        try:
            task, shard = pickle.loads(
                base64.b64decode(message["payload"]))
            outcome = task(shard)
        except BaseException as exception:  # noqa: BLE001 — report, don't die
            stop.set()
            heartbeat.join()
            try:
                self._send(conn, {
                    "type": "error",
                    "ticket": ticket,
                    "error": repr(exception),
                })
            except (OSError, FrameError):
                pass
            return 0
        stop.set()
        heartbeat.join()
        payload = (outcome.to_dict()
                   if hasattr(outcome, "to_dict") else outcome)
        self._send(conn, {
            "type": "result",
            "ticket": ticket,
            "journal_version": self.journal_version,
            "outcome": payload,
        })
        return 1

    def _heartbeat_loop(self, conn, stop, interval):
        while not stop.wait(interval):
            try:
                self._send(conn, {"type": "heartbeat"})
            except (OSError, FrameError):
                return


def _sleep(seconds):
    # time.sleep via an Event so tests can monkeypatch trivially.
    threading.Event().wait(seconds)
