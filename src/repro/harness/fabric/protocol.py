"""Wire framing for the campaign fabric.

One frame = a 4-byte big-endian length prefix + that many bytes of
UTF-8 JSON (``sort_keys=True``, so a frame's bytes are a pure function
of its content — the same normalization the journal and
``metrics_digest`` already rely on).  Messages are flat JSON objects
with a ``type`` field; the payload vocabulary lives in
:mod:`.coordinator` and :mod:`.worker`.

The frame layer is deliberately dumb: no negotiation, no compression,
no partial reads surviving a torn connection.  ``recv_frame`` returns
``None`` only on a clean EOF at a frame boundary; a connection that
dies mid-frame raises :class:`FrameError`, and the coordinator treats
both the same way a dead worker is treated — requeue its shard and move
on.
"""

import json
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameError",
    "parse_address",
    "recv_frame",
    "send_frame",
]

PROTOCOL_VERSION = 1

# A shard result carries per-slot activation/incident/reboot records but
# never bulk data; 64 MiB is orders of magnitude above any real frame
# and exists to turn a corrupt length prefix into a clean error instead
# of an allocation bomb.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(RuntimeError):
    """A frame could not be read or decoded (torn, oversized, bad JSON)."""


def send_frame(sock, message):
    """Serialize ``message`` (a JSON-ready dict) as one frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {len(payload)} bytes")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock, count):
    """Read exactly ``count`` bytes; '' means the peer closed mid-read."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    """Read one frame; None on clean EOF at a frame boundary."""
    header = sock.recv(_LENGTH.size)
    if not header:
        return None
    if len(header) < _LENGTH.size:
        rest = _recv_exact(sock, _LENGTH.size - len(header))
        if rest is None:
            raise FrameError("connection closed mid-length-prefix")
        header += rest
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {length} bytes")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        # Every message in the vocabulary is a flat object; a frame
        # holding valid-but-wrong JSON (a list, a bare string) must be
        # a clean protocol error the read loops already handle, not an
        # AttributeError when the caller reaches for .get("type").
        raise FrameError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def parse_address(address):
    """Parse ``host:port`` into ``(host, port)``; raises ValueError."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"fabric address must be host:port, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"fabric address port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"fabric address port out of range: {port}")
    return host, port
