"""Supervised shard execution for the parallel campaign.

The paper's metrics are only comparable across (BT, FIT) pairs when a
campaign completes *whole*: SPCf/THRf/RTMf and ADMf are ratios over the
full set of injection slots, so a run that silently loses slots is not a
data point, it is a different experiment.  ``ParallelCampaign``'s workers
are ordinary processes, though, and processes die: a mutant can take the
interpreter down, a host can OOM-kill a worker, a pathological fault can
hang a shard forever.  Before this module, any of those raised straight
out of ``as_completed`` and lost the entire campaign.

:class:`ShardSupervisor` sits between the campaign and its worker pool
and turns worker failure into an explicit, bounded protocol:

* **Crash** — a shard task that raises is retried on a fresh dispatch,
  up to ``max_retries`` retries.
* **Worker death** — a worker that disappears (``BrokenProcessPool``,
  e.g. ``SIGKILL`` or an interpreter abort) poisons every in-flight
  future, so the culprit is ambiguous.  All in-flight shards are
  requeued *uncharged* onto a **probation** queue and re-run one at a
  time on a rebuilt pool: a shard that dies solo is unambiguously
  guilty and is charged; innocents complete and are cleared.  This is
  what keeps one poison shard from dragging its neighbours into
  quarantine.
* **Hang** — every dispatch carries a wall-clock deadline
  (``shard_timeout``).  A shard that exceeds it is charged, the pool is
  torn down (a hung worker cannot be preempted any other way), and the
  remaining in-flight shards are requeued uncharged.
* **Quarantine** — a shard charged more than ``max_retries`` times is
  recorded as a :class:`QuarantinedShard` (with the fault ids it was
  carrying) instead of being retried forever.  The campaign then
  completes with ``degraded=True`` rather than dying.
* **Serial fallback** — if the pool is lost more than
  ``max_pool_rebuilds`` times the supervisor stops trusting process
  isolation and runs the remaining shards in-process, serially.  Hangs
  cannot be detected in this mode (there is no one left to watch), but
  crashes are still retried and quarantined.

The supervisor is deliberately generic: ``run(shards, task)`` accepts
any picklable ``task(shard) -> outcome`` callable, which is what the
supervision tests exploit to inject crashes, kills, and hangs without a
real campaign underneath.
"""

import math
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.harness.telemetry import NullTelemetry

__all__ = [
    "QuarantinedShard",
    "ShardSupervisor",
    "SupervisionReport",
]

DEFAULT_MAX_RETRIES = 2
DEFAULT_MAX_POOL_REBUILDS = 3


@dataclass(frozen=True)
class QuarantinedShard:
    """A shard given up on after exhausting its retry budget."""

    shard_index: int
    first_slot: int
    num_slots: int
    fault_ids: tuple
    attempts: int
    failures: tuple

    def to_dict(self):
        return {
            "shard_index": self.shard_index,
            "first_slot": self.first_slot,
            "num_slots": self.num_slots,
            "fault_ids": list(self.fault_ids),
            "attempts": self.attempts,
            "failures": list(self.failures),
        }


@dataclass
class SupervisionReport:
    """Everything one supervised pass over a shard list produced."""

    outcomes: dict = field(default_factory=dict)
    quarantined: list = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False

    @property
    def degraded(self):
        """True when at least one shard's slots are missing."""
        return bool(self.quarantined)


class _Attempt:
    """Bookkeeping for one shard: every charged failure, in order."""

    __slots__ = ("shard", "failures")

    def __init__(self, shard):
        self.shard = shard
        self.failures = []


class ShardSupervisor:
    """Runs shard tasks on a worker pool and survives the pool.

    One supervisor owns at most one :class:`ProcessPoolExecutor` at a
    time and may be reused across many :meth:`run` calls (the campaign
    reuses it across iterations so the fork cost is paid once).  Call
    :meth:`close` — or use it as a context manager — when done.
    """

    def __init__(self, workers=1, *, shard_timeout=None,
                 max_retries=DEFAULT_MAX_RETRIES,
                 max_pool_rebuilds=DEFAULT_MAX_POOL_REBUILDS,
                 poll_seconds=0.05, telemetry=None):
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.workers = max(1, int(workers))
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.max_pool_rebuilds = max_pool_rebuilds
        self.poll_seconds = poll_seconds
        self.telemetry = telemetry if telemetry is not None else NullTelemetry()
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, kill=False):
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            # A hung worker never returns, so the only way to reclaim it
            # is to terminate the processes under the executor.  The
            # _processes map is executor-internal but stable since 3.7;
            # failing to reach it only leaks the worker, never the run.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    if process.is_alive():
                        process.terminate()
                except (OSError, ValueError):
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, shards, task, on_outcome=None):
        """Run ``task`` over every shard; never raises for worker faults.

        Returns a :class:`SupervisionReport`; completed outcomes are in
        ``report.outcomes`` keyed by shard index, and ``on_outcome`` (if
        given) is called in the parent as each one lands — the campaign
        journals through it.
        """
        report = SupervisionReport()
        shards = list(shards)
        if not shards:
            return report
        if self.workers <= 1 or len(shards) == 1:
            queue = deque(_Attempt(shard) for shard in shards)
            self._run_serial(queue, task, report, on_outcome)
            return report
        self._run_pool(shards, task, report, on_outcome)
        return report

    # ------------------------------------------------------------------
    # Pool mode
    # ------------------------------------------------------------------
    def _run_pool(self, shards, task, report, on_outcome):
        pending = deque(_Attempt(shard) for shard in shards)
        probation = deque()
        running = {}
        while pending or probation or running:
            if (report.pool_rebuilds > self.max_pool_rebuilds
                    and not running):
                # The pool keeps dying under us: stop trusting process
                # isolation and finish in-process.
                report.serial_fallback = True
                self.telemetry.emit(
                    "serial_fallback",
                    remaining=len(probation) + len(pending),
                    pool_rebuilds=report.pool_rebuilds,
                )
                queue = deque(probation)
                queue.extend(pending)
                probation.clear()
                pending.clear()
                self._discard_pool()
                self._run_serial(queue, task, report, on_outcome)
                return
            # Dispatch.  While probation is non-empty, shards run one at
            # a time: a solo failure identifies its culprit exactly.
            if probation:
                if not running:
                    self._dispatch(running, probation.popleft(), task,
                                   report, probation)
            else:
                while pending and len(running) < self.workers:
                    self._dispatch(running, pending.popleft(), task,
                                   report, probation)
            if not running:
                continue
            done, _ = wait(list(running), timeout=self.poll_seconds,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            broken = []
            for future in done:
                attempt, _deadline, started = running.pop(future)
                exception = future.exception()
                if exception is None:
                    self._complete(report, attempt, future.result(),
                                   now - started, on_outcome)
                elif isinstance(exception, BrokenProcessPool):
                    broken.append(attempt)
                else:
                    if not self._fail(report, attempt,
                                      f"crash: {exception!r}"):
                        pending.append(attempt)
            if broken:
                self._handle_pool_loss(running, broken, probation,
                                       report, on_outcome)
                continue
            self._check_deadlines(running, pending, probation, report,
                                  on_outcome, now)

    def _dispatch(self, running, attempt, task, report, probation):
        pool = self._ensure_pool()
        try:
            future = pool.submit(task, attempt.shard)
        except BrokenProcessPool:
            # The pool died between our last drain and this submit.
            self._discard_pool()
            report.pool_rebuilds += 1
            self.telemetry.emit("pool_rebuild", reason="submit-on-broken")
            probation.appendleft(attempt)
            return
        now = time.monotonic()
        deadline = (math.inf if self.shard_timeout is None
                    else now + self.shard_timeout)
        running[future] = (attempt, deadline, now)
        self.telemetry.emit(
            "shard_dispatch",
            shard=attempt.shard.index,
            attempt=len(attempt.failures) + 1,
        )

    def _handle_pool_loss(self, running, broken, probation, report,
                          on_outcome):
        """A worker died; every in-flight future is (or will be) broken."""
        victims = list(broken)
        now = time.monotonic()
        for future in list(running):
            attempt, _deadline, started = running.pop(future)
            if future.done() and future.exception() is None:
                # Finished in the gap between the kill and our drain.
                self._complete(report, attempt, future.result(),
                               now - started, on_outcome)
            else:
                victims.append(attempt)
        self._discard_pool()
        report.pool_rebuilds += 1
        self.telemetry.emit(
            "pool_rebuild",
            reason="worker-died",
            suspects=[victim.shard.index for victim in victims],
        )
        if len(victims) == 1:
            # Solo dispatch: the culprit is unambiguous — charge it.
            victim = victims[0]
            if not self._fail(report, victim, "worker died (pool lost)"):
                probation.append(victim)
        else:
            # Culprit unknown: everyone goes to probation, uncharged,
            # to be re-run one at a time.
            probation.extend(victims)

    def _check_deadlines(self, running, pending, probation, report,
                         on_outcome, now):
        hung = {
            future for future, (_a, deadline, _s) in running.items()
            if now >= deadline
        }
        if not hung:
            return
        for future in list(running):
            attempt, _deadline, started = running.pop(future)
            if future in hung:
                if not self._fail(
                    report, attempt,
                    f"hang: exceeded {self.shard_timeout}s deadline",
                ):
                    probation.append(attempt)
            elif future.done() and future.exception() is None:
                self._complete(report, attempt, future.result(),
                               now - started, on_outcome)
            else:
                # Innocent bystander: requeue uncharged, ahead of new work.
                pending.appendleft(attempt)
        # A hung worker cannot be preempted individually — kill the pool.
        self._discard_pool(kill=True)
        report.pool_rebuilds += 1
        self.telemetry.emit("pool_rebuild", reason="hang")

    # ------------------------------------------------------------------
    # Serial mode (workers=1, single shard, or pool fallback)
    # ------------------------------------------------------------------
    def _run_serial(self, queue, task, report, on_outcome):
        while queue:
            attempt = queue.popleft()
            started = time.monotonic()
            try:
                outcome = task(attempt.shard)
            except Exception as exception:  # noqa: BLE001 — supervision
                if not self._fail(report, attempt,
                                  f"crash: {exception!r}"):
                    queue.append(attempt)
                continue
            self._complete(report, attempt, outcome,
                           time.monotonic() - started, on_outcome)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _complete(self, report, attempt, outcome, seconds, on_outcome):
        report.outcomes[attempt.shard.index] = outcome
        event = {
            "shard": attempt.shard.index,
            "seconds": round(seconds, 6),
            "attempts": len(attempt.failures) + 1,
        }
        for counter in ("mis", "kns", "kcp", "faults_injected"):
            value = getattr(outcome, counter, None)
            if value is not None:
                event[counter] = value
        # Integrity protocol: surface per-shard contamination and reboot
        # counts in the event stream (the records themselves travel in
        # the outcome).
        for counter in ("contaminated_slots", "reboots"):
            value = getattr(outcome, counter, None)
            if value is not None:
                event[counter] = len(value)
        self.telemetry.emit("shard_done", **event)
        if on_outcome is not None:
            on_outcome(outcome)

    def _fail(self, report, attempt, reason):
        """Charge one failure; returns True when the shard is quarantined."""
        attempt.failures.append(reason)
        shard = attempt.shard
        if len(attempt.failures) > self.max_retries:
            quarantined = QuarantinedShard(
                shard_index=shard.index,
                first_slot=shard.first_slot,
                num_slots=len(shard.locations),
                fault_ids=tuple(
                    location.fault_id for location in shard.locations
                ),
                attempts=len(attempt.failures),
                failures=tuple(attempt.failures),
            )
            report.quarantined.append(quarantined)
            self.telemetry.emit(
                "shard_quarantine",
                shard=shard.index,
                first_slot=shard.first_slot,
                fault_ids=list(quarantined.fault_ids),
                failures=list(quarantined.failures),
            )
            return True
        report.retries += 1
        self.telemetry.emit(
            "shard_retry",
            shard=shard.index,
            reason=reason,
            attempt=len(attempt.failures),
        )
        return False
