"""Supervised shard execution for the parallel campaign.

The paper's metrics are only comparable across (BT, FIT) pairs when a
campaign completes *whole*: SPCf/THRf/RTMf and ADMf are ratios over the
full set of injection slots, so a run that silently loses slots is not a
data point, it is a different experiment.  ``ParallelCampaign``'s workers
are ordinary processes, though, and processes die: a mutant can take the
interpreter down, a host can OOM-kill a worker, a pathological fault can
hang a shard forever.  Before this module, any of those raised straight
out of ``as_completed`` and lost the entire campaign.

:class:`ShardSupervisor` sits between the campaign and its executor
backend and turns worker failure into an explicit, bounded protocol:

* **Crash** — a shard task that raises is retried on a fresh dispatch,
  up to ``max_retries`` retries.
* **Worker death** — a worker that disappears (``BrokenProcessPool``,
  e.g. ``SIGKILL`` or an interpreter abort) poisons every in-flight
  future, so the culprit is ambiguous.  All in-flight shards are
  requeued *uncharged* onto a **probation** queue and re-run one at a
  time on a rebuilt pool: a shard that dies solo is unambiguously
  guilty and is charged; innocents complete and are cleared.  This is
  what keeps one poison shard from dragging its neighbours into
  quarantine.  (Backends where every dispatch is solo — the fabric —
  charge a lost dispatch directly; there is no ambiguity to resolve.)
* **Hang** — every dispatch carries a wall-clock deadline
  (``shard_timeout``).  A shard that exceeds it is charged and the
  backend reclaims whatever it must to preempt it (the pool backend
  tears the whole pool down; the fabric drops one worker).
* **Quarantine** — a shard charged more than ``max_retries`` times is
  recorded as a :class:`QuarantinedShard` (with the fault ids it was
  carrying) instead of being retried forever.  The campaign then
  completes with ``degraded=True`` rather than dying.
* **Serial fallback** — if the backend is lost more than
  ``max_pool_rebuilds`` times the supervisor stops trusting it and runs
  the remaining shards in-process, serially.  Hangs cannot be detected
  in this mode (there is no one left to watch), but crashes are still
  retried and quarantined.

The *mechanics* of dispatch live behind the executor-backend interface
of :mod:`repro.harness.executors`: the supervisor owns only the policy
above and is generic over any backend — the default process pool, the
socket fabric of :mod:`repro.harness.fabric`, or a test double.  It is
also generic over the task: ``run(shards, task)`` accepts any picklable
``task(shard) -> outcome`` callable, which is what the supervision tests
exploit to inject crashes, kills, and hangs without a real campaign
underneath.
"""

import time
from collections import deque
from dataclasses import dataclass, field

from repro.harness.executors import PoolExecutorBackend
from repro.harness.telemetry import NullTelemetry

__all__ = [
    "QuarantinedShard",
    "ShardSupervisor",
    "SupervisionInterrupted",
    "SupervisionReport",
]

DEFAULT_MAX_RETRIES = 2
DEFAULT_MAX_POOL_REBUILDS = 3


class SupervisionInterrupted(RuntimeError):
    """A supervised pass stopped early at a shard boundary.

    Raised when the supervisor's ``stop_event`` is set: dispatching
    stops immediately, every in-flight shard is allowed to finish (and
    is reported through ``on_outcome``, so the campaign journal has it),
    and then this is raised instead of returning a report.  ``report``
    carries everything that completed before the stop; ``remaining`` is
    the number of shards that never ran.  This is what lets the service
    daemon drain gracefully — finish the active shard round, persist
    state, refuse new work — and enforce per-campaign wall-clock
    budgets without killing workers mid-slot.
    """

    def __init__(self, report, remaining):
        super().__init__(
            f"supervision interrupted with {remaining} shard(s) not run"
        )
        self.report = report
        self.remaining = remaining


@dataclass(frozen=True)
class QuarantinedShard:
    """A shard given up on after exhausting its retry budget."""

    shard_index: int
    first_slot: int
    num_slots: int
    fault_ids: tuple
    attempts: int
    failures: tuple

    def to_dict(self):
        return {
            "shard_index": self.shard_index,
            "first_slot": self.first_slot,
            "num_slots": self.num_slots,
            "fault_ids": list(self.fault_ids),
            "attempts": self.attempts,
            "failures": list(self.failures),
        }


@dataclass
class SupervisionReport:
    """Everything one supervised pass over a shard list produced."""

    outcomes: dict = field(default_factory=dict)
    quarantined: list = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False

    @property
    def degraded(self):
        """True when at least one shard's slots are missing."""
        return bool(self.quarantined)


class _Attempt:
    """Bookkeeping for one shard: every charged failure, in order."""

    __slots__ = ("shard", "failures")

    def __init__(self, shard):
        self.shard = shard
        self.failures = []


class ShardSupervisor:
    """Runs shard tasks on an executor backend and survives the backend.

    One supervisor owns at most one backend at a time and may be reused
    across many :meth:`run` calls (the campaign reuses it across
    iterations so the pool-fork or worker-registration cost is paid
    once).  ``backend_factory`` selects the dispatch mechanics; the
    default builds a :class:`~repro.harness.executors.PoolExecutorBackend`
    over ``workers`` processes.  Call :meth:`close` — or use it as a
    context manager — when done.
    """

    def __init__(self, workers=1, *, shard_timeout=None,
                 max_retries=DEFAULT_MAX_RETRIES,
                 max_pool_rebuilds=DEFAULT_MAX_POOL_REBUILDS,
                 poll_seconds=0.05, telemetry=None,
                 backend_factory=None, stop_event=None):
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.workers = max(1, int(workers))
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.max_pool_rebuilds = max_pool_rebuilds
        self.poll_seconds = poll_seconds
        self.telemetry = telemetry if telemetry is not None else NullTelemetry()
        # Cooperative interruption (graceful drain / wall-clock budget):
        # when set, no new shard is dispatched, in-flight shards finish
        # and are journaled, then run() raises SupervisionInterrupted.
        self.stop_event = stop_event
        self._backend_factory = backend_factory
        self._backend = None
        self._last_stats = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        self._release_backend()

    def _ensure_backend(self):
        if self._backend is None:
            if self._backend_factory is not None:
                self._backend = self._backend_factory()
            else:
                self._backend = PoolExecutorBackend(
                    self.workers, shard_timeout=self.shard_timeout
                )
        return self._backend

    def _release_backend(self):
        if self._backend is None:
            return
        stats = getattr(self._backend, "stats", None)
        if stats is not None:
            self._last_stats = dict(stats())
        self._backend.shutdown()
        self._backend = None

    def backend_stats(self):
        """Supervision hook: the active backend's manifest summary."""
        if self._backend is not None:
            stats = getattr(self._backend, "stats", None)
            if stats is not None:
                return dict(stats())
        if self._last_stats is not None:
            return dict(self._last_stats)
        return {"backend": "pool", "workers": self.workers}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, shards, task, on_outcome=None):
        """Run ``task`` over every shard; never raises for worker faults.

        Returns a :class:`SupervisionReport`; completed outcomes are in
        ``report.outcomes`` keyed by shard index, and ``on_outcome`` (if
        given) is called in the parent as each one lands — the campaign
        journals through it.  The only exception a caller sees is
        :class:`SupervisionInterrupted`, raised after the in-flight
        round finishes when ``stop_event`` is set.
        """
        report = SupervisionReport()
        shards = list(shards)
        if not shards:
            return report
        if self._backend_factory is None and (
                self.workers <= 1 or len(shards) == 1):
            queue = deque(_Attempt(shard) for shard in shards)
            self._run_serial(queue, task, report, on_outcome)
            return report
        self._run_backend(shards, task, report, on_outcome)
        return report

    # ------------------------------------------------------------------
    # Backend mode
    # ------------------------------------------------------------------
    def _stopped(self):
        return self.stop_event is not None and self.stop_event.is_set()

    def _interrupt(self, report, remaining):
        self.telemetry.emit(
            "supervision_interrupted", remaining=remaining,
            completed=len(report.outcomes),
        )
        raise SupervisionInterrupted(report, remaining)

    def _run_backend(self, shards, task, report, on_outcome):
        backend = self._ensure_backend()
        pending = deque(_Attempt(shard) for shard in shards)
        probation = deque()
        inflight = {}
        queues = (pending, probation, inflight)
        while pending or probation or inflight:
            if self._stopped():
                # Graceful stop: dispatch nothing new, let the in-flight
                # round finish (journaled via on_outcome), then raise.
                if not inflight:
                    self._interrupt(report,
                                    len(pending) + len(probation))
                events = backend.drain(self.poll_seconds)
                self._apply_events(events, queues, report, on_outcome)
                continue
            if (report.pool_rebuilds > self.max_pool_rebuilds
                    and not inflight):
                # The backend keeps dying under us: stop trusting it and
                # finish in-process.
                report.serial_fallback = True
                self.telemetry.emit(
                    "serial_fallback",
                    remaining=len(probation) + len(pending),
                    pool_rebuilds=report.pool_rebuilds,
                )
                queue = deque(probation)
                queue.extend(pending)
                probation.clear()
                pending.clear()
                self._release_backend()
                self._run_serial(queue, task, report, on_outcome)
                return
            # Dispatch.  While probation is non-empty, shards run one at
            # a time: a solo failure identifies its culprit exactly.
            if probation:
                if not inflight:
                    self._submit(backend, probation.popleft(), task,
                                 queues, report, on_outcome)
            else:
                while pending and backend.can_accept():
                    self._submit(backend, pending.popleft(), task,
                                 queues, report, on_outcome)
            if not inflight:
                continue
            events = backend.drain(self.poll_seconds)
            self._apply_events(events, queues, report, on_outcome)

    def _submit(self, backend, attempt, task, queues, report, on_outcome):
        _pending, _probation, inflight = queues
        ticket = attempt.shard.index
        inflight[ticket] = attempt
        events = backend.submit_shard(ticket, attempt.shard, task)
        if events:
            self._apply_events(events, queues, report, on_outcome)
        if ticket in inflight and not events:
            self.telemetry.emit(
                "shard_dispatch",
                shard=attempt.shard.index,
                attempt=len(attempt.failures) + 1,
            )

    def _apply_events(self, events, queues, report, on_outcome):
        pending, probation, inflight = queues
        for event in events:
            if event.kind == "info":
                self.telemetry.emit(event.event, **event.fields)
                continue
            if event.kind == "backend_lost":
                report.pool_rebuilds += 1
                self.telemetry.emit("pool_rebuild", reason=event.reason,
                                    **event.fields)
                continue
            attempt = inflight.pop(event.ticket, None)
            if attempt is None:
                # A late event for a ticket already resolved (e.g. a
                # result that raced its worker's death): ignore.
                continue
            if event.kind == "done":
                self._complete(report, attempt, event.outcome,
                               event.seconds, on_outcome)
            elif event.kind == "failed":
                if not self._fail(report, attempt, event.reason):
                    self._requeue(attempt, event, pending, probation)
            elif event.kind == "requeue":
                self._requeue(attempt, event, pending, probation)

    @staticmethod
    def _requeue(attempt, event, pending, probation):
        queue = probation if event.probation else pending
        if event.front:
            queue.appendleft(attempt)
        else:
            queue.append(attempt)

    # ------------------------------------------------------------------
    # Serial mode (workers=1, single shard, or backend fallback)
    # ------------------------------------------------------------------
    def _run_serial(self, queue, task, report, on_outcome):
        while queue:
            if self._stopped():
                self._interrupt(report, len(queue))
            attempt = queue.popleft()
            started = time.monotonic()
            try:
                outcome = task(attempt.shard)
            except Exception as exception:  # noqa: BLE001 — supervision
                if not self._fail(report, attempt,
                                  f"crash: {exception!r}"):
                    queue.append(attempt)
                continue
            self._complete(report, attempt, outcome,
                           time.monotonic() - started, on_outcome)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _complete(self, report, attempt, outcome, seconds, on_outcome):
        report.outcomes[attempt.shard.index] = outcome
        event = {
            "shard": attempt.shard.index,
            "seconds": round(seconds, 6),
            "attempts": len(attempt.failures) + 1,
        }
        for counter in ("mis", "kns", "kcp", "faults_injected"):
            value = getattr(outcome, counter, None)
            if value is not None:
                event[counter] = value
        # Integrity protocol: surface per-shard contamination and reboot
        # counts in the event stream (the records themselves travel in
        # the outcome).
        for counter in ("contaminated_slots", "reboots"):
            value = getattr(outcome, counter, None)
            if value is not None:
                event[counter] = len(value)
        self.telemetry.emit("shard_done", **event)
        if on_outcome is not None:
            on_outcome(outcome)

    def _fail(self, report, attempt, reason):
        """Charge one failure; returns True when the shard is quarantined."""
        attempt.failures.append(reason)
        shard = attempt.shard
        if len(attempt.failures) > self.max_retries:
            quarantined = QuarantinedShard(
                shard_index=shard.index,
                first_slot=shard.first_slot,
                num_slots=len(shard.locations),
                fault_ids=tuple(
                    location.fault_id for location in shard.locations
                ),
                attempts=len(attempt.failures),
                failures=tuple(attempt.failures),
            )
            report.quarantined.append(quarantined)
            self.telemetry.emit(
                "shard_quarantine",
                shard=shard.index,
                first_slot=shard.first_slot,
                fault_ids=list(quarantined.fault_ids),
                failures=list(quarantined.failures),
            )
            return True
        report.retries += 1
        self.telemetry.emit(
            "shard_retry",
            shard=shard.index,
            reason=reason,
            attempt=len(attempt.failures),
        )
        return False
