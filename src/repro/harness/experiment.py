"""Experiment orchestration.

:class:`WebServerExperiment` reproduces the paper's experimental procedure
for one server/OS pair:

1. **Baseline** ("Max. Perf." in Table 4): workload only.
2. **Profile mode**: the injector is attached and does everything except
   the final code swap; comparing with the baseline measures
   intrusiveness.
3. **Injection runs**: the measured time is organized in slots (Fig. 4).
   During a slot one fault is active and the workload runs; between slots
   the workload pauses, the fault is removed, and the watchdog repairs the
   server if needed.  Three iterations, per SPECWeb99 rules.

``profile_servers`` implements the profiling phase of the methodology
(Section 3.3): run every benchmark target under the workload with the API
tracer attached and collect per-function usage.
"""

from dataclasses import dataclass, field

from repro.gswfit.activation import ActivationTracker
from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import MutantError
from repro.gswfit.scanner import scan_build
from repro.harness.machine import ServerMachine
from repro.harness.results import BenchmarkResult, InjectionIteration
from repro.harness.snapshot import (
    MachineSnapshot,
    snapshot_cache,
    snapshot_key,
)
from repro.harness.watchdog import Watchdog
from repro.ossim.builds import get_build
from repro.ossim.integrity import IntegrityAuditor
from repro.profiling.tracer import ApiCallTracer
from repro.specweb.metrics import MetricsPartial
from repro.webservers.runtime import WorkerState

__all__ = ["SlotRunResult", "WebServerExperiment", "profile_servers"]


@dataclass
class SlotRunResult:
    """Everything one slot walk produced, across machine epochs.

    A verified reboot splits the run into *segments* — each a
    ``(machine, windows)`` pair on its own simulated timeline.  Metrics
    merge across segments through :class:`MetricsPartial` (associative,
    slot-ordered), so a run with reboots reduces exactly like a
    campaign merging shards.
    """

    segments: list = field(default_factory=list)
    faults_injected: int = 0
    mis: int = 0
    kns: int = 0
    kcp: int = 0
    incidents: list = field(default_factory=list)
    runtime_stats: dict = field(default_factory=dict)
    # One record per slot whose post-removal audit found violations:
    # {"slot", "fault_id", "kinds", "violations", "rebooted"}.
    contaminated_slots: list = field(default_factory=list)
    # One record per verified reboot: {"after_slot", "verified"}.
    reboots: list = field(default_factory=list)
    integrity_enabled: bool = False
    audits_performed: int = 0
    # One record per injected slot when activation tracking is on:
    # {"slot", "fault_id", "hits", "first_hit", "truncated"} —
    # ``first_hit`` is sim-seconds from slot start (None if never hit).
    activations: list = field(default_factory=list)
    faults_activated: int = 0
    slots_truncated: int = 0
    truncated_seconds: float = 0.0
    activation_enabled: bool = False
    # Epoch-setup accounting (DESIGN.md §12): how each machine epoch
    # came up.  Diagnostic only — restored and booted epochs are
    # digest-identical by construction, so none of these may ever enter
    # the metrics digest.
    epochs_booted: int = 0
    epochs_restored: int = 0
    pristine_restarts: int = 0
    snapshot_enabled: bool = False

    def compute_partial(self, conformance_group):
        """Reduce every segment's windows to one mergeable partial."""
        partials = [
            machine.client.collector.compute_partial(
                windows, conformance_group=conformance_group
            )
            for machine, windows in self.segments
            if windows
        ]
        return MetricsPartial.merge(partials)

    def compute_metrics(self, num_connections, conformance_group):
        partial = self.compute_partial(conformance_group)
        return partial.to_metrics(num_connections)


class _Epoch:
    """One machine generation within a slot run (between reboots)."""

    __slots__ = ("machine", "injector", "watchdog", "auditor", "tracker",
                 "windows", "finished", "restored")

    def __init__(self, machine, injector, watchdog, auditor, tracker=None,
                 restored=False):
        self.machine = machine
        self.injector = injector
        self.watchdog = watchdog
        self.auditor = auditor
        self.tracker = tracker
        self.windows = []
        self.finished = False
        self.restored = restored


class WebServerExperiment:
    """One server/OS benchmarking campaign."""

    def __init__(self, config):
        self.config = config
        self.build = get_build(config.os_codename)

    # ------------------------------------------------------------------
    # Faultload preparation
    # ------------------------------------------------------------------
    def raw_faultload(self):
        """Scan the OS build (G-SWFIT step 1, before fine-tuning)."""
        return scan_build(
            self.build,
            include_internal=self.config.include_internal_functions,
        )

    def prepared_faultload(self, faultload=None):
        """Apply the config's sampling to a faultload (default: raw scan).

        Sampling is stratified per fault type and the result interleaved
        so truncated runs keep type diversity.  Preparation is
        idempotent: an already-prepared faultload (e.g. one a campaign
        prepared before fanning out its runs) is returned unchanged
        instead of being re-sampled.
        """
        if faultload is not None and getattr(faultload, "prepared", False):
            return faultload
        if faultload is None:
            faultload = self.raw_faultload()
        if self.config.fault_sample is not None:
            faultload = faultload.sample(
                self.config.fault_sample, seed=self.config.seed
            )
            faultload = faultload.interleave_types()
        faultload.prepared = True
        return faultload

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _boot_machine(self, iteration):
        machine = ServerMachine(self.config, iteration=iteration)
        if not machine.boot():
            raise RuntimeError(
                f"{self.config.server_name} failed to start on "
                f"{self.build.display_name} with a pristine OS"
            )
        return machine

    def _warm_up(self, machine):
        rules = self.config.rules
        machine.client.start()
        machine.run_for(rules.warmup_seconds + rules.rampup_seconds)

    def _measured_windows(self, start, duration, slot_seconds):
        # Window edges come from the slot index, not a running float sum:
        # accumulating ``t += slot_seconds`` drifts by an ulp per slot and
        # long baselines could gain or lose a whole window.
        count = int((duration + 1e-9) // slot_seconds)
        windows = [
            (start + i * slot_seconds, start + (i + 1) * slot_seconds)
            for i in range(count)
        ]
        if not windows:
            windows.append((start, start + duration))
        return windows

    def run_baseline(self, iteration=0):
        """Max-performance run: no injector attached."""
        machine = self._boot_machine(iteration)
        self._warm_up(machine)
        rules = self.config.rules
        start = machine.sim.now
        machine.run_for(rules.baseline_seconds)
        windows = self._measured_windows(
            start, rules.baseline_seconds, rules.slot_seconds
        )
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        return machine.client.collector.compute(
            windows, conformance_group=self.config.conformance_slots
        )

    def run_profile_mode(self, iteration=0, faultload=None):
        """Injector attached, no code changed (intrusiveness measurement)."""
        faultload = self.prepared_faultload(faultload)
        machine = self._boot_machine(iteration)
        machine.set_injector_attached(True)
        tracker = None
        if self.config.track_activation:
            # Attach a tracker even though no code is swapped: the
            # injector then prepares *probed* mutants, so profile mode
            # warms the same cache entries the live run will hit.
            tracker = ActivationTracker(clock=machine._now)
            machine.attach_activation(tracker)
        injector = FaultInjector(
            os_instances=[machine.os_instance], profile_mode=True,
            activation_tracker=tracker,
        )
        self._warm_up(machine)
        rules = self.config.rules
        start = machine.sim.now
        windows = self._measured_windows(
            start, rules.baseline_seconds, rules.slot_seconds
        )
        # The injector does all its per-slot work (mutant preparation,
        # monitoring) against consecutive faultload entries, exactly as in
        # a live run — minus the final code swap.  Once the faultload has
        # been covered once, remaining windows run without preparation: a
        # live run never injects a slot twice either, and wrapping around
        # would inflate injection_count with duplicate preparations and
        # skew the Table 4 intrusiveness measurement.
        for index, (_w_start, w_end) in enumerate(windows):
            if index < len(faultload):
                location = faultload[index]
                try:
                    injector.inject(location)
                except MutantError:
                    pass
            machine.sim.run_until(w_end)
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        return machine.client.collector.compute(
            windows, conformance_group=self.config.conformance_slots
        )

    def _make_injector(self, machine, tracker, mutant_cache_dir):
        return FaultInjector(
            os_instances=[machine.os_instance],
            mutant_cache_dir=mutant_cache_dir,
            profile_mode=not self.config.inject_faults,
            activation_tracker=tracker,
        )

    def _make_watchdog(self, machine):
        config = self.config
        return Watchdog(
            machine.sim,
            machine.runtime,
            poll_seconds=config.watchdog_poll_seconds,
            unresponsive_after=config.unresponsive_after_seconds,
            restart_grace=config.restart_grace_seconds,
            max_restart_attempts=config.watchdog_max_restart_attempts,
        )

    def _bring_up(self, iteration, mutant_cache_dir):
        """Boot or restore one machine epoch, ready to run.

        Deterministic for a given ``iteration``: the replacement machine
        built by a verified reboot is seeded exactly like the original.
        With ``config.snapshot_epochs`` the post-warm-up state is
        captured once per ``(config, iteration)`` and every later epoch
        is a restore of that image — digest-identical to a fresh boot
        because boot + warm-up is itself deterministic (DESIGN.md §12).
        """
        if self.config.snapshot_epochs:
            epoch = self._restore_epoch(iteration, mutant_cache_dir)
            if epoch is not None:
                return epoch
        return self._boot_epoch(iteration, mutant_cache_dir)

    def _boot_epoch(self, iteration, mutant_cache_dir):
        """Full boot + warm-up; captures a snapshot when enabled.

        Epoch assembly order is load-bearing: the watchdog starts (its
        first poll event enters the queue) only *after* the auditor
        reference and the snapshot are taken, so a restored image plus
        a freshly started watchdog reproduces the booted event queue
        exactly — same poll time, same event sequence numbers.
        """
        config = self.config
        machine = self._boot_machine(iteration)
        machine.set_injector_attached(True)
        tracker = None
        if config.track_activation:
            tracker = ActivationTracker(clock=machine._now)
            machine.attach_activation(tracker)
        self._warm_up(machine)
        auditor = None
        if config.integrity_audit:
            auditor = IntegrityAuditor(machine.kernel)
            auditor.snapshot(machine.runtime.ctx)
        if config.snapshot_epochs:
            snapshot = MachineSnapshot.capture(
                snapshot_key(config, iteration), machine, auditor
            )
            if auditor is not None:
                # Capture-time audit, taken mid-workload: requests are
                # in flight, so it may legitimately report violations
                # (e.g. transient allocations above the startup
                # footprint).  It is the restore-verify comparand, not
                # a contamination record.  Audited after the image,
                # and marked internal so it never shows up in the
                # experiment's ``audits_performed`` count.
                snapshot.reference = auditor.audit(
                    machine.runtime.ctx, self._live_threads(machine),
                    internal=True,
                ).to_dict()
            snapshot_cache().put(snapshot)
        injector = self._make_injector(machine, tracker, mutant_cache_dir)
        watchdog = self._make_watchdog(machine)
        watchdog.start()
        return _Epoch(machine, injector, watchdog, auditor, tracker=tracker)

    def _restore_epoch(self, iteration, mutant_cache_dir):
        """Restore a captured epoch; None = no usable snapshot.

        Restore-verify protocol: the restored machine is re-audited and
        must reproduce the capture-time report byte-for-byte (identical
        sim time, identical violation list).  Any drift discards the
        snapshot and the caller falls back to a full boot.
        """
        config = self.config
        key = snapshot_key(config, iteration)
        snapshot = snapshot_cache().get(key)
        if snapshot is None:
            return None
        machine, auditor = snapshot.restore()
        if auditor is not None:
            verify = auditor.audit(
                machine.runtime.ctx, self._live_threads(machine),
                internal=True,
            )
            if verify.to_dict() != snapshot.reference:
                snapshot_cache().discard(key)
                return None
        tracker = machine.os_instance.activation
        injector = self._make_injector(machine, tracker, mutant_cache_dir)
        watchdog = self._make_watchdog(machine)
        watchdog.start()
        return _Epoch(machine, injector, watchdog, auditor,
                      tracker=tracker, restored=True)

    def _note_epoch(self, result, epoch):
        if epoch.restored:
            result.epochs_restored += 1
        else:
            result.epochs_booted += 1
        return epoch

    @staticmethod
    def _live_threads(machine):
        """Thread ids that can still run: main + non-hung workers."""
        ctx = machine.runtime.ctx
        threads = set()
        if ctx is None or ctx.terminated:
            return threads
        threads.add(f"{ctx.pid}:main")
        for worker in machine.runtime.workers:
            if worker.state != WorkerState.HUNG:
                threads.add(worker.thread_id)
        return threads

    def _quiesce_epoch(self, result, epoch, rules):
        """Retire one machine epoch and fold its counters into result.

        Idempotent: the reboot path and the finally block may both reach
        the same epoch when a reboot itself fails.
        """
        if epoch.finished:
            return
        epoch.finished = True
        epoch.injector.restore_all()
        epoch.machine.client.pause()
        epoch.machine.run_for(rules.rampdown_seconds)
        epoch.watchdog.stop()
        result.mis += epoch.watchdog.mis
        result.kns += epoch.watchdog.kns
        result.kcp += epoch.watchdog.kcp
        result.incidents.extend(epoch.watchdog.incidents)
        for key, value in vars(epoch.machine.runtime.stats).items():
            result.runtime_stats[key] = (
                result.runtime_stats.get(key, 0) + value
            )
        if epoch.auditor is not None:
            result.audits_performed += epoch.auditor.audits_performed
        result.segments.append((epoch.machine, epoch.windows))

    def _activation_deadline(self, location, slot_seconds):
        """Seconds from slot start after which a hit-less slot truncates.

        Uses the campaign-derived deadline table when present (observed
        functions get their profiled window, unobserved ones the floor);
        without a table, falls back to the grace fraction.  Clamped to
        the slot, so a deadline at/over ``slot_seconds`` means "never
        truncate".
        """
        config = self.config
        deadlines = config.activation_deadlines
        if deadlines:
            deadline = deadlines.get(location.function)
            if deadline is None:
                deadline = slot_seconds * config.activation_floor_fraction
        else:
            deadline = slot_seconds * config.activation_grace_fraction
        return max(0.0, min(float(deadline), slot_seconds))

    def run_slots(self, faultload, iteration=0, mutant_cache_dir=None,
                  first_slot=0):
        """Boot a machine and walk ``faultload`` slot by slot (Fig. 4).

        Returns a :class:`SlotRunResult` with every machine epoch
        quiesced (faults detached, client paused, rampdown elapsed,
        watchdog stopped) — the raw state both :meth:`run_injection` and
        the parallel campaign's shard workers reduce to metrics.  The
        faultload is injected as given (no preparation).  Mutants come
        from the precompilation cache; ``mutant_cache_dir`` additionally
        enables its on-disk tier so separate worker processes share one
        compilation pass.

        Containment protocol (DESIGN.md §10): with integrity auditing
        enabled, each slot's injection-free gap ends with a state audit.
        A violating slot is recorded as contaminated and — while the
        reboot budget lasts — the machine is retired and a verified
        replacement brought up (same seeds, re-warmed, re-audited
        clean) before the next slot.  ``first_slot`` offsets slot
        numbering so shard-local records carry campaign-global indices.

        Pristine-slot mode (``config.pristine_slots``, DESIGN.md §12):
        the machine is additionally retired and replaced after *every*
        slot — the paper's Fig. 4 restart-per-experiment protocol,
        affordable because replacements restore from the epoch snapshot.
        The budgeted contamination reboot is subsumed (every slot gets a
        fresh machine anyway), so contaminated slots are recorded but
        never charged against the reboot budget.
        """
        config = self.config
        rules = config.rules
        track = config.track_activation and config.inject_faults
        adaptive = config.adaptive_slots and track
        pristine = config.pristine_slots
        result = SlotRunResult(
            integrity_enabled=config.integrity_audit,
            activation_enabled=track,
            snapshot_enabled=config.snapshot_epochs,
        )
        epoch = self._note_epoch(
            result, self._bring_up(iteration, mutant_cache_dir)
        )
        try:
            for index, location in enumerate(faultload):
                machine = epoch.machine
                slot = first_slot + index
                slot_start = machine.sim.now
                try:
                    epoch.injector.inject(location)
                    result.faults_injected += 1
                except MutantError:
                    # Unresolvable site (stale faultload): skip the slot.
                    continue
                # Adaptive scheduling: split the slot at the activation
                # deadline.  ``run_until`` partitions the timeline, so
                # back-to-back calls are equivalent to one full-slot call
                # — a non-truncated adaptive slot reproduces the fixed
                # schedule exactly.
                truncated = False
                slot_len = rules.slot_seconds
                if adaptive:
                    deadline = self._activation_deadline(
                        location, rules.slot_seconds
                    )
                    if deadline < rules.slot_seconds - 1e-9:
                        machine.sim.run_until(slot_start + deadline)
                        if epoch.tracker.hits(location.fault_id) == 0:
                            truncated = True
                            slot_len = deadline
                        else:
                            machine.sim.run_until(
                                slot_start + rules.slot_seconds
                            )
                    else:
                        machine.sim.run_until(slot_start + rules.slot_seconds)
                else:
                    machine.sim.run_until(slot_start + rules.slot_seconds)
                epoch.injector.restore(location)
                epoch.windows.append((slot_start, slot_start + slot_len))
                if track and epoch.tracker is not None:
                    # Harvest after restore: the probe cannot fire once
                    # the original code is swapped back.
                    record = epoch.tracker.take(location.fault_id)
                    hits = record.hits if record is not None else 0
                    first_hit = None
                    if record is not None and record.first_hit is not None:
                        first_hit = round(record.first_hit - slot_start, 6)
                    result.activations.append({
                        "slot": slot,
                        "fault_id": location.fault_id,
                        "hits": hits,
                        "first_hit": first_hit,
                        "truncated": truncated,
                    })
                    if hits:
                        result.faults_activated += 1
                    if truncated:
                        result.slots_truncated += 1
                        result.truncated_seconds += round(
                            rules.slot_seconds - slot_len, 6
                        )
                # Injection-free gap: workload paused, watchdog repairs.
                machine.client.pause()
                machine.run_for(rules.slot_gap_seconds)
                epoch.watchdog.check_now(retry_exhausted=True)
                if epoch.auditor is not None:
                    report = epoch.auditor.audit(
                        machine.runtime.ctx, self._live_threads(machine)
                    )
                    if not report.clean:
                        record = {
                            "fault_id": location.fault_id,
                            "kinds": report.kinds(),
                            "rebooted": False,
                            "slot": slot,
                            "violations": len(report.violations),
                        }
                        result.contaminated_slots.append(record)
                        if (not pristine
                                and len(result.reboots)
                                < config.reboot_budget):
                            # Verified reboot: retire the contaminated
                            # machine, bring up a deterministic
                            # replacement, prove it clean, carry on at
                            # the next slot.
                            self._quiesce_epoch(result, epoch, rules)
                            epoch = self._note_epoch(
                                result,
                                self._bring_up(iteration, mutant_cache_dir),
                            )
                            verify = epoch.auditor.audit(
                                epoch.machine.runtime.ctx,
                                self._live_threads(epoch.machine),
                            )
                            record["rebooted"] = True
                            result.reboots.append({
                                "after_slot": slot,
                                "verified": verify.clean,
                            })
                            continue
                        # Budget exhausted: degrade gracefully — keep
                        # running, keep flagging contaminated slots.
                if pristine and index < len(faultload) - 1:
                    # Fig. 4 isolation: every slot starts on a fresh
                    # machine.  The final slot skips the swap — the
                    # finally block quiesces the last epoch anyway.
                    self._quiesce_epoch(result, epoch, rules)
                    epoch = self._note_epoch(
                        result, self._bring_up(iteration, mutant_cache_dir)
                    )
                    result.pristine_restarts += 1
                    continue
                machine.client.resume()
        finally:
            # Even if a slot raises, leave the machine quiesced: faults
            # detached, client paused, watchdog no longer polling.
            self._quiesce_epoch(result, epoch, rules)
        return result

    def run_injection(self, faultload=None, iteration=0):
        """One full pass over the faultload (one Table 5 iteration)."""
        faultload = self.prepared_faultload(faultload)
        run = self.run_slots(faultload, iteration=iteration)
        metrics = run.compute_metrics(
            self.config.client.connections, self.config.conformance_slots
        )
        return InjectionIteration(
            iteration=iteration,
            metrics=metrics,
            mis=run.mis,
            kns=run.kns,
            kcp=run.kcp,
            faults_injected=run.faults_injected,
            runtime_stats=dict(run.runtime_stats),
            incidents=list(run.incidents),
            contaminated_slots=list(run.contaminated_slots),
            reboots=list(run.reboots),
            integrity_enabled=run.integrity_enabled,
            activations=list(run.activations),
            faults_activated=run.faults_activated,
            slots_truncated=run.slots_truncated,
            truncated_seconds=run.truncated_seconds,
            activation_enabled=run.activation_enabled,
            epochs_booted=run.epochs_booted,
            epochs_restored=run.epochs_restored,
            pristine_restarts=run.pristine_restarts,
            snapshot_enabled=run.snapshot_enabled,
        )

    # ------------------------------------------------------------------
    # Full campaign
    # ------------------------------------------------------------------
    def run_campaign(self, faultload=None, include_baseline=True,
                     include_profile_mode=True):
        """Baseline + profile mode + the configured injection iterations."""
        faultload = self.prepared_faultload(faultload)
        result = BenchmarkResult(
            server_name=self.config.server_name,
            os_codename=self.config.os_codename,
            os_display=self.build.display_name,
        )
        if include_baseline:
            result.baseline = self.run_baseline(iteration=0)
        if include_profile_mode:
            result.profile_mode = self.run_profile_mode(
                iteration=0, faultload=faultload
            )
        for iteration in range(1, self.config.rules.iterations + 1):
            result.add_iteration(
                self.run_injection(faultload, iteration=iteration)
            )
        return result


def profile_servers(config, server_names, seconds=None):
    """Profiling phase: trace each server's API usage under the workload.

    Returns ``{server_name: ApiCallTracer}`` ready for
    :class:`~repro.profiling.usage.UsageTable`.
    """
    tracers = {}
    duration = seconds or config.rules.baseline_seconds
    for server_name in server_names:
        server_config = config.with_target(server_name=server_name)
        machine = ServerMachine(server_config, iteration=0)
        tracer = ApiCallTracer(label=server_name)
        machine.attach_tracer(tracer)
        if not machine.boot():
            raise RuntimeError(f"{server_name} failed to start")
        machine.client.start()
        machine.run_for(
            server_config.rules.warmup_seconds + duration
        )
        machine.client.pause()
        tracers[server_name] = tracer
    return tracers
