"""Experiment orchestration.

:class:`WebServerExperiment` reproduces the paper's experimental procedure
for one server/OS pair:

1. **Baseline** ("Max. Perf." in Table 4): workload only.
2. **Profile mode**: the injector is attached and does everything except
   the final code swap; comparing with the baseline measures
   intrusiveness.
3. **Injection runs**: the measured time is organized in slots (Fig. 4).
   During a slot one fault is active and the workload runs; between slots
   the workload pauses, the fault is removed, and the watchdog repairs the
   server if needed.  Three iterations, per SPECWeb99 rules.

``profile_servers`` implements the profiling phase of the methodology
(Section 3.3): run every benchmark target under the workload with the API
tracer attached and collect per-function usage.
"""

from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import MutantError
from repro.gswfit.scanner import scan_build
from repro.harness.machine import ServerMachine
from repro.harness.results import BenchmarkResult, InjectionIteration
from repro.harness.watchdog import Watchdog
from repro.ossim.builds import get_build
from repro.profiling.tracer import ApiCallTracer

__all__ = ["WebServerExperiment", "profile_servers"]


class WebServerExperiment:
    """One server/OS benchmarking campaign."""

    def __init__(self, config):
        self.config = config
        self.build = get_build(config.os_codename)

    # ------------------------------------------------------------------
    # Faultload preparation
    # ------------------------------------------------------------------
    def raw_faultload(self):
        """Scan the OS build (G-SWFIT step 1, before fine-tuning)."""
        return scan_build(
            self.build,
            include_internal=self.config.include_internal_functions,
        )

    def prepared_faultload(self, faultload=None):
        """Apply the config's sampling to a faultload (default: raw scan).

        Sampling is stratified per fault type and the result interleaved
        so truncated runs keep type diversity.  Preparation is
        idempotent: an already-prepared faultload (e.g. one a campaign
        prepared before fanning out its runs) is returned unchanged
        instead of being re-sampled.
        """
        if faultload is not None and getattr(faultload, "prepared", False):
            return faultload
        if faultload is None:
            faultload = self.raw_faultload()
        if self.config.fault_sample is not None:
            faultload = faultload.sample(
                self.config.fault_sample, seed=self.config.seed
            )
            faultload = faultload.interleave_types()
        faultload.prepared = True
        return faultload

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _boot_machine(self, iteration):
        machine = ServerMachine(self.config, iteration=iteration)
        if not machine.boot():
            raise RuntimeError(
                f"{self.config.server_name} failed to start on "
                f"{self.build.display_name} with a pristine OS"
            )
        return machine

    def _warm_up(self, machine):
        rules = self.config.rules
        machine.client.start()
        machine.run_for(rules.warmup_seconds + rules.rampup_seconds)

    def _measured_windows(self, start, duration, slot_seconds):
        # Window edges come from the slot index, not a running float sum:
        # accumulating ``t += slot_seconds`` drifts by an ulp per slot and
        # long baselines could gain or lose a whole window.
        count = int((duration + 1e-9) // slot_seconds)
        windows = [
            (start + i * slot_seconds, start + (i + 1) * slot_seconds)
            for i in range(count)
        ]
        if not windows:
            windows.append((start, start + duration))
        return windows

    def run_baseline(self, iteration=0):
        """Max-performance run: no injector attached."""
        machine = self._boot_machine(iteration)
        self._warm_up(machine)
        rules = self.config.rules
        start = machine.sim.now
        machine.run_for(rules.baseline_seconds)
        windows = self._measured_windows(
            start, rules.baseline_seconds, rules.slot_seconds
        )
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        return machine.client.collector.compute(
            windows, conformance_group=self.config.conformance_slots
        )

    def run_profile_mode(self, iteration=0, faultload=None):
        """Injector attached, no code changed (intrusiveness measurement)."""
        faultload = self.prepared_faultload(faultload)
        machine = self._boot_machine(iteration)
        machine.set_injector_attached(True)
        injector = FaultInjector(
            os_instances=[machine.os_instance], profile_mode=True
        )
        self._warm_up(machine)
        rules = self.config.rules
        start = machine.sim.now
        windows = self._measured_windows(
            start, rules.baseline_seconds, rules.slot_seconds
        )
        # The injector does all its per-slot work (mutant preparation,
        # monitoring) against consecutive faultload entries, exactly as in
        # a live run — minus the final code swap.
        for index, (_w_start, w_end) in enumerate(windows):
            if len(faultload) > 0:
                location = faultload[index % len(faultload)]
                try:
                    injector.inject(location)
                except MutantError:
                    pass
            machine.sim.run_until(w_end)
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        return machine.client.collector.compute(
            windows, conformance_group=self.config.conformance_slots
        )

    def run_slots(self, faultload, iteration=0, mutant_cache_dir=None):
        """Boot a machine and walk ``faultload`` slot by slot (Fig. 4).

        Returns ``(machine, watchdog, windows, faults_injected)`` with
        the client paused, the rampdown elapsed, and the watchdog
        stopped — the raw state both :meth:`run_injection` and the
        parallel campaign's shard workers reduce to metrics.  The
        faultload is injected as given (no preparation).  Mutants come
        from the precompilation cache; ``mutant_cache_dir`` additionally
        enables its on-disk tier so separate worker processes share one
        compilation pass.
        """
        config = self.config
        rules = config.rules
        machine = self._boot_machine(iteration)
        machine.set_injector_attached(True)
        injector = FaultInjector(
            os_instances=[machine.os_instance],
            mutant_cache_dir=mutant_cache_dir,
        )
        watchdog = Watchdog(
            machine.sim,
            machine.runtime,
            poll_seconds=config.watchdog_poll_seconds,
            unresponsive_after=config.unresponsive_after_seconds,
            restart_grace=config.restart_grace_seconds,
        )
        self._warm_up(machine)
        watchdog.start()
        windows = []
        faults_injected = 0
        try:
            for location in faultload:
                slot_start = machine.sim.now
                try:
                    injector.inject(location)
                    faults_injected += 1
                except MutantError:
                    # Unresolvable site (stale faultload): skip the slot.
                    continue
                machine.sim.run_until(slot_start + rules.slot_seconds)
                injector.restore(location)
                windows.append(
                    (slot_start, slot_start + rules.slot_seconds)
                )
                # Injection-free gap: workload paused, watchdog repairs.
                machine.client.pause()
                machine.run_for(rules.slot_gap_seconds)
                watchdog.check_now()
                machine.client.resume()
        finally:
            # Even if a slot raises, leave the machine quiesced: faults
            # detached, client paused, watchdog no longer polling.
            injector.restore_all()
            machine.client.pause()
            machine.run_for(rules.rampdown_seconds)
            watchdog.stop()
        return machine, watchdog, windows, faults_injected

    def run_injection(self, faultload=None, iteration=0):
        """One full pass over the faultload (one Table 5 iteration)."""
        faultload = self.prepared_faultload(faultload)
        machine, watchdog, windows, faults_injected = self.run_slots(
            faultload, iteration=iteration
        )
        metrics = machine.client.collector.compute(
            windows, conformance_group=self.config.conformance_slots
        )
        return InjectionIteration(
            iteration=iteration,
            metrics=metrics,
            mis=watchdog.mis,
            kns=watchdog.kns,
            kcp=watchdog.kcp,
            faults_injected=faults_injected,
            runtime_stats=vars(machine.runtime.stats).copy(),
            incidents=list(watchdog.incidents),
        )

    # ------------------------------------------------------------------
    # Full campaign
    # ------------------------------------------------------------------
    def run_campaign(self, faultload=None, include_baseline=True,
                     include_profile_mode=True):
        """Baseline + profile mode + the configured injection iterations."""
        faultload = self.prepared_faultload(faultload)
        result = BenchmarkResult(
            server_name=self.config.server_name,
            os_codename=self.config.os_codename,
            os_display=self.build.display_name,
        )
        if include_baseline:
            result.baseline = self.run_baseline(iteration=0)
        if include_profile_mode:
            result.profile_mode = self.run_profile_mode(
                iteration=0, faultload=faultload
            )
        for iteration in range(1, self.config.rules.iterations + 1):
            result.add_iteration(
                self.run_injection(faultload, iteration=iteration)
            )
        return result


def profile_servers(config, server_names, seconds=None):
    """Profiling phase: trace each server's API usage under the workload.

    Returns ``{server_name: ApiCallTracer}`` ready for
    :class:`~repro.profiling.usage.UsageTable`.
    """
    tracers = {}
    duration = seconds or config.rules.baseline_seconds
    for server_name in server_names:
        server_config = config.with_target(server_name=server_name)
        machine = ServerMachine(server_config, iteration=0)
        tracer = ApiCallTracer(label=server_name)
        machine.attach_tracer(tracer)
        if not machine.boot():
            raise RuntimeError(f"{server_name} failed to start")
        machine.client.start()
        machine.run_for(
            server_config.rules.warmup_seconds + duration
        )
        machine.client.pause()
        tracers[server_name] = tracer
    return tracers
