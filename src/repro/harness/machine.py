"""The System Under Benchmark: one server machine, fully assembled.

A :class:`ServerMachine` is the paper's SUB: the simulated OS build booted
on a machine kernel, the fileset and the server's configuration/log files
materialized in the file system, the web server deployed under its
runtime, and the client-side transport wired up.  The benchmark target is
the web server; the fault injection target is the OS the machine booted.
"""

from repro.ossim.builds import get_build
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.sim.kernel import Simulator
from repro.specweb.client import SpecWebClient
from repro.specweb.fileset import SpecWebFileset
from repro.webservers.registry import create_server
from repro.webservers.runtime import ServerRuntime

__all__ = ["ServerMachine"]

_CONFIG_FILE_BYTES = 1536
_MIME_FILE_BYTES = 840


class ServerMachine:
    """One deployed server/OS combination plus its client."""

    def __init__(self, config, iteration=0):
        self.config = config
        self.iteration = iteration
        self.sim = Simulator(seed=config.iteration_seed(iteration))
        self.kernel = SimKernel(time_source=self._now)
        self.build = get_build(config.os_codename)
        self.os_instance = OsInstance(self.build, self.kernel)
        self.fileset = SpecWebFileset(
            directories=config.fileset_directories
        )
        self.server = create_server(config.server_name)
        self.runtime = ServerRuntime(
            self.server,
            self.os_instance,
            self.sim,
            cpu_hz=config.cpu_hz,
            operation_budget=config.operation_budget_cycles,
        )
        self.client = SpecWebClient(
            self.sim,
            self.runtime.deliver,
            self.fileset,
            config=config.client,
            rng=self.sim.rng_for("client", iteration),
        )
        self._environment_ready = False

    def _now(self):
        return self.sim.now

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def setup_environment(self):
        """Materialize the fileset, configs and log directories.

        Only the deployed server's files are created: dead config files
        for the other three servers would bloat every machine snapshot
        and integrity baseline with state nothing ever reads.  The mime
        map is materialized only for servers that load one — it must
        exist with its real size, or the server's open-always fallback
        would silently create an empty one and change behaviour.
        """
        if self._environment_ready:
            return
        vfs = self.kernel.vfs
        self.fileset.populate(vfs)
        vfs.mkdir("/etc", parents=True)
        vfs.mkdir("/logs", parents=True)
        vfs.mkdir("/postlog", parents=True)
        vfs.create_file(self.server.config_path, size=_CONFIG_FILE_BYTES)
        if self.server.uses_mime_map:
            vfs.create_file(
                f"/etc/{self.server.name}.mime", size=_MIME_FILE_BYTES
            )
        self._environment_ready = True

    def boot(self):
        """Set up the environment and start the server; returns success."""
        self.setup_environment()
        return self.runtime.start()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_for(self, seconds):
        """Advance the simulation by ``seconds``."""
        self.sim.run_until(self.sim.now + seconds)

    def attach_tracer(self, tracer):
        self.os_instance.attach_tracer(tracer)

    def attach_activation(self, tracker):
        self.os_instance.attach_activation(tracker)

    def set_injector_attached(self, attached):
        """Model the injector competing for machine CPU (Table 4)."""
        if attached:
            self.runtime.cpu_scale = 1.0 - self.config.injector_cpu_fraction
        else:
            self.runtime.cpu_scale = 1.0

    def __repr__(self):
        return (
            f"ServerMachine({self.config.server_name} on "
            f"{self.build.display_name}, iteration={self.iteration})"
        )
