"""OLTP case study — the methodology applied to a second domain.

The paper's abstract and conclusion state that the faultload methodology
"is not tied to any specific software vendor or platform [and] can be
used to generate faultloads for the evaluation of any software product
such as OLTP systems".  This package demonstrates exactly that: the same
OS builds, the same G-SWFIT faultloads and the same slot/watchdog harness
benchmark two *transactional database engines* instead of web servers.

* :class:`~repro.oltp.engines.WalnutDb` — a careful engine: write-ahead
  log, commit lock, periodic checkpoints, WAL replay on startup,
  supervised by a master (the "Apache" of the pair);
* :class:`~repro.oltp.engines.BreezyDb` — a fast-and-loose engine:
  write-back caching with no WAL, acknowledgements before durability,
  unchecked writes, unsupervised (the "Abyss");
* :class:`~repro.oltp.workload.OltpClient` — a TPC-style terminal
  driver that additionally audits **integrity**: it keeps the ledger of
  acknowledged transfers and counts durability violations when a
  post-recovery balance contradicts an acknowledged transaction.

``examples/oltp_benchmark.py`` and
``benchmarks/test_oltp_case_study.py`` run the comparison.
"""

from repro.oltp.engines import BreezyDb, WalnutDb, create_engine
from repro.oltp.workload import (
    OltpClient,
    OltpClientConfig,
    OltpMetrics,
    Transaction,
    TxnResult,
)
from repro.oltp.experiment import OltpExperiment, OltpMachine

__all__ = [
    "BreezyDb",
    "OltpClient",
    "OltpClientConfig",
    "OltpExperiment",
    "OltpMachine",
    "OltpMetrics",
    "Transaction",
    "TxnResult",
    "WalnutDb",
    "create_engine",
]
