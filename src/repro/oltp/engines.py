"""Two transactional database engines (the OLTP benchmark targets).

Both engines satisfy the same duck-typed contract the web servers do
(``startup(ctx)`` / ``handle(ctx, request)`` plus the supervision policy
attributes), so :class:`~repro.webservers.runtime.ServerRuntime`, the
watchdog and the slot harness apply unchanged.  All persistence flows
through the OS API — including the new scatter/record channel
(``NtWriteFile(..., record=...)`` / ``NtQueryFileRecords``) — so the
G-SWFIT faultload reaches every byte the engines consider durable.
"""

from repro.ossim.status import NtStatus
from repro.oltp.workload import TxnResult
from repro.webservers.base import ServerStartupError

__all__ = ["BaseDbEngine", "BreezyDb", "WalnutDb", "create_engine"]

_OPEN_ALWAYS = 4
_FILE_BEGIN = 0
_FILE_END = 2

RECORD_BYTES = 64
INITIAL_BALANCE = 1_000


class DbStartupError(ServerStartupError):
    """The engine could not bring its storage up.

    Subclasses :class:`ServerStartupError` so the shared process runtime
    treats a failed database startup exactly like a failed server start.
    """


class BaseDbEngine:
    """Shared skeleton: files, account table, request dispatch."""

    name = "basedb"
    version = "0.0"
    # Supervision-policy attributes (the ServerRuntime contract).
    worker_count = 2
    self_restart = False
    restart_delay = 0.5
    max_respawn_burst = 3
    crash_burst_limit = 3
    crash_burst_window = 4.0
    backlog = 64
    app_overhead_cycles = 1_500_000

    accounts = 200

    def __init__(self):
        self.data_path = f"/db/{self.name}/data.tbl"
        self.reset_process_state()

    def reset_process_state(self):
        self.table = {}
        self.data_handle = 0
        self.transactions_done = 0

    # ------------------------------------------------------------------
    # Shared storage helpers (all via the OS API)
    # ------------------------------------------------------------------
    def _open(self, ctx, path):
        handle = ctx.api.CreateFileW(path, "rw", _OPEN_ALWAYS)
        if handle == 0:
            raise DbStartupError(f"cannot open {path}")
        return handle

    def _load_table(self, ctx, handle):
        """Load the newest checkpoint records; None when unreadable."""
        size = ctx.api.GetFileSize(handle)
        if size < 0:
            return None
        status, records = ctx.api.NtQueryFileRecords(handle, 0, size)
        if status != NtStatus.SUCCESS or records is None:
            return None
        table = {}
        for _offset, record in records:
            if record[0] == "acct":
                table[record[1]] = record[2]
        return table

    def _write_account(self, ctx, handle, account, balance):
        status, written = ctx.api.NtWriteFile(
            handle, RECORD_BYTES, account * RECORD_BYTES,
            ("acct", account, balance),
        )
        return status == NtStatus.SUCCESS and written == RECORD_BYTES

    def _initialize_accounts(self, ctx):
        self.table = {
            account: INITIAL_BALANCE for account in range(self.accounts)
        }
        for account, balance in self.table.items():
            if not self._write_account(
                ctx, self.data_handle, account, balance
            ):
                raise DbStartupError("cannot initialize account table")

    # ------------------------------------------------------------------
    # Request dispatch (ServerRuntime contract)
    # ------------------------------------------------------------------
    def handle(self, ctx, request):
        self.transactions_done += 1
        if request.kind == "transfer":
            return self.do_transfer(ctx, request)
        if request.kind == "balance":
            return self.do_balance(ctx, request)
        if request.kind == "scan":
            return self.do_scan(ctx, request)
        return TxnResult(False, detail=f"unknown kind {request.kind!r}")

    def do_balance(self, ctx, request):
        ctx.charge(40_000)
        balance = self.table.get(request.account_from)
        if balance is None:
            return TxnResult(False, detail="no such account")
        return TxnResult(True, value=balance)

    def do_scan(self, ctx, request):
        ctx.charge(25_000 * min(len(self.table), 64))
        total = sum(self.table.values())
        return TxnResult(True, value=total)

    def do_transfer(self, ctx, request):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}/{self.version}>"


class WalnutDb(BaseDbEngine):
    """The careful engine: WAL, commit lock, checkpoints, recovery.

    A transfer is acknowledged only after its WAL record is durable; a
    checkpoint every ``CHECKPOINT_PERIOD`` commits rewrites the account
    table and truncates the log.  On startup the engine loads the newest
    checkpoint and replays the WAL — so a crash loses nothing that was
    acknowledged, which is exactly what the client's integrity audit
    checks.
    """

    name = "walnut"
    version = "2.1"
    worker_count = 4
    self_restart = True
    restart_delay = 0.4
    backlog = 96
    app_overhead_cycles = 2_200_000

    CHECKPOINT_PERIOD = 64

    def __init__(self):
        super().__init__()
        self.wal_path = f"/db/{self.name}/wal.log"

    def reset_process_state(self):
        super().reset_process_state()
        self.wal_handle = 0
        self.commits_since_checkpoint = 0

    def startup(self, ctx):
        self.data_handle = self._open(ctx, self.data_path)
        self.wal_handle = self._open(ctx, self.wal_path)
        table = self._load_table(ctx, self.data_handle)
        if table is None:
            raise DbStartupError("checkpoint unreadable")
        if table:
            self.table = table
        else:
            self._initialize_accounts(ctx)
        self._replay_wal(ctx)

    def _replay_wal(self, ctx):
        size = ctx.api.GetFileSize(self.wal_handle)
        if size < 0:
            raise DbStartupError("WAL unreadable")
        status, records = ctx.api.NtQueryFileRecords(
            self.wal_handle, 0, size
        )
        if status != NtStatus.SUCCESS or records is None:
            raise DbStartupError("WAL scan failed")
        for _offset, record in records:
            if record[0] != "txn":
                continue
            _tag, _txn_id, source, target, amount = record
            if source in self.table and target in self.table:
                self.table[source] -= amount
                self.table[target] += amount

    def do_transfer(self, ctx, request):
        api = ctx.api
        source = request.account_from
        target = request.account_to
        if source not in self.table or target not in self.table:
            return TxnResult(False, detail="no such account")
        api.RtlEnterCriticalSection("walnut.commit")
        try:
            # WAL first: the record must be durable before anything else.
            position = api.SetFilePointer(self.wal_handle, 0, _FILE_END)
            if position < 0:
                return TxnResult(False, detail="wal seek failed")
            status, written = api.NtWriteFile(
                self.wal_handle, RECORD_BYTES, None,
                ("txn", request.txn_id, source, target, request.amount),
            )
            if status != NtStatus.SUCCESS or written != RECORD_BYTES:
                return TxnResult(False, detail="wal append failed")
            self.table[source] -= request.amount
            self.table[target] += request.amount
            self.commits_since_checkpoint += 1
            if self.commits_since_checkpoint >= self.CHECKPOINT_PERIOD:
                if not self._checkpoint(ctx):
                    # The commit itself is safe in the WAL; the next
                    # checkpoint attempt will retry.
                    self.commits_since_checkpoint = (
                        self.CHECKPOINT_PERIOD
                    )
        finally:
            api.RtlLeaveCriticalSection("walnut.commit")
        return TxnResult(True, value=self.table[source])

    def _checkpoint(self, ctx):
        """Rewrite the account table, then truncate the WAL."""
        api = ctx.api
        for account, balance in self.table.items():
            if not self._write_account(
                ctx, self.data_handle, account, balance
            ):
                return False
        if api.SetFilePointer(self.wal_handle, 0, _FILE_BEGIN) != 0:
            return False
        if not api.SetEndOfFile(self.wal_handle):
            return False
        self.commits_since_checkpoint = 0
        return True


class BreezyDb(BaseDbEngine):
    """The fast-and-loose engine: write-back cache, no WAL, no checks.

    Transfers are acknowledged the moment memory is updated; dirty
    accounts reach the disk only every ``FLUSH_PERIOD`` commits, and the
    flush's return statuses go unchecked.  A crash between flushes loses
    acknowledged transactions — the durability violations the client's
    audit attributes to this engine.
    """

    name = "breezy"
    version = "0.9"
    worker_count = 2
    self_restart = False
    backlog = 48
    app_overhead_cycles = 1_100_000

    FLUSH_PERIOD = 16

    def reset_process_state(self):
        super().reset_process_state()
        self.dirty = set()
        self.commits_since_flush = 0

    def startup(self, ctx):
        self.data_handle = self._open(ctx, self.data_path)
        table = self._load_table(ctx, self.data_handle)
        if table:
            self.table = table
        else:
            self._initialize_accounts(ctx)

    def do_transfer(self, ctx, request):
        source = request.account_from
        target = request.account_to
        if source not in self.table or target not in self.table:
            return TxnResult(False, detail="no such account")
        self.table[source] -= request.amount
        self.table[target] += request.amount
        self.dirty.add(source)
        self.dirty.add(target)
        self.commits_since_flush += 1
        if self.commits_since_flush >= self.FLUSH_PERIOD:
            self._flush(ctx)
        return TxnResult(True, value=self.table[source])

    def _flush(self, ctx):
        """Write-back of dirty accounts; failures silently ignored."""
        ctx.api.RtlEnterCriticalSection("breezy.flush")
        try:
            for account in sorted(self.dirty):
                self._write_account(
                    ctx, self.data_handle, account, self.table[account]
                )
            self.dirty.clear()
            self.commits_since_flush = 0
        finally:
            ctx.api.RtlLeaveCriticalSection("breezy.flush")


_ENGINES = {"walnut": WalnutDb, "breezy": BreezyDb}


def create_engine(name):
    """Instantiate a fresh engine by name ('walnut' or 'breezy')."""
    cls = _ENGINES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown engine {name!r} (known: {sorted(_ENGINES)})"
        )
    return cls()
