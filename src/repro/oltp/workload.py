"""OLTP workload: TPC-style terminals with an integrity audit.

The client drives ``terminals`` concurrent terminals, each running the
classic mix (mostly transfers, some balance checks, occasional scans).
On top of the performance measures it audits **durability**: a ledger of
acknowledged transfers is maintained client-side, and every balance
response is compared against it.  A mismatch on an account with no
in-flight or uncertain operations is an integrity violation — an
acknowledged transaction the system lost (or conjured).
"""

from dataclasses import dataclass

__all__ = [
    "OltpClient",
    "OltpClientConfig",
    "OltpMetrics",
    "Transaction",
    "TxnResult",
]


class Transaction:
    """One client request to a database engine."""

    __slots__ = ("kind", "txn_id", "account_from", "account_to",
                 "amount", "connection_id")

    def __init__(self, kind, txn_id, account_from=0, account_to=0,
                 amount=0, connection_id=0):
        self.kind = kind
        self.txn_id = txn_id
        self.account_from = account_from
        self.account_to = account_to
        self.amount = amount
        self.connection_id = connection_id

    def __repr__(self):
        return (
            f"<Transaction #{self.txn_id} {self.kind} "
            f"{self.account_from}->{self.account_to} {self.amount}>"
        )


class TxnResult:
    """An engine's answer.  ``ok`` drives the shared process runtime."""

    __slots__ = ("ok", "value", "detail")

    def __init__(self, ok, value=None, detail=""):
        self.ok = ok
        self.value = value
        self.detail = detail

    def wire_size(self):
        return 160

    def __repr__(self):
        state = "ok" if self.ok else f"failed ({self.detail})"
        return f"<TxnResult {state} value={self.value}>"


@dataclass
class OltpClientConfig:
    terminals: int = 10
    accounts: int = 200
    initial_balance: int = 1_000
    transfer_fraction: float = 0.70
    balance_fraction: float = 0.25  # remainder is scans
    think_min: float = 0.004
    think_max: float = 0.020
    max_amount: int = 50
    txn_timeout: float = 6.0
    link_latency: float = 0.0003
    error_backoff: float = 0.35


@dataclass
class OltpMetrics:
    """Reduced measures for one OLTP run."""

    tps: float
    rtm_ms: float
    er_percent: float
    total_txns: int
    total_errors: int
    integrity_violations: int
    uncertain_accounts: int
    measured_seconds: float

    def __str__(self):
        return (
            f"TPS={self.tps:.1f} RTM={self.rtm_ms:.1f}ms "
            f"ER%={self.er_percent:.2f} "
            f"violations={self.integrity_violations}"
        )


class _Terminal:
    __slots__ = ("index", "seq", "pending", "issued_at", "timeout_event",
                 "idle")

    def __init__(self, index):
        self.index = index
        self.seq = 0
        self.pending = None
        self.issued_at = 0.0
        self.timeout_event = None
        self.idle = True


class OltpClient:
    """Terminal driver plus ledger-based integrity audit."""

    def __init__(self, sim, transport, config=None, rng=None):
        self.sim = sim
        self.transport = transport
        self.config = config or OltpClientConfig()
        self.rng = rng or sim.rng_for("oltp-client")
        self.running = False
        self.terminals = [
            _Terminal(index) for index in range(self.config.terminals)
        ]
        self._txn_counter = 0
        # The audit state.
        self.ledger = {
            account: self.config.initial_balance
            for account in range(self.config.accounts)
        }
        self.pending_on_account = {
            account: 0 for account in range(self.config.accounts)
        }
        # Last simulated time a transfer touching the account was issued
        # or finished; balance reads overlapping such activity cannot be
        # audited (the read and the ledger may legitimately disagree).
        self.account_activity = {
            account: -1.0 for account in range(self.config.accounts)
        }
        self.uncertain = set()
        self.integrity_violations = 0
        self.violation_log = []
        # Raw records: (completed_at, ok, latency).
        self.records = []

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self):
        self.running = True
        for terminal in self.terminals:
            if terminal.idle:
                terminal.idle = False
                self.sim.schedule(
                    0.002 + 0.003 * terminal.index, self._issue, terminal
                )

    def pause(self):
        self.running = False

    def resume(self):
        self.running = True
        for terminal in self.terminals:
            if terminal.idle:
                terminal.idle = False
                self.sim.schedule(0.002, self._issue, terminal)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def _draw_transaction(self, terminal):
        self._txn_counter += 1
        draw = self.rng.random()
        if draw < self.config.transfer_fraction:
            source = self.rng.randint(0, self.config.accounts - 1)
            target = self.rng.randint(0, self.config.accounts - 1)
            while target == source:
                target = self.rng.randint(0, self.config.accounts - 1)
            return Transaction(
                "transfer", self._txn_counter, source, target,
                amount=self.rng.randint(1, self.config.max_amount),
                connection_id=terminal.index,
            )
        if draw < (self.config.transfer_fraction
                   + self.config.balance_fraction):
            return Transaction(
                "balance", self._txn_counter,
                account_from=self.rng.randint(
                    0, self.config.accounts - 1
                ),
                connection_id=terminal.index,
            )
        return Transaction(
            "scan", self._txn_counter, connection_id=terminal.index
        )

    def _issue(self, terminal):
        if not self.running:
            terminal.idle = True
            return
        terminal.seq += 1
        seq = terminal.seq
        transaction = self._draw_transaction(terminal)
        terminal.pending = transaction
        terminal.issued_at = self.sim.now
        if transaction.kind == "transfer":
            self.pending_on_account[transaction.account_from] += 1
            self.pending_on_account[transaction.account_to] += 1
            now = self.sim.now
            self.account_activity[transaction.account_from] = now
            self.account_activity[transaction.account_to] = now
        self.sim.schedule(
            self.config.link_latency, self.transport, transaction,
            self._responder(terminal, seq),
        )
        terminal.timeout_event = self.sim.schedule(
            self.config.txn_timeout, self._on_timeout, terminal, seq
        )

    def _responder(self, terminal, seq):
        def respond(result):
            self.sim.schedule(
                self.config.link_latency, self._finish,
                terminal, seq, result,
            )
        return respond

    def _release_pending(self, transaction):
        if transaction.kind == "transfer":
            self.pending_on_account[transaction.account_from] -= 1
            self.pending_on_account[transaction.account_to] -= 1
            now = self.sim.now
            self.account_activity[transaction.account_from] = now
            self.account_activity[transaction.account_to] = now

    def _finish(self, terminal, seq, result):
        if terminal.seq != seq or terminal.pending is None:
            return
        transaction = terminal.pending
        terminal.pending = None
        if terminal.timeout_event is not None:
            self.sim.cancel(terminal.timeout_event)
            terminal.timeout_event = None
        self._release_pending(transaction)
        latency = self.sim.now - terminal.issued_at
        ok = result is not None and result.ok
        if transaction.kind == "transfer":
            if ok:
                self.ledger[transaction.account_from] -= (
                    transaction.amount
                )
                self.ledger[transaction.account_to] += transaction.amount
            elif result is None:
                # Connection reset: the commit may or may not have
                # happened; these accounts can no longer be audited.
                self.uncertain.add(transaction.account_from)
                self.uncertain.add(transaction.account_to)
        elif transaction.kind == "balance" and ok:
            self._audit_balance(
                transaction.account_from, result.value,
                read_issued_at=terminal.issued_at,
            )
        self.records.append((self.sim.now, ok, latency))
        delay = (
            self.rng.uniform(self.config.think_min,
                             self.config.think_max)
            if ok else self.config.error_backoff
        )
        self.sim.schedule(delay, self._issue, terminal)

    def _on_timeout(self, terminal, seq):
        if terminal.seq != seq or terminal.pending is None:
            return
        transaction = terminal.pending
        terminal.pending = None
        terminal.timeout_event = None
        self._release_pending(transaction)
        if transaction.kind == "transfer":
            self.uncertain.add(transaction.account_from)
            self.uncertain.add(transaction.account_to)
        latency = self.sim.now - terminal.issued_at
        self.records.append((self.sim.now, False, latency))
        self.sim.schedule(0.002, self._issue, terminal)

    # ------------------------------------------------------------------
    # The audit
    # ------------------------------------------------------------------
    def _audit_balance(self, account, reported, read_issued_at):
        if account in self.uncertain:
            return
        if self.pending_on_account[account] != 0:
            return
        if self.account_activity[account] >= read_issued_at:
            # A transfer overlapped this read's lifetime: the snapshot the
            # engine answered from may legitimately differ from the
            # ledger's current value.
            return
        expected = self.ledger[account]
        if reported != expected:
            self.integrity_violations += 1
            self.violation_log.append(
                (self.sim.now, account, expected, reported)
            )
            # Re-anchor so one lost transaction is counted once, not on
            # every later read of the account.
            self.ledger[account] = reported

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def compute(self, windows):
        total = 0
        errors = 0
        latency_sum = 0.0
        latency_count = 0
        seconds = sum(end - start for start, end in windows)
        for completed_at, ok, latency in self.records:
            if not any(start < completed_at <= end
                       for start, end in windows):
                continue
            total += 1
            if ok:
                latency_sum += latency
                latency_count += 1
            else:
                errors += 1
        return OltpMetrics(
            tps=total / seconds if seconds > 0 else 0.0,
            rtm_ms=(1000.0 * latency_sum / latency_count
                    if latency_count else 0.0),
            er_percent=100.0 * errors / total if total else 0.0,
            total_txns=total,
            total_errors=errors,
            integrity_violations=self.integrity_violations,
            uncertain_accounts=len(self.uncertain),
            measured_seconds=seconds,
        )
