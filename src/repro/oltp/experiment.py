"""OLTP experiment orchestration — the harness, re-aimed at databases.

:class:`OltpMachine` assembles OS build + engine + terminals the way
:class:`~repro.harness.machine.ServerMachine` does for web servers;
:class:`OltpExperiment` runs the same baseline and slot-structured
injection phases, with one extra column in the results: the client's
integrity violations.
"""

from dataclasses import dataclass

from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import MutantError
from repro.harness.watchdog import Watchdog
from repro.oltp.engines import create_engine
from repro.oltp.workload import OltpClient, OltpClientConfig
from repro.ossim.builds import get_build
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.sim.kernel import Simulator
from repro.webservers.runtime import ServerRuntime

__all__ = ["OltpExperiment", "OltpIteration", "OltpMachine"]


class OltpMachine:
    """One engine/OS combination plus its terminal farm."""

    def __init__(self, config, iteration=0):
        self.config = config
        self.sim = Simulator(seed=config.iteration_seed(iteration))
        self.kernel = SimKernel(time_source=lambda: self.sim.now)
        self.build = get_build(config.os_codename)
        self.os_instance = OsInstance(self.build, self.kernel)
        self.engine = create_engine(config.server_name)
        self.runtime = ServerRuntime(
            self.engine,
            self.os_instance,
            self.sim,
            cpu_hz=config.cpu_hz,
            operation_budget=config.operation_budget_cycles,
        )
        client_config = OltpClientConfig(
            terminals=config.client.connections,
            accounts=self.engine.accounts,
        )
        self.client = OltpClient(
            self.sim,
            self.runtime.deliver,
            config=client_config,
            rng=self.sim.rng_for("oltp", iteration),
        )

    def boot(self):
        self.kernel.vfs.mkdir(f"/db/{self.engine.name}", parents=True)
        return self.runtime.start()

    def run_for(self, seconds):
        self.sim.run_until(self.sim.now + seconds)


@dataclass
class OltpIteration:
    """One faultload pass over one engine."""

    iteration: int
    metrics: object  # OltpMetrics
    mis: int
    kns: int
    kcp: int
    faults_injected: int

    @property
    def admf(self):
        return self.mis + self.kns + self.kcp


class OltpExperiment:
    """Baseline and injection runs for one engine/OS pair.

    Reuses :class:`~repro.harness.config.ExperimentConfig`;
    ``config.server_name`` names the engine ('walnut' or 'breezy').
    """

    def __init__(self, config):
        self.config = config
        self.build = get_build(config.os_codename)

    def prepared_faultload(self, faultload=None):
        from repro.gswfit.scanner import scan_build

        if faultload is not None and getattr(faultload, "prepared", False):
            return faultload
        if faultload is None:
            faultload = scan_build(self.build)
        if self.config.fault_sample is not None:
            faultload = faultload.sample(
                self.config.fault_sample, seed=self.config.seed
            ).interleave_types()
        faultload.prepared = True
        return faultload

    def domain_tuned_faultload(self, engines=("walnut", "breezy"),
                               profile_seconds=20.0):
        """The methodology's fine-tuning, applied to the OLTP domain.

        The paper: "the resulting faultload is specific for a given OS
        and an intended domain".  The web-server faultload does not fit
        databases (their API footprint is different), so the profiling
        phase is re-run with the *database engines* as the benchmark
        targets and the faultload restricted to their common function
        set.
        """
        from repro.gswfit.scanner import scan_build
        from repro.profiling.finetune import FineTuner
        from repro.profiling.tracer import ApiCallTracer

        tracers = {}
        for engine_name in engines:
            config = self.config.with_target(server_name=engine_name)
            machine = OltpMachine(config, iteration=0)
            tracer = ApiCallTracer(label=engine_name)
            machine.os_instance.attach_tracer(tracer)
            if not machine.boot():
                raise RuntimeError(f"{engine_name} failed to start")
            machine.client.start()
            machine.run_for(
                config.rules.warmup_seconds + profile_seconds
            )
            machine.client.pause()
            tracers[engine_name] = tracer
        tuner = FineTuner(self.build)
        tuner.analyze(tracers)
        return tuner.tune(scan_build(self.build))

    def _boot(self, iteration):
        machine = OltpMachine(self.config, iteration=iteration)
        if not machine.boot():
            raise RuntimeError(
                f"engine {self.config.server_name} failed to start"
            )
        return machine

    def run_baseline(self, iteration=0):
        rules = self.config.rules
        machine = self._boot(iteration)
        machine.client.start()
        machine.run_for(rules.warmup_seconds + rules.rampup_seconds)
        start = machine.sim.now
        machine.run_for(rules.baseline_seconds)
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        return machine.client.compute(
            [(start, start + rules.baseline_seconds)]
        )

    def run_injection(self, faultload=None, iteration=1):
        faultload = self.prepared_faultload(faultload)
        config = self.config
        rules = config.rules
        machine = self._boot(iteration)
        machine.runtime.cpu_scale = 1.0 - config.injector_cpu_fraction
        injector = FaultInjector(os_instances=[machine.os_instance])
        watchdog = Watchdog(
            machine.sim,
            machine.runtime,
            poll_seconds=config.watchdog_poll_seconds,
            unresponsive_after=config.unresponsive_after_seconds,
            restart_grace=config.restart_grace_seconds,
            max_restart_attempts=config.watchdog_max_restart_attempts,
        )
        machine.client.start()
        machine.run_for(rules.warmup_seconds + rules.rampup_seconds)
        watchdog.start()
        windows = []
        injected = 0
        try:
            for location in faultload:
                slot_start = machine.sim.now
                try:
                    injector.inject(location)
                    injected += 1
                except MutantError:
                    continue
                machine.sim.run_until(slot_start + rules.slot_seconds)
                injector.restore(location)
                windows.append(
                    (slot_start, slot_start + rules.slot_seconds)
                )
                machine.client.pause()
                machine.run_for(rules.slot_gap_seconds)
                # The fault is gone: re-arm an exhausted restart budget
                # so an engine the fault kept killing can come back.
                watchdog.check_now(retry_exhausted=True)
                machine.client.resume()
        finally:
            injector.restore_all()
        machine.client.pause()
        machine.run_for(rules.rampdown_seconds)
        watchdog.stop()
        return OltpIteration(
            iteration=iteration,
            metrics=machine.client.compute(windows),
            mis=watchdog.mis,
            kns=watchdog.kns,
            kcp=watchdog.kcp,
            faults_injected=injected,
        )
