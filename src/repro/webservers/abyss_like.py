"""Abyss-like server: lean, low-concurrency, unsupervised.

Mirrors the Abyss X1 personality: a small single-process server with no
supervising master — when the process dies it stays dead until an
administrator (in the benchmark: the watchdog) restarts it, which is the
behaviour behind Abyss's high MIS counts in the paper.  Style traits:

* **no handle cache**: every request translates the path and opens/closes
  the file (high ``NtCreateFile``/``NtClose``/conversion traffic);
* **per-request logging**: one ``WriteFile`` per request (the higher
  ``WriteFile`` share in the paper's Table 2);
* **no retries, coarse error handling**: any OS hiccup fails the request
  with a 500 immediately;
* explicit counted-string juggling for its header building (heavy
  ``RtlInitUnicodeString``/``RtlUnicodeToMultiByteN`` usage).
"""

from repro.ossim.memory import PAGE_READWRITE
from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.webservers.base import BaseWebServer, ServerStartupError
from repro.webservers.http import HttpResponse

__all__ = ["AbyssLikeServer"]

_OPEN_ALWAYS = 4
_OPEN_EXISTING = 3
_FILE_BEGIN = 0
_FILE_END = 2
_DYNAMIC_WRAPPER_BYTES = 128
_ARENA_TOUCH_PERIOD = 16
_MIME_RELOAD_PERIOD = 32


class AbyssLikeServer(BaseWebServer):
    """The paper's Abyss stand-in."""

    name = "abyss"
    version = "1.0"
    worker_count = 6
    self_restart = False
    restart_delay = 0.5
    backlog = 48
    uses_mime_map = True
    # Abyss rebuilds per-request state from scratch (no caches, immediate
    # log writes, counted-string juggling) — a markedly higher fixed cost
    # per request than Apache's pooled fast path.
    app_overhead_cycles = 7_000_000

    def reset_process_state(self):
        super().reset_process_state()
        self.access_log_handle = 0
        self.post_log_handle = 0
        self.mime_handle = 0
        self.mime_size = 0

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def startup(self, ctx):
        api = ctx.api
        config = api.CreateFileW(self.config_path, "r", _OPEN_EXISTING)
        if config == 0:
            raise ServerStartupError(
                f"cannot open {self.config_path} "
                f"(error {api.GetLastError()})"
            )
        size = api.GetFileSize(config)
        ok, _buffer, read = api.ReadFile(config, max(0, size))
        api.CloseHandle(config)
        if size < 0 or not ok or read != size:
            raise ServerStartupError("cannot read configuration")
        self.access_log_handle = api.CreateFileW(
            self.access_log_path, "a", _OPEN_ALWAYS
        )
        if self.access_log_handle == 0:
            raise ServerStartupError("cannot open access log")
        self.post_log_handle = api.CreateFileW(
            self.post_log_path, "a", _OPEN_ALWAYS
        )
        if self.post_log_handle == 0:
            raise ServerStartupError("cannot open POST log")
        self.mime_handle = api.CreateFileW(
            f"/etc/{self.name}.mime", "r", _OPEN_ALWAYS
        )
        if self.mime_handle != 0:
            self.mime_size = max(0, api.GetFileSize(self.mime_handle))

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, ctx, request):
        api = ctx.api
        self.requests_served += 1
        if self.requests_served % _ARENA_TOUCH_PERIOD == 0:
            self._arena_touch(ctx)
        if self.requests_served % _MIME_RELOAD_PERIOD == 0:
            self._reload_mime_map(api)
        if request.is_post:
            response = self._handle_post(ctx, request)
        elif request.dynamic:
            response = self._handle_dynamic(ctx, request)
        else:
            response = self._handle_get(ctx, request)
        self._log_access(api, request, response)
        return response

    def _handle_get(self, ctx, request):
        api = ctx.api
        # Header building: Abyss keeps its strings in counted form.
        header = UnicodeString()
        api.RtlInitUnicodeString(header, request.path)
        status, _ansi, _written = api.RtlUnicodeToMultiByteN(
            header, len(request.path) + 16
        )
        if status != NtStatus.SUCCESS:
            return self.error_response(400, detail="bad request path")
        dos_path = self.document_path(request.path)
        handle = api.CreateFileW(dos_path, "r", _OPEN_EXISTING)
        # Win32-school error handling: check GetLastError after every
        # call, whether it failed or not — traffic only Abyss generates.
        if api.GetLastError() != 0 or handle == 0:
            return self.error_response(404, detail="no such document")
        size = api.GetFileSize(handle)
        api.GetLastError()
        if size < 0:
            api.CloseHandle(handle)
            return self.error_response(500, detail="stat failed")
        buffer_address = api.RtlAllocateHeap(min(size, 32768), 0)
        status, buffer, read = api.NtReadFile(handle, size, 0)
        api.GetLastError()
        api.CloseHandle(handle)
        if buffer_address != 0:
            api.RtlFreeHeap(buffer_address)
        if status != NtStatus.SUCCESS or read != size:
            return self.error_response(500, detail="read failed")
        return HttpResponse(
            200,
            content_length=size,
            buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_dynamic(self, ctx, request):
        api = ctx.api
        dos_path = self.document_path(request.path)
        status, nt_path = api.RtlDosPathNameToNtPathName_U(dos_path)
        if status != NtStatus.SUCCESS:
            return self.error_response(404, detail="bad dynamic path")
        status, handle = api.NtOpenFile(nt_path, "r")
        api.RtlFreeUnicodeString(nt_path)
        if status != NtStatus.SUCCESS:
            return self.error_response(404, detail="no such script")
        size = api.GetFileSize(handle)
        if size < 0:
            api.CloseHandle(handle)
            return self.error_response(500, detail="stat failed")
        status, buffer, read = api.NtReadFile(handle, size, 0)
        api.CloseHandle(handle)
        if status != NtStatus.SUCCESS or read != size:
            return self.error_response(500, detail="script read failed")
        ctx.charge(size // 6)  # inline script expansion
        return HttpResponse(
            200,
            content_length=size + _DYNAMIC_WRAPPER_BYTES,
            buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_post(self, ctx, request):
        api = ctx.api
        length, _long_path = api.GetLongPathNameW(self.post_log_path)
        if length == 0:
            return self.error_response(500, detail="post log missing")
        content_type = AnsiString()
        api.RtlInitAnsiString(content_type, "application/x-www-form")
        body = api.RtlAllocateHeap(max(64, request.body_size), 0)
        api.RtlEnterCriticalSection("abyss.postlog")
        try:
            position = api.SetFilePointer(self.post_log_handle, 0, _FILE_END)
            if position < 0:
                return self.error_response(500, detail="post log seek")
            ok, written = api.WriteFile(
                self.post_log_handle, request.body_size + 48
            )
            if not ok or written != request.body_size + 48:
                return self.error_response(500, detail="post log write")
        finally:
            api.RtlLeaveCriticalSection("abyss.postlog")
            if body != 0:
                api.RtlFreeHeap(body)
        return HttpResponse(
            200, content_length=224,
            server_name=f"{self.name}/{self.version}",
        )

    def _log_access(self, api, request, response):
        api.RtlEnterCriticalSection("abyss.log")
        try:
            api.SetFilePointer(self.access_log_handle, 0, _FILE_END)
            api.WriteFile(self.access_log_handle, 52 + len(request.path))
            api.GetLastError()
        finally:
            api.RtlLeaveCriticalSection("abyss.log")

    def _reload_mime_map(self, api):
        if self.mime_handle == 0:
            return
        api.SetFilePointer(self.mime_handle, 0, _FILE_BEGIN)
        api.ReadFile(self.mime_handle, self.mime_size)

    def _arena_touch(self, ctx):
        api = ctx.api
        base = ctx.arena.base
        status, _info = api.NtQueryVirtualMemory(base)
        if status == NtStatus.SUCCESS:
            api.NtProtectVirtualMemory(base, 4096, PAGE_READWRITE)
