"""Sambar-like server (profiling only).

The paper uses Sambar and Savant alongside Apache and Abyss purely to
fine-tune the faultload: only API functions *all four* servers exercise are
eligible for injection.  This implementation therefore matters for its OS
call mix, not its robustness: a mid-weight threaded server with a
size-metadata cache (it re-opens files but skips re-stating them) and
ANSI-flavoured string handling.
"""

from repro.ossim.memory import PAGE_READWRITE
from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.webservers.base import BaseWebServer, ServerStartupError
from repro.webservers.http import HttpResponse

__all__ = ["SambarLikeServer"]

_OPEN_ALWAYS = 4
_OPEN_EXISTING = 3
_FILE_END = 2
_DYNAMIC_WRAPPER_BYTES = 128
_ARENA_TOUCH_PERIOD = 24


class SambarLikeServer(BaseWebServer):
    """The paper's Sambar stand-in (fine-tuning participant)."""

    name = "sambar"
    version = "5.1"
    worker_count = 4
    self_restart = False
    backlog = 64
    app_overhead_cycles = 165_000

    def reset_process_state(self):
        super().reset_process_state()
        self.access_log_handle = 0
        self.post_log_handle = 0
        self.size_cache = {}

    def startup(self, ctx):
        api = ctx.api
        config = api.CreateFileW(self.config_path, "r", _OPEN_EXISTING)
        if config == 0:
            raise ServerStartupError("cannot open configuration")
        size = api.GetFileSize(config)
        ok, _buffer, read = api.ReadFile(config, max(0, size))
        api.CloseHandle(config)
        if size < 0 or not ok or read != size:
            raise ServerStartupError("cannot read configuration")
        self.access_log_handle = api.CreateFileW(
            self.access_log_path, "a", _OPEN_ALWAYS
        )
        self.post_log_handle = api.CreateFileW(
            self.post_log_path, "a", _OPEN_ALWAYS
        )
        if self.access_log_handle == 0 or self.post_log_handle == 0:
            raise ServerStartupError("cannot open log files")

    def handle(self, ctx, request):
        api = ctx.api
        self.requests_served += 1
        if self.requests_served % _ARENA_TOUCH_PERIOD == 0:
            self._arena_touch(ctx)
        if request.is_post:
            response = self._handle_post(ctx, request)
        else:
            response = self._handle_get(ctx, request)
        api.RtlEnterCriticalSection("sambar.log")
        try:
            api.SetFilePointer(self.access_log_handle, 0, _FILE_END)
            api.WriteFile(self.access_log_handle, 64 + len(request.path))
        finally:
            api.RtlLeaveCriticalSection("sambar.log")
        return response

    def _handle_get(self, ctx, request):
        api = ctx.api
        # ANSI-flavoured request bookkeeping.
        raw = AnsiString()
        api.RtlInitAnsiString(raw, request.path)
        status, _wide, _chars = api.RtlMultiByteToUnicodeN(
            raw, len(request.path) + 8
        )
        if status != NtStatus.SUCCESS:
            return self.error_response(400, detail="bad path")
        dos_path = self.document_path(request.path)
        if request.dynamic:
            return self._handle_dynamic(ctx, dos_path, request)
        handle = api.CreateFileW(dos_path, "r", _OPEN_EXISTING)
        if handle == 0:
            api.GetLastError()
            return self.error_response(404, detail="no such document")
        api.GetLastError()
        size = self.size_cache.get(request.path, -1)
        if size < 0:
            size = api.GetFileSize(handle)
            if size < 0:
                api.CloseHandle(handle)
                return self.error_response(500, detail="stat failed")
            self.size_cache[request.path] = size
        scratch = api.RtlAllocateHeap(min(size, 16384), 0)
        status, buffer, read = api.NtReadFile(handle, size, 0)
        api.CloseHandle(handle)
        if scratch != 0:
            api.RtlFreeHeap(scratch)
        if status != NtStatus.SUCCESS or read != size:
            self.size_cache.pop(request.path, None)
            return self.error_response(500, detail="read failed")
        return HttpResponse(
            200, content_length=size, buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_dynamic(self, ctx, dos_path, request):
        api = ctx.api
        status, nt_path = api.RtlDosPathNameToNtPathName_U(dos_path)
        if status != NtStatus.SUCCESS:
            return self.error_response(404, detail="bad dynamic path")
        status, handle = api.NtOpenFile(nt_path, "r")
        api.RtlFreeUnicodeString(nt_path)
        if status != NtStatus.SUCCESS:
            return self.error_response(404, detail="no such script")
        status, info = api.NtQueryInformationFile(handle)
        if status != NtStatus.SUCCESS:
            api.NtClose(handle)
            return self.error_response(500, detail="stat failed")
        size = info["size"]
        status, buffer, read = api.NtReadFile(handle, size, 0)
        api.NtClose(handle)
        if status != NtStatus.SUCCESS or read != size:
            return self.error_response(500, detail="script read failed")
        ctx.charge(size // 6)
        return HttpResponse(
            200, content_length=size + _DYNAMIC_WRAPPER_BYTES,
            buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_post(self, ctx, request):
        api = ctx.api
        length, _long_path = api.GetLongPathNameW(self.post_log_path)
        if length == 0:
            return self.error_response(500, detail="post log missing")
        header = UnicodeString()
        api.RtlInitUnicodeString(header, request.path)
        api.RtlUnicodeToMultiByteN(header, len(request.path) + 8)
        body = api.RtlAllocateHeap(max(64, request.body_size), 0)
        api.RtlEnterCriticalSection("sambar.postlog")
        try:
            api.SetFilePointer(self.post_log_handle, 0, _FILE_END)
            ok, written = api.WriteFile(
                self.post_log_handle, request.body_size + 56
            )
            if not ok or written != request.body_size + 56:
                return self.error_response(500, detail="post log write")
        finally:
            api.RtlLeaveCriticalSection("sambar.postlog")
            if body != 0:
                api.RtlFreeHeap(body)
        return HttpResponse(
            200, content_length=240,
            server_name=f"{self.name}/{self.version}",
        )

    def _arena_touch(self, ctx):
        api = ctx.api
        base = ctx.arena.base
        status, _info = api.NtQueryVirtualMemory(base)
        if status == NtStatus.SUCCESS:
            api.NtProtectVirtualMemory(base + 4096, 4096, PAGE_READWRITE)
