"""Savant-like server (profiling only).

The smallest of the four: nearly sequential, canonicalizes every path with
``GetLongPathNameW`` before opening it, throttles itself with
``NtDelayExecution``, and keeps its strings in ANSI form.  Like Sambar, it
exists to make the cross-target intersection of the fine-tuning phase
meaningful.
"""

from repro.ossim.memory import PAGE_READWRITE
from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.webservers.base import BaseWebServer, ServerStartupError
from repro.webservers.http import HttpResponse

__all__ = ["SavantLikeServer"]

_OPEN_ALWAYS = 4
_OPEN_EXISTING = 3
_FILE_END = 2
_DYNAMIC_WRAPPER_BYTES = 128
_ARENA_TOUCH_PERIOD = 40


class SavantLikeServer(BaseWebServer):
    """The paper's Savant stand-in (fine-tuning participant)."""

    name = "savant"
    version = "3.1"
    worker_count = 2
    self_restart = False
    backlog = 32
    app_overhead_cycles = 200_000

    def reset_process_state(self):
        super().reset_process_state()
        self.access_log_handle = 0
        self.post_log_handle = 0

    def startup(self, ctx):
        api = ctx.api
        config = api.CreateFileW(self.config_path, "r", _OPEN_EXISTING)
        if config == 0:
            raise ServerStartupError("cannot open configuration")
        size = api.GetFileSize(config)
        ok, _buffer, read = api.ReadFile(config, max(0, size))
        api.CloseHandle(config)
        if size < 0 or not ok or read != size:
            raise ServerStartupError("cannot read configuration")
        self.access_log_handle = api.CreateFileW(
            self.access_log_path, "a", _OPEN_ALWAYS
        )
        self.post_log_handle = api.CreateFileW(
            self.post_log_path, "a", _OPEN_ALWAYS
        )
        if self.access_log_handle == 0 or self.post_log_handle == 0:
            raise ServerStartupError("cannot open log files")

    def handle(self, ctx, request):
        api = ctx.api
        self.requests_served += 1
        api.NtQuerySystemTime()  # request clock for its statistics page
        api.NtDelayExecution(40)  # politeness throttle
        if self.requests_served % _ARENA_TOUCH_PERIOD == 0:
            base = ctx.arena.base
            status, _info = api.NtQueryVirtualMemory(base)
            if status == NtStatus.SUCCESS:
                api.NtProtectVirtualMemory(base, 4096, PAGE_READWRITE)
        if request.is_post:
            response = self._handle_post(ctx, request)
        else:
            response = self._handle_get(ctx, request)
        api.RtlEnterCriticalSection("savant.log")
        try:
            api.NtQuerySystemTime()  # log timestamp
            api.SetFilePointer(self.access_log_handle, 0, _FILE_END)
            api.WriteFile(self.access_log_handle, 48 + len(request.path))
        finally:
            api.RtlLeaveCriticalSection("savant.log")
        return response

    def _handle_get(self, ctx, request):
        api = ctx.api
        name = AnsiString()
        api.RtlInitAnsiString(name, request.path)
        dos_path = self.document_path(request.path)
        length, long_path = api.GetLongPathNameW(dos_path)
        if length == 0:
            return self.error_response(404, detail="no such document")
        if request.dynamic:
            status, nt_path = api.RtlDosPathNameToNtPathName_U(long_path)
            if status != NtStatus.SUCCESS:
                return self.error_response(404, detail="bad dynamic path")
            status, handle = api.NtOpenFile(nt_path, "r")
            api.RtlFreeUnicodeString(nt_path)
        else:
            handle = api.CreateFileW(long_path, "r", _OPEN_EXISTING)
            status = (NtStatus.SUCCESS if handle != 0
                      else NtStatus.OBJECT_NAME_NOT_FOUND)
        if status != NtStatus.SUCCESS or handle == 0:
            return self.error_response(404, detail="open failed")
        size = api.GetFileSize(handle)
        if size < 0:
            api.CloseHandle(handle)
            return self.error_response(500, detail="stat failed")
        scratch = api.RtlAllocateHeap(4096, 0)
        status, buffer, read = api.NtReadFile(handle, size, 0)
        api.CloseHandle(handle)
        if scratch != 0:
            api.RtlFreeHeap(scratch)
        if status != NtStatus.SUCCESS or read != size:
            return self.error_response(500, detail="read failed")
        length_out = size
        if request.dynamic:
            ctx.charge(size // 5)
            length_out = size + _DYNAMIC_WRAPPER_BYTES
        return HttpResponse(
            200, content_length=length_out, buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_post(self, ctx, request):
        api = ctx.api
        length, _long_path = api.GetLongPathNameW(self.post_log_path)
        if length == 0:
            return self.error_response(500, detail="post log missing")
        header = UnicodeString()
        api.RtlInitUnicodeString(header, request.path)
        api.RtlUnicodeToMultiByteN(header, len(request.path) + 4)
        api.RtlEnterCriticalSection("savant.postlog")
        try:
            api.SetFilePointer(self.post_log_handle, 0, _FILE_END)
            ok, written = api.WriteFile(
                self.post_log_handle, request.body_size + 40
            )
            if not ok or written != request.body_size + 40:
                return self.error_response(500, detail="post log write")
        finally:
            api.RtlLeaveCriticalSection("savant.postlog")
        return HttpResponse(
            200, content_length=200,
            server_name=f"{self.name}/{self.version}",
        )
