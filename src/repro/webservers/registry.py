"""Server registry.

``BENCHMARKED_SERVERS`` are the two targets the dependability benchmark
compares (the paper's Apache and Abyss); ``PROFILING_SERVERS`` are all four
servers used in the faultload fine-tuning phase.
"""

from repro.webservers.abyss_like import AbyssLikeServer
from repro.webservers.apache_like import ApacheLikeServer
from repro.webservers.sambar_like import SambarLikeServer
from repro.webservers.savant_like import SavantLikeServer

__all__ = [
    "BENCHMARKED_SERVERS",
    "PROFILING_SERVERS",
    "create_server",
    "server_names",
]

_SERVER_CLASSES = {
    "apache": ApacheLikeServer,
    "abyss": AbyssLikeServer,
    "sambar": SambarLikeServer,
    "savant": SavantLikeServer,
}

BENCHMARKED_SERVERS = ("apache", "abyss")
PROFILING_SERVERS = ("apache", "abyss", "sambar", "savant")


def server_names():
    """All known server names."""
    return sorted(_SERVER_CLASSES)


def create_server(name):
    """Instantiate a fresh server by name."""
    cls = _SERVER_CLASSES.get(name)
    if cls is None:
        known = ", ".join(server_names())
        raise KeyError(f"unknown server {name!r} (known: {known})")
    return cls()
