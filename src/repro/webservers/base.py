"""Web-server application contract.

A server subclass provides two things: a **startup sequence** (open its
configuration, create log files, initialize its locks and caches — all via
OS API calls) and a **request handler**.  Everything about processes,
workers, crashes and restarts is the job of
:class:`~repro.webservers.runtime.ServerRuntime`; everything the server
does to the machine must go through ``ctx.api`` so it is observable by the
profiler and vulnerable to the injected faultload.

Subclasses differ in *architecture* (worker count, supervision) and in
*style* (handle caching, logging strategy, retry policies).  Those
differences — not scripted outcomes — produce the behavioural gap the
benchmark measures.
"""

from repro.webservers.http import HttpResponse

__all__ = ["BaseWebServer", "ServerStartupError"]


class ServerStartupError(Exception):
    """The server's startup sequence failed (bad status from the OS)."""


class BaseWebServer:
    """Base class for all benchmark targets.

    Class attributes (policy knobs subclasses override)
    ---------------------------------------------------
    name / version:
        Identity used in reports and response headers.
    worker_count:
        Simultaneous request-handling threads in the (single) child
        process.
    self_restart:
        Whether a supervising master respawns the child after a crash.
    restart_delay:
        Seconds the master needs to respawn the child.
    max_respawn_burst:
        Consecutive failed respawns after which the master gives up
        (the server is then dead until an administrator restarts it —
        the paper's MIS condition).
    crash_burst_limit / crash_burst_window:
        A supervised master also gives up when the child keeps dying:
        ``crash_burst_limit`` crashes within ``crash_burst_window``
        seconds stop the respawn loop (Apache's behaviour when its child
        enters a crash loop).
    backlog:
        Pending-request queue capacity; overflow is refused (errors).
    app_overhead_cycles:
        Application-level CPU per request (parsing, response building)
        charged on top of whatever the OS calls cost.
    """

    name = "base"
    version = "0.0"
    worker_count = 1
    self_restart = False
    restart_delay = 0.5
    max_respawn_burst = 3
    crash_burst_limit = 3
    crash_burst_window = 4.0
    backlog = 64
    app_overhead_cycles = 120_000
    # Whether startup loads a /etc/<name>.mime map; the machine only
    # materializes the file for servers that declare it.
    uses_mime_map = False

    doc_root = "/site"

    def __init__(self):
        self.config_path = f"/etc/{self.name}.conf"
        self.access_log_path = f"/logs/{self.name}_access.log"
        self.post_log_path = f"/logs/{self.name}_post.log"
        self.reset_process_state()

    # ------------------------------------------------------------------
    # Lifecycle (overridden by subclasses)
    # ------------------------------------------------------------------
    def reset_process_state(self):
        """Forget all per-process state (called on every child spawn)."""
        self.requests_served = 0

    def startup(self, ctx):
        """Run the child's startup sequence.

        Raise :class:`ServerStartupError` when the OS refuses something
        essential (missing configuration, unwritable log).
        """
        raise NotImplementedError

    def handle(self, ctx, request):
        """Serve one request; returns an :class:`HttpResponse`."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers shared by concrete servers
    # ------------------------------------------------------------------
    def error_response(self, status_code, detail=""):
        return HttpResponse.error(
            status_code, server_name=f"{self.name}/{self.version}",
            detail=detail,
        )

    def document_path(self, request_path):
        """Map a URL path onto the document root (DOS-path flavoured)."""
        if not request_path.startswith("/"):
            request_path = "/" + request_path
        return self.doc_root + request_path

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name}/{self.version} "
            f"workers={self.worker_count} "
            f"self_restart={self.self_restart}>"
        )
