"""Apache-like server: supervised worker pool with conservative habits.

Architecture mirrors Apache on Windows: a master supervises one
multi-threaded child and respawns it automatically after a crash (the
built-in self-restart mechanism the paper credits for Apache's lower need
of administrator intervention).  Style traits that show up in the API
profile and in fault resilience:

* a keep-open **file-handle cache** (fewer ``NtCreateFile``/path
  translations than its peers, lots of ``SetFilePointer`` rewinds);
* **pooled allocation**: per-request heap blocks are tracked and all
  released at the end, even on error paths;
* **buffered access logging**: entries accumulate and are flushed in
  batches (low ``WriteFile`` share, as in the paper's Table 2);
* a **read retry**: one transient read failure is retried before the
  request is failed — a little fault tolerance that pays off under an
  injected faultload;
* periodic **arena maintenance** with virtual-memory queries/protection
  flips, modelling its pool allocator's housekeeping.
"""

from repro.ossim.memory import PAGE_READONLY, PAGE_READWRITE
from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.webservers.base import BaseWebServer, ServerStartupError
from repro.webservers.http import HttpResponse

__all__ = ["ApacheLikeServer"]

_OPEN_ALWAYS = 4
_OPEN_EXISTING = 3
_FILE_BEGIN = 0
_FILE_END = 2

_HANDLE_CACHE_CAPACITY = 64
_LOG_FLUSH_BATCH = 8
_ARENA_MAINTENANCE_PERIOD = 32
_DYNAMIC_WRAPPER_BYTES = 128


class ApacheLikeServer(BaseWebServer):
    """The paper's Apache stand-in."""

    name = "apache"
    version = "2.0"
    worker_count = 8
    self_restart = True
    restart_delay = 0.4
    max_respawn_burst = 3
    backlog = 96
    app_overhead_cycles = 150_000

    def reset_process_state(self):
        super().reset_process_state()
        self.config_handle_ok = False
        self.access_log_handle = 0
        self.post_log_handle = 0
        self.handle_cache = {}
        self.cache_order = []
        self.pending_log_entries = 0
        self.pending_log_bytes = 0

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def startup(self, ctx):
        api = ctx.api
        api.RtlEnterCriticalSection("apache.config")
        try:
            config = api.CreateFileW(self.config_path, "r", _OPEN_EXISTING)
            if config == 0:
                raise ServerStartupError(
                    f"cannot open {self.config_path} "
                    f"(error {api.GetLastError()})"
                )
            size = api.GetFileSize(config)
            if size < 0:
                api.CloseHandle(config)
                raise ServerStartupError("cannot stat configuration")
            ok, _buffer, read = api.ReadFile(config, size)
            api.CloseHandle(config)
            if not ok or read != size:
                raise ServerStartupError("cannot read configuration")
        finally:
            api.RtlLeaveCriticalSection("apache.config")

        self.access_log_handle = api.CreateFileW(
            self.access_log_path, "a", _OPEN_ALWAYS
        )
        if self.access_log_handle == 0:
            raise ServerStartupError("cannot open access log")
        self.post_log_handle = api.CreateFileW(
            self.post_log_path, "a", _OPEN_ALWAYS
        )
        if self.post_log_handle == 0:
            raise ServerStartupError("cannot open POST log")
        # Warm the allocator and verify the process arena is sane.
        probe = api.RtlAllocateHeap(8192, 0)
        if probe == 0:
            raise ServerStartupError("allocator not functional")
        api.RtlFreeHeap(probe)
        status, _info = api.NtQueryVirtualMemory(ctx.arena.base)
        if status != NtStatus.SUCCESS:
            raise ServerStartupError("process arena not mapped")
        self.config_handle_ok = True

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, ctx, request):
        api = ctx.api
        pool = []
        try:
            self.requests_served += 1
            if request.is_post:
                response = self._handle_post(ctx, request, pool)
            else:
                response = self._handle_get(ctx, request, pool)
            self._log_access(api, request, response)
            if self.requests_served % _ARENA_MAINTENANCE_PERIOD == 0:
                self._arena_maintenance(ctx)
            return response
        finally:
            # Pool teardown validates every block before release (Apache's
            # debug-pool habit) — RtlSizeHeap traffic its peers don't have.
            for address in pool:
                api.RtlSizeHeap(address)
                api.RtlFreeHeap(address)

    def _handle_get(self, ctx, request, pool):
        api = ctx.api
        # Content-type lookup keeps the extension in counted-ANSI form.
        extension = AnsiString()
        dot = request.path.rfind(".")
        api.RtlInitAnsiString(
            extension, request.path[dot + 1:] if dot >= 0 else "html"
        )
        entry = self._cached_handle(ctx, request.path)
        if entry is None:
            return self.error_response(404, detail="no such document")
        handle, size = entry
        if api.SetFilePointer(handle, 0, _FILE_BEGIN) != 0:
            self._evict(api, request.path)
            return self.error_response(500, detail="seek failed")
        buffer_address = api.RtlAllocateHeap(min(size, 65536), 0)
        if buffer_address != 0:
            pool.append(buffer_address)
        status, buffer, read = api.NtReadFile(handle, size, 0)
        if status != NtStatus.SUCCESS or read != size:
            # One retry: transient failures should not fail the request.
            status, buffer, read = api.NtReadFile(handle, size, 0)
        if status != NtStatus.SUCCESS or read != size:
            self._evict(api, request.path)
            return self.error_response(500, detail="read failed")
        length = size
        if request.dynamic:
            scratch = api.RtlAllocateHeap(4096, 0x08)
            if scratch != 0:
                pool.append(scratch)
            ctx.charge(size // 8)  # template expansion work
            length = size + _DYNAMIC_WRAPPER_BYTES
        return HttpResponse(
            200,
            content_length=length,
            buffer=buffer,
            server_name=f"{self.name}/{self.version}",
        )

    def _handle_post(self, ctx, request, pool):
        api = ctx.api
        length, _long_path = api.GetLongPathNameW(self.post_log_path)
        if length == 0:
            return self.error_response(500, detail="post log missing")
        body = api.RtlAllocateHeap(max(64, request.body_size), 0)
        if body != 0:
            pool.append(body)
        api.RtlEnterCriticalSection("apache.postlog")
        try:
            position = api.SetFilePointer(
                self.post_log_handle, 0, _FILE_END
            )
            if position < 0:
                return self.error_response(500, detail="post log seek")
            ok, written = api.WriteFile(
                self.post_log_handle, request.body_size + 64
            )
            if not ok or written != request.body_size + 64:
                return self.error_response(500, detail="post log write")
        finally:
            api.RtlLeaveCriticalSection("apache.postlog")
        return HttpResponse(
            200, content_length=256,
            server_name=f"{self.name}/{self.version}",
        )

    # ------------------------------------------------------------------
    # File-handle cache
    # ------------------------------------------------------------------
    def _cached_handle(self, ctx, url_path):
        api = ctx.api
        entry = self.handle_cache.get(url_path)
        if entry is not None:
            return entry
        dos_path = self.document_path(url_path)
        status, nt_path = api.RtlDosPathNameToNtPathName_U(dos_path)
        if status != NtStatus.SUCCESS:
            return None
        status, handle = api.NtOpenFile(nt_path, "r")
        api.RtlFreeUnicodeString(nt_path)
        if status != NtStatus.SUCCESS:
            return None
        status, info = api.NtQueryInformationFile(handle)
        if status != NtStatus.SUCCESS:
            api.NtClose(handle)
            return None
        if len(self.cache_order) >= _HANDLE_CACHE_CAPACITY:
            oldest = self.cache_order.pop(0)
            old_entry = self.handle_cache.pop(oldest, None)
            if old_entry is not None:
                api.NtClose(old_entry[0])
        entry = (handle, info["size"])
        self.handle_cache[url_path] = entry
        self.cache_order.append(url_path)
        return entry

    def _evict(self, api, url_path):
        entry = self.handle_cache.pop(url_path, None)
        if entry is not None:
            api.NtClose(entry[0])
            if url_path in self.cache_order:
                self.cache_order.remove(url_path)

    # ------------------------------------------------------------------
    # Logging and maintenance
    # ------------------------------------------------------------------
    def _log_access(self, api, request, response):
        # Log lines are composed in wide form and converted on flush intent.
        line = UnicodeString()
        api.RtlInitUnicodeString(line, request.path)
        api.RtlUnicodeToMultiByteN(line, len(request.path) + 24)
        api.NtQuerySystemTime()  # log line timestamp
        self.pending_log_entries += 1
        self.pending_log_bytes += 60 + len(request.path)
        if self.pending_log_entries < _LOG_FLUSH_BATCH:
            return
        api.RtlEnterCriticalSection("apache.log")
        try:
            api.SetFilePointer(self.access_log_handle, 0, _FILE_END)
            api.WriteFile(self.access_log_handle, self.pending_log_bytes)
            self.pending_log_entries = 0
            self.pending_log_bytes = 0
        finally:
            api.RtlLeaveCriticalSection("apache.log")

    def _arena_maintenance(self, ctx):
        """Pool housekeeping: re-probe and re-protect the arena."""
        api = ctx.api
        base = ctx.arena.base
        status, info = api.NtQueryVirtualMemory(base)
        if status != NtStatus.SUCCESS:
            return
        api.NtProtectVirtualMemory(base, 4096, PAGE_READONLY)
        api.NtProtectVirtualMemory(base, 4096, PAGE_READWRITE)
