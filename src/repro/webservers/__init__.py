"""Web servers — the Benchmark Targets (BTs).

Four servers mirror the paper's line-up: :mod:`~repro.webservers.apache_like`
and :mod:`~repro.webservers.abyss_like` are the two benchmarked targets;
:mod:`~repro.webservers.sambar_like` and :mod:`~repro.webservers.savant_like`
participate only in the profiling phase that fine-tunes the faultload.

Every server is application code written against the simulated OS API
(``ctx.api``), never against the substrate directly, so all its interaction
with the machine flows through the fault injection target.  The injector
structurally refuses to mutate anything under ``repro.webservers`` — the
BT/FIT separation of the methodology.

Architectural differences are implemented, not scripted: ``apache_like``
runs a supervised multi-worker child that the master respawns after a
crash; ``abyss_like`` is a lean low-concurrency server with no supervisor.
How those choices translate into MIS/KNS/ER% under an injected faultload is
exactly what the benchmark measures.
"""

from repro.webservers.http import HttpRequest, HttpResponse
from repro.webservers.base import BaseWebServer
from repro.webservers.runtime import ServerRuntime, WorkerState
from repro.webservers.apache_like import ApacheLikeServer
from repro.webservers.abyss_like import AbyssLikeServer
from repro.webservers.sambar_like import SambarLikeServer
from repro.webservers.savant_like import SavantLikeServer
from repro.webservers.registry import (
    BENCHMARKED_SERVERS,
    PROFILING_SERVERS,
    create_server,
    server_names,
)

__all__ = [
    "AbyssLikeServer",
    "ApacheLikeServer",
    "BENCHMARKED_SERVERS",
    "BaseWebServer",
    "HttpRequest",
    "HttpResponse",
    "PROFILING_SERVERS",
    "SambarLikeServer",
    "SavantLikeServer",
    "ServerRuntime",
    "WorkerState",
    "create_server",
    "server_names",
]
