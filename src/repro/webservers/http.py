"""HTTP messages.

A light-weight HTTP/1.0-ish model: requests and responses are objects, and
wire sizes are computed from their logical content so the network model can
charge realistic transfer times.  Response bodies are
:class:`~repro.ossim.vfs.SimBuffer` windows, so content integrity is
checkable end-to-end (a mutated OS read that returns the wrong bytes shows
up as a client-detected content error).
"""

__all__ = ["HttpRequest", "HttpResponse", "STATUS_REASONS"]

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    408: "Request Timeout",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

_BASE_REQUEST_OVERHEAD = 180   # request line + typical SPECWeb99 headers
_BASE_RESPONSE_OVERHEAD = 220  # status line + typical response headers


class HttpRequest:
    """One client request."""

    __slots__ = ("method", "path", "query", "body_size", "dynamic",
                 "connection_id", "request_id", "issued_at")

    def __init__(self, method, path, query="", body_size=0, dynamic=False,
                 connection_id=0, request_id=0):
        self.method = method
        self.path = path
        self.query = query
        self.body_size = body_size
        self.dynamic = dynamic
        self.connection_id = connection_id
        self.request_id = request_id
        self.issued_at = 0.0

    @property
    def is_post(self):
        return self.method == "POST"

    def wire_size(self):
        """Approximate request size on the wire, in bytes."""
        size = _BASE_REQUEST_OVERHEAD + len(self.path) + len(self.query)
        return size + self.body_size

    def __repr__(self):
        suffix = f"?{self.query}" if self.query else ""
        return f"<HttpRequest {self.method} {self.path}{suffix}>"


class HttpResponse:
    """One server response."""

    __slots__ = ("status_code", "content_length", "buffer", "server_name",
                 "error_detail")

    def __init__(self, status_code, content_length=0, buffer=None,
                 server_name="", error_detail=""):
        self.status_code = status_code
        self.content_length = content_length
        self.buffer = buffer
        self.server_name = server_name
        self.error_detail = error_detail

    @property
    def ok(self):
        return 200 <= self.status_code < 300

    @property
    def reason(self):
        return STATUS_REASONS.get(self.status_code, "Unknown")

    def wire_size(self):
        """Approximate response size on the wire, in bytes."""
        return _BASE_RESPONSE_OVERHEAD + max(0, self.content_length)

    @classmethod
    def error(cls, status_code, server_name="", detail=""):
        """An error response with a small fixed-size body."""
        return cls(
            status_code,
            content_length=320,
            buffer=None,
            server_name=server_name,
            error_detail=detail,
        )

    def __repr__(self):
        return (
            f"<HttpResponse {self.status_code} {self.reason} "
            f"len={self.content_length}>"
        )
