"""Server process runtime: workers, queue, crashes, supervision.

This is the glue between a :class:`~repro.webservers.base.BaseWebServer`
(application code) and the event simulation.  It models the server as one
child process with ``worker_count`` threads:

* requests arriving while the child is down are refused;
* a free worker executes the handler; the CPU cycles the handler charged
  (OS dispatch, copies, conversions, application overhead) become the
  worker's busy time, so mutated OS code that does more — or endless —
  work directly stretches service time;
* a :class:`~repro.sim.errors.SimSegfault` escaping the handler kills the
  whole child (it is one native process); a supervised server's master
  respawns it after ``restart_delay``, giving up after
  ``max_respawn_burst`` consecutive startup failures — an unsupervised
  server just stays dead until the experiment's watchdog intervenes;
* a :class:`~repro.sim.errors.SimBlockedForever` leaves that worker hung
  forever (the thread is parked on a leaked lock); the process survives
  with one thread less;
* a :class:`~repro.sim.errors.CpuBudgetExceeded` marks the worker hung
  *and* flags the process as a CPU hog — the observable the watchdog
  translates into the paper's KCP events.
"""

import enum

from repro.sim.cpu import CpuMeter
from repro.sim.errors import (
    CpuBudgetExceeded,
    SimBlockedForever,
    SimSegfault,
)
from repro.webservers.base import ServerStartupError
from repro.webservers.http import HttpResponse

__all__ = ["RuntimeState", "ServerRuntime", "WorkerState"]

# Simulated CPU of the server machine, in cycles per second.  The paper's
# server is an Athlon XP 2600+; the absolute value only fixes the time
# scale, calibrated so a typical static GET costs a few milliseconds.
DEFAULT_CPU_HZ = 400_000_000

# Sanity budget per handled request: ~8 simulated seconds of CPU.  Pristine
# requests use a fraction of a percent of this; only runaway mutants hit it.
DEFAULT_OPERATION_BUDGET = 8 * DEFAULT_CPU_HZ


class WorkerState(enum.Enum):
    """Lifecycle of one worker thread."""

    IDLE = "idle"
    BUSY = "busy"
    HUNG = "hung"


class RuntimeState(enum.Enum):
    """Lifecycle of the server process as the watchdog can observe it."""

    STOPPED = "stopped"      # never started or administratively stopped
    RUNNING = "running"
    RESPAWNING = "respawning"  # master is bringing the child back
    DEAD = "dead"            # died and nobody is bringing it back


class _Worker:
    __slots__ = ("index", "thread_id", "state", "request", "respond",
                 "completion_event")

    def __init__(self, index, pid):
        self.index = index
        self.thread_id = f"{pid}:worker{index}"
        self.state = WorkerState.IDLE
        self.request = None
        self.respond = None
        self.completion_event = None


class RuntimeStats:
    """Observable counters the watchdog and the metrics layer read."""

    def __init__(self):
        self.requests_accepted = 0
        self.requests_refused = 0
        self.responses_ok = 0
        self.responses_error = 0
        self.requests_lost = 0
        self.crashes = 0
        self.self_restarts = 0
        self.external_restarts = 0
        self.hung_worker_events = 0
        self.cpu_hog_events = 0
        self.startup_failures = 0


class ServerRuntime:
    """One deployed server: child process + supervision policy."""

    def __init__(self, server, os_instance, sim,
                 cpu_hz=DEFAULT_CPU_HZ,
                 operation_budget=DEFAULT_OPERATION_BUDGET):
        self.server = server
        self.os_instance = os_instance
        self.sim = sim
        self.cpu_hz = cpu_hz
        self.operation_budget = operation_budget
        # Fraction of the machine's CPU available to the server.  The
        # experiment harness lowers this slightly while an injector shares
        # the machine, modelling the injector's competition for cycles
        # (the paper's intrusiveness effect, Table 4).
        self.cpu_scale = 1.0
        self.state = RuntimeState.STOPPED
        self.ctx = None
        self.workers = []
        self.queue = []
        self.stats = RuntimeStats()
        self.last_success_time = -1.0
        self.last_attempt_time = -1.0
        self.cpu_hog_recent = False
        self._respawn_failures = 0
        self._respawn_event = None
        self._recent_crashes = []

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _spawn_child(self):
        """Create a fresh process and run the server's startup sequence.

        Returns True on success.  A fresh process means fresh user-mode OS
        state: heap, handles, locks — which is why restarting clears
        accumulated damage.
        """
        meter = CpuMeter(
            speed_hz=self.cpu_hz, operation_budget=self.operation_budget
        )
        ctx = self.os_instance.new_process(
            cpu=meter, name=f"{self.server.name}-child"
        )
        self.server.reset_process_state()
        try:
            self.server.startup(ctx)
        except (ServerStartupError, SimSegfault, SimBlockedForever,
                CpuBudgetExceeded):
            self.stats.startup_failures += 1
            ctx.terminate()
            return False
        ctx.record_startup_footprint()
        self.ctx = ctx
        self.workers = [
            _Worker(index, ctx.pid)
            for index in range(self.server.worker_count)
        ]
        self.queue = []
        return True

    def start(self):
        """Administrative start; returns True when the child came up."""
        if self.state == RuntimeState.RUNNING:
            return True
        if self._spawn_child():
            self.state = RuntimeState.RUNNING
            return True
        self.state = RuntimeState.DEAD
        return False

    def stop(self):
        """Administrative stop (kills the child)."""
        self._cancel_respawn()
        self._abort_all_requests()
        if self.ctx is not None:
            self.ctx.terminate()
        self.state = RuntimeState.STOPPED

    def kill(self):
        """Terminate the child without anyone planning to bring it back.

        Used by the operator-fault extension (a mistaken ``kill`` of the
        server process): unlike :meth:`stop`, the runtime is left DEAD, so
        the watchdog sees an unrecovered death (MIS) and repairs it.
        """
        self._cancel_respawn()
        self._abort_all_requests()
        if self.ctx is not None:
            self.ctx.terminate()
        self.state = RuntimeState.DEAD

    def restart(self):
        """Administrative kill + start (the watchdog's repair action)."""
        self.stop()
        self.stats.external_restarts += 1
        self._respawn_failures = 0
        self._recent_crashes = []
        self.cpu_hog_recent = False
        return self.start()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def deliver(self, request, respond):
        """A request arrives from the network.

        ``respond(response_or_none)`` is invoked exactly once, unless the
        request is silently lost to a hung worker (the client's timeout
        handles that case, as on a real network).
        """
        self.last_attempt_time = self.sim.now
        if self.state != RuntimeState.RUNNING:
            self.stats.requests_refused += 1
            respond(None)  # connection refused
            return
        if len(self.queue) >= self.server.backlog:
            self.stats.requests_refused += 1
            respond(None)
            return
        self.stats.requests_accepted += 1
        self.queue.append((request, respond))
        self._dispatch()

    def _idle_worker(self):
        for worker in self.workers:
            if worker.state == WorkerState.IDLE:
                return worker
        return None

    def _dispatch(self):
        while self.queue and self.state == RuntimeState.RUNNING:
            worker = self._idle_worker()
            if worker is None:
                return
            request, respond = self.queue.pop(0)
            self._run_handler(worker, request, respond)

    def _run_handler(self, worker, request, respond):
        """Execute the handler synchronously; schedule the completion."""
        ctx = self.ctx
        ctx.set_thread(worker.thread_id)
        ctx.cpu.begin_operation()
        worker.state = WorkerState.BUSY
        worker.request = request
        worker.respond = respond
        try:
            ctx.charge(self.server.app_overhead_cycles)
            response = self.server.handle(ctx, request)
        except SimBlockedForever:
            ctx.cpu.end_operation()
            self._worker_hung(worker)
            return
        except CpuBudgetExceeded:
            ctx.cpu.end_operation()
            self.stats.cpu_hog_events += 1
            self.cpu_hog_recent = True
            self._worker_hung(worker)
            return
        except (SimSegfault, Exception):
            # An access violation — or application code choking on garbage
            # an OS fault handed it — takes the whole child down.
            ctx.cpu.end_operation()
            self._child_crashed()
            return
        cycles = ctx.cpu.end_operation()
        service_time = cycles / (self.cpu_hz * self.cpu_scale)
        worker.completion_event = self.sim.schedule(
            service_time, self._complete, worker, response
        )

    def _complete(self, worker, response):
        respond = worker.respond
        worker.state = WorkerState.IDLE
        worker.request = None
        worker.respond = None
        worker.completion_event = None
        if response is not None and response.ok:
            self.stats.responses_ok += 1
            self.last_success_time = self.sim.now
        else:
            self.stats.responses_error += 1
        respond(response)
        self._dispatch()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _worker_hung(self, worker):
        """The worker thread is parked forever.

        Its request gets no response while the process lives (the client's
        timeout covers that); the responder is kept so that killing the
        process resets the connection immediately, as TCP would.
        """
        self.stats.hung_worker_events += 1
        worker.state = WorkerState.HUNG
        worker.request = None
        self.stats.requests_lost += 1

    def _abort_all_requests(self):
        """Fail every in-flight and queued request (connection reset).

        Covers busy *and* hung workers: killing the process resets the
        sockets their clients are still waiting on.
        """
        for worker in self.workers:
            if worker.respond is not None:
                if worker.completion_event is not None:
                    self.sim.cancel(worker.completion_event)
                respond = worker.respond
                worker.state = WorkerState.IDLE
                worker.request = None
                worker.respond = None
                worker.completion_event = None
                self.stats.responses_error += 1
                respond(None)
        for _request, respond in self.queue:
            self.stats.responses_error += 1
            respond(None)
        self.queue = []

    def _child_crashed(self):
        """The child process died (access violation in some thread).

        Every connection — including the faulting worker's and any parked
        on hung workers — is reset by :meth:`_abort_all_requests`.
        """
        self.stats.crashes += 1
        self._abort_all_requests()
        if self.ctx is not None:
            self.ctx.terminate()
        now = self.sim.now
        window = self.server.crash_burst_window
        self._recent_crashes = [
            t for t in self._recent_crashes if now - t <= window
        ]
        self._recent_crashes.append(now)
        crash_loop = (
            len(self._recent_crashes) >= self.server.crash_burst_limit
        )
        if self.server.self_restart and not crash_loop:
            self.state = RuntimeState.RESPAWNING
            self._respawn_event = self.sim.schedule(
                self.server.restart_delay, self._attempt_respawn
            )
        else:
            # Unsupervised server, or a supervised master giving up on a
            # crash-looping child: dead until the administrator acts.
            self.state = RuntimeState.DEAD

    def _attempt_respawn(self):
        self._respawn_event = None
        if self.state != RuntimeState.RESPAWNING:
            return
        if self._spawn_child():
            self.state = RuntimeState.RUNNING
            self.stats.self_restarts += 1
            self._respawn_failures = 0
            return
        self._respawn_failures += 1
        if self._respawn_failures >= self.server.max_respawn_burst:
            # The master gives up; administrator intervention required.
            self.state = RuntimeState.DEAD
            return
        self._respawn_event = self.sim.schedule(
            self.server.restart_delay, self._attempt_respawn
        )

    def _cancel_respawn(self):
        if self._respawn_event is not None:
            self.sim.cancel(self._respawn_event)
            self._respawn_event = None

    # ------------------------------------------------------------------
    # Health (what a watchdog can observe from outside)
    # ------------------------------------------------------------------
    def is_dead(self):
        """True when the server is down with nobody respawning it."""
        return self.state == RuntimeState.DEAD

    def hung_workers(self):
        """Number of worker threads parked forever."""
        return sum(1 for w in self.workers
                   if w.state == WorkerState.HUNG)

    def all_workers_hung(self):
        """True when no worker can ever serve again (total hang)."""
        return (
            bool(self.workers)
            and all(w.state == WorkerState.HUNG for w in self.workers)
        )

    def responsive_since(self, time):
        """True when the server produced a success after ``time``."""
        return self.last_success_time >= time

    def health_snapshot(self):
        """Externally observable health, for diagnostics and tests."""
        return {
            "state": self.state.value,
            "hung_workers": self.hung_workers(),
            "queue": len(self.queue),
            "last_success_time": self.last_success_time,
            "cpu_hog_recent": self.cpu_hog_recent,
        }

    def __repr__(self):
        return (
            f"ServerRuntime({self.server.name}, state={self.state.value}, "
            f"hung={self.hung_workers()})"
        )
