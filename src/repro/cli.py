"""Command-line interface: ``repro-bench`` / ``python -m repro``.

Subcommands mirror the methodology's steps and the paper's exhibits:

* ``scan``      — G-SWFIT step 1: scan an OS build, print/save the faultload
* ``profile``   — profiling phase: print the Table 2 analogue
* ``faultload`` — full pipeline: scan + profile + fine-tune (Table 3 row)
* ``run``       — one server/OS campaign (Table 5 rows)
* ``campaign``  — the same campaign sharded across worker processes,
  with scan caching and checkpoint/resume
* ``serve``     — campaign-as-a-service: accept specs over HTTP into a
  durable queue, run them with crash-safe recovery
* ``tables``    — regenerate every table for a scaled campaign
"""

import argparse
import json
import sys

from repro.faults.faultload import Faultload
from repro.faults.types import iter_fault_types
from repro.gswfit.scanner import scan_build
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment, profile_servers
from repro.harness.metrics import DependabilityMetrics
from repro.ossim.builds import ALL_BUILDS, get_build
from repro.pipeline import FaultloadPipeline
from repro.profiling.usage import UsageTable
from repro.reporting.report import (
    table1_fault_types,
    table2_api_usage,
    table3_faultload_details,
    table5_results,
)
from repro.webservers.registry import (
    BENCHMARKED_SERVERS,
    PROFILING_SERVERS,
    server_names,
)

__all__ = ["main"]


def _add_common(parser):
    parser.add_argument(
        "--os", dest="os_codename", default="nt50",
        choices=sorted(ALL_BUILDS),
        help="OS build to target (default: nt50)",
    )
    parser.add_argument(
        "--seed", type=int, default=2004, help="base random seed"
    )


def _add_snapshot(parser):
    parser.add_argument(
        "--no-snapshot-epochs", action="store_true",
        help="boot + warm up every machine epoch from scratch instead "
             "of restoring the copy-on-write epoch snapshot "
             "(digest-identical either way; this is the slow path the "
             "determinism gate compares against)",
    )
    parser.add_argument(
        "--pristine-slots", action="store_true",
        help="restart the machine after every injection slot (the "
             "paper's Fig. 4 isolation protocol); near-free with epoch "
             "snapshots on, changes the measured timeline so digests "
             "differ from the default back-to-back schedule",
    )
    parser.add_argument(
        "--snapshot-cache", type=int, metavar="N",
        help="per-process LRU capacity of the epoch snapshot cache "
             "(default 8 entries)",
    )


def _apply_snapshot(args, config):
    config.snapshot_epochs = not args.no_snapshot_epochs
    config.pristine_slots = args.pristine_slots
    if args.snapshot_cache is not None:
        from repro.harness.snapshot import snapshot_cache
        snapshot_cache().resize(args.snapshot_cache)


def _add_operator_specs(parser):
    parser.add_argument(
        "--operator-spec", dest="operator_specs", action="append",
        metavar="FILE", default=None,
        help="declarative operator spec JSON (repeatable; DESIGN.md "
             "§16) — a re-expression (\"replaces\": true) swaps in for "
             "its built-in Table 1 operator, a new fault type extends "
             "the faultload",
    )


def _add_activation(parser):
    parser.add_argument(
        "--adaptive-slots", action="store_true",
        help="truncate a slot once the faulted function's profiled "
             "activation deadline passes with zero probe hits; cuts "
             "campaign time, deterministic for any worker count",
    )
    parser.add_argument(
        "--no-track-activation", action="store_true",
        help="disable fault-activation probes (the ACT%% column and "
             "adaptive slots need them; mutants revert to unprobed "
             "bytecode)",
    )


def _add_sequential(parser):
    parser.add_argument(
        "--sequential", action="store_true",
        help="sequential statistical injection: stratify the faultload "
             "by fault type, run batches, and stop each stratum once "
             "the confidence interval of every tracked metric "
             "(SPCf/THRf/RTMf, ADMf, ER%%f) is tighter than the target "
             "— run until confidence, not until done",
    )
    parser.add_argument(
        "--ci-target", type=float, default=None, metavar="FRACTION",
        help="target relative interval half-width per metric "
             "(default: 0.10; a stratum stops when half_width <= "
             "target * max(|mean|, 1))",
    )
    parser.add_argument(
        "--ci-confidence", type=float, default=None, metavar="LEVEL",
        help="two-sided confidence level of the intervals "
             "(default: 0.95)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="SLOTS",
        help="slots per sequential batch — the dispatch unit and the "
             "batch-means observation unit (default: one conformance "
             "batch)",
    )
    parser.add_argument(
        "--min-slots", type=int, default=None, metavar="SLOTS",
        help="per-stratum floor: never stop on confidence before this "
             "many slots (default: two batches)",
    )
    parser.add_argument(
        "--max-slots", type=int, default=None, metavar="SLOTS",
        help="per-stratum ceiling: stop after this many slots even "
             "without convergence (default: the stratum's full size)",
    )


def _validate_sequential_args(args):
    """Flag-combination checks for the sequential sampling flags."""
    knobs = (
        ("--ci-target", args.ci_target),
        ("--ci-confidence", args.ci_confidence),
        ("--batch-size", args.batch_size),
        ("--min-slots", args.min_slots),
        ("--max-slots", args.max_slots),
    )
    if not args.sequential:
        for name, value in knobs:
            if value is not None:
                return f"{name} requires --sequential"
        return None
    if args.ci_target is not None and args.ci_target <= 0:
        return f"--ci-target must be positive, got {args.ci_target}"
    if args.ci_confidence is not None and not (
            0.0 < args.ci_confidence < 1.0):
        return (f"--ci-confidence must be in (0, 1), "
                f"got {args.ci_confidence}")
    if args.batch_size is not None and args.batch_size < 1:
        return f"--batch-size must be >= 1, got {args.batch_size}"
    if args.min_slots is not None and args.min_slots < 1:
        return f"--min-slots must be >= 1, got {args.min_slots}"
    if args.max_slots is not None:
        if args.max_slots < 1:
            return f"--max-slots must be >= 1, got {args.max_slots}"
        if args.min_slots is not None and args.max_slots < args.min_slots:
            return (f"--max-slots ({args.max_slots}) must be >= "
                    f"--min-slots ({args.min_slots})")
    return None


def _apply_sequential(args, config):
    config.sequential = args.sequential
    if args.ci_target is not None:
        config.ci_target = args.ci_target
    if args.ci_confidence is not None:
        config.ci_confidence = args.ci_confidence
    config.sequential_batch_slots = args.batch_size
    config.sequential_min_slots = args.min_slots
    config.sequential_max_slots = args.max_slots


def _make_config(args, **overrides):
    config = ExperimentConfig.scaled(**overrides)
    config.os_codename = args.os_codename
    config.seed = args.seed
    return config


def _load_operator_specs(paths):
    """Load, validate and install-check ``--operator-spec`` files.

    Returns ``(specs, error)``: a tuple of canonical spec dicts ready
    for ``ExperimentConfig.operator_specs``, or an rc-2 error string
    whose message is the validator's path-precise complaint.
    """
    if not paths:
        return None, None
    from repro.gswfit.dsl import OperatorSpec, SpecValidationError

    specs = []
    seen = {}
    for path in paths:
        try:
            spec = OperatorSpec.load(path)
        except SpecValidationError as exc:
            return None, f"--operator-spec: {exc}"
        previous = seen.get(spec.fault_type_name)
        if previous is not None and previous != str(path):
            return None, (
                f"--operator-spec: duplicate spec for fault type "
                f"{spec.fault_type_name!r} ({previous} and {path})"
            )
        seen[spec.fault_type_name] = str(path)
        specs.append(spec.to_dict())
    return tuple(specs), None


def _install_operator_specs(specs):
    """Register compiled operators for already-validated spec dicts."""
    if specs:
        from repro.gswfit.dsl import install_spec_operators

        install_spec_operators(specs)


def _cmd_scan(args):
    specs, error = _load_operator_specs(
        getattr(args, "operator_specs", None)
    )
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    _install_operator_specs(specs)
    build = get_build(args.os_codename)
    faultload = scan_build(build)
    counts = faultload.counts_by_type()
    print(f"Scanned {build.display_name}: {len(faultload)} fault locations")
    for fault_type in iter_fault_types():
        print(f"  {fault_type.value:5s} {counts[fault_type]}")
    if args.validate:
        from repro.faults.validate import validate_faultload

        report = validate_faultload(faultload)
        print(report)
        if not report.ok:
            return 1
    if args.output:
        faultload.save(args.output)
        print(f"faultload written to {args.output}")
    return 0


def _cmd_profile(args):
    config = _make_config(args)
    tracers = profile_servers(
        config, PROFILING_SERVERS, seconds=args.seconds
    )
    usage = UsageTable.from_tracers(tracers)
    print(table2_api_usage(usage).render())
    return 0


def _cmd_faultload(args):
    config = _make_config(args)
    pipeline = FaultloadPipeline(config, profile_seconds=args.seconds)
    tuned = pipeline.run()
    build = get_build(args.os_codename)
    print(table3_faultload_details({build.display_name: tuned}).render())
    if args.output:
        tuned.save(args.output)
        print(f"tuned faultload written to {args.output}")
    return 0


def _print_campaign_result(args, config, result, manifest=None,
                           telemetry_path=None):
    build = get_build(args.os_codename)
    key = (build.display_name, args.server)
    print(table5_results({key: result}).render())
    if result.iterations and (result.baseline or result.profile_mode):
        metrics = DependabilityMetrics.from_results(result)
        print()
        print("Dependability metrics:")
        print(json.dumps(metrics.as_dict(), indent=2))
    if args.export:
        from repro.reporting.export import export_campaign

        written = export_campaign(
            result, args.export, config=config, manifest=manifest,
            telemetry_path=telemetry_path,
        )
        print(f"results exported: "
              f"{', '.join(str(path) for path in written)}")


def _cmd_run(args):
    config = _make_config(
        args, fault_sample=args.faults, connections=args.connections
    )
    config.server_name = args.server
    config.track_activation = not args.no_track_activation
    config.adaptive_slots = args.adaptive_slots
    _apply_snapshot(args, config)
    experiment = WebServerExperiment(config)
    result = experiment.run_campaign()
    _print_campaign_result(args, config, result)
    return 0


def _validate_campaign_args(args):
    """Check flag combinations up front; returns an error string or
    None.  A bad combination should cost the user one clear line, not a
    traceback from deep inside the campaign."""
    if args.resume and not args.journal:
        return "--resume requires --journal"
    _specs, error = _load_operator_specs(
        getattr(args, "operator_specs", None)
    )
    if error is not None:
        return error
    if args.workers is not None and args.workers < 1:
        return f"--workers must be >= 1, got {args.workers}"
    if args.slots_per_shard is not None and args.slots_per_shard < 1:
        return (f"--slots-per-shard must be >= 1, "
                f"got {args.slots_per_shard}")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        return (f"--shard-timeout must be positive, "
                f"got {args.shard_timeout}")
    if args.max_retries < 0:
        return f"--max-retries must be >= 0, got {args.max_retries}"
    error = _validate_sequential_args(args)
    if error is not None:
        return error
    if args.backend != "fabric":
        if args.fabric_listen is not None:
            return "--fabric-listen requires --backend fabric"
        if args.fabric_loopback is not None:
            return "--fabric-loopback requires --backend fabric"
        return None
    if args.fabric_listen is not None:
        from repro.harness.fabric.protocol import parse_address
        try:
            parse_address(args.fabric_listen)
        except ValueError as exc:
            return f"--fabric-listen: {exc}"
    if args.fabric_loopback is not None:
        if args.fabric_loopback < 0:
            return (f"--fabric-loopback must be >= 0, "
                    f"got {args.fabric_loopback}")
        if args.fabric_loopback == 0 and args.fabric_listen is None:
            return ("--fabric-loopback 0 needs --fabric-listen so "
                    "external workers can supply the capacity")
    return None


def _campaign_config(args):
    """Build the :class:`ExperimentConfig` a ``campaign`` invocation
    describes.  The service daemon calls this with the same namespace a
    CLI parse would produce, so a spec submitted over HTTP yields the
    same campaign key — and the same metrics digest — as the equivalent
    command line, by construction rather than by parallel maintenance.
    """
    config = _make_config(
        args, fault_sample=args.faults, connections=args.connections
    )
    config.server_name = args.server
    config.integrity_audit = not args.no_integrity_audit
    if args.reboot_budget is not None:
        config.reboot_budget = args.reboot_budget
    config.inject_faults = not args.no_inject
    config.track_activation = not args.no_track_activation
    config.adaptive_slots = args.adaptive_slots
    specs, _error = _load_operator_specs(
        getattr(args, "operator_specs", None)
    )
    config.operator_specs = specs
    _apply_snapshot(args, config)
    _apply_sequential(args, config)
    return config


def _campaign_kwargs(args):
    """ParallelCampaign keyword arguments for a ``campaign`` namespace
    (shared with the service daemon, like :func:`_campaign_config`)."""
    fabric_listen = None
    if args.fabric_listen is not None:
        from repro.harness.fabric.protocol import parse_address
        fabric_listen = parse_address(args.fabric_listen)
    return {
        "workers": args.workers,
        "slots_per_shard": args.slots_per_shard,
        "journal_path": args.journal,
        "resume": args.resume,
        "cache_dir": args.cache_dir,
        "warm_mutants": not args.no_warm_mutants,
        "shard_timeout": args.shard_timeout,
        "max_retries": args.max_retries,
        "telemetry_path": args.telemetry,
        "manifest_path": args.manifest,
        "backend": args.backend,
        "fabric_listen": fabric_listen,
        "fabric_loopback": args.fabric_loopback,
    }


def _cmd_campaign(args):
    from repro.harness.campaign import ParallelCampaign

    error = _validate_campaign_args(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    config = _campaign_config(args)
    campaign = ParallelCampaign(config, **_campaign_kwargs(args))
    result = campaign.run(
        include_baseline=not args.no_baseline,
        include_profile_mode=not args.no_profile,
    )
    print(f"campaign: {campaign.workers} worker(s), "
          f"{config.rules.iterations} iteration(s), "
          f"shard size {campaign.slots_per_shard} slots")
    if campaign.warmup_stats is not None:
        stats = campaign.warmup_stats
        print(f"mutant warm-up: {stats['compiled']} compiled, "
              f"{stats['cached']} cached, {stats['failed']} failed "
              f"of {stats['slots']} slots")
    manifest = campaign.manifest
    if manifest is not None:
        print(f"metrics digest: {manifest.metrics_digest}")
        if campaign.manifest_path:
            print(f"run manifest written to {campaign.manifest_path}")
    supervision = manifest.supervision if manifest else {}
    if supervision.get("retries") or supervision.get("pool_rebuilds"):
        print(f"supervision: {supervision['retries']} retries, "
              f"{supervision['pool_rebuilds']} pool rebuilds"
              + (", serial fallback"
                 if supervision.get("serial_fallback") else ""))
    integrity = manifest.integrity if manifest else {}
    if integrity.get("enabled"):
        print(f"integrity: {integrity['contaminated_slots']} "
              f"contaminated slot(s), {integrity['reboots']} verified "
              f"reboot(s) (budget {integrity['reboot_budget']}/shard)")
        if integrity.get("violation_kinds"):
            kinds = ", ".join(
                f"{kind}={count}" for kind, count
                in integrity["violation_kinds"].items()
            )
            print(f"  violation kinds: {kinds}")
        if integrity.get("unrebooted_contamination"):
            print(f"WARNING: reboot budget exhausted — "
                  f"{integrity['unrebooted_contamination']} "
                  f"contaminated slot(s) measured without a reboot",
                  file=sys.stderr)
    activation = manifest.activation if manifest else {}
    if activation.get("enabled"):
        rate = activation.get("activation_rate")
        rate_text = "n/a" if rate is None else f"{100.0 * rate:.1f}%"
        print(f"activation: {activation['faults_activated']} of "
              f"{activation['faults_injected']} fault(s) activated "
              f"({rate_text})")
        if activation.get("adaptive"):
            print(f"  adaptive slots: {activation['slots_truncated']} "
                  f"truncated, {activation['sim_seconds_saved']:.1f} "
                  f"sim-seconds saved "
                  f"({activation['deadline_functions']} profiled "
                  f"deadline(s))")
    fabric = manifest.fabric if manifest else {}
    if fabric.get("backend") == "fabric":
        alive = sum(1 for worker in fabric.get("roster", [])
                    if worker.get("alive"))
        print(f"fabric: {fabric.get('workers', 0)} worker(s) "
              f"({alive} alive), {fabric.get('steals', 0)} steal(s), "
              f"{fabric.get('requeues', 0)} requeue(s), "
              f"{fabric.get('worker_deaths', 0)} death(s)")
    sequential = manifest.sequential if manifest else {}
    if sequential.get("enabled"):
        saved = sequential.get("slots_saved_percent")
        saved_text = "n/a" if saved is None else f"{saved:.1f}%"
        print(f"sequential: {sequential['executed_slots']} of "
              f"{sequential['planned_slots']} slot(s) executed "
              f"({sequential['slots_skipped']} skipped, {saved_text} "
              f"saved) at ci-target {sequential['ci_target']}, "
              f"confidence {sequential['ci_confidence']}")
        reasons = {}
        for per_iteration in sequential.get("stop_reasons", {}).values():
            for reason in per_iteration:
                reasons[reason] = reasons.get(reason, 0) + 1
        if reasons:
            text = ", ".join(f"{reason}={count}" for reason, count
                             in sorted(reasons.items()))
            print(f"  stratum stop reasons: {text}")
    snapshot = manifest.snapshot if manifest else {}
    if snapshot.get("enabled"):
        total = (snapshot.get("epochs_booted", 0)
                 + snapshot.get("epochs_restored", 0))
        line = (f"snapshots: {snapshot.get('epochs_restored', 0)} of "
                f"{total} epoch(s) restored")
        if snapshot.get("pristine_slots"):
            line += (f" ({snapshot.get('pristine_restarts', 0)} "
                     f"pristine restart(s))")
        print(line)
    if result.degraded:
        print(f"WARNING: campaign degraded — "
              f"{len(result.quarantine)} shard(s) quarantined:",
              file=sys.stderr)
        for entry in result.quarantine:
            print(f"  iteration {entry['iteration']} shard "
                  f"{entry['shard_index']} (slots {entry['first_slot']}"
                  f"..{entry['first_slot'] + entry['num_slots'] - 1}): "
                  f"{entry['failures'][-1]}", file=sys.stderr)
    _print_campaign_result(
        args, config, result, manifest=manifest,
        telemetry_path=campaign.telemetry_path,
    )
    return 0


def _cmd_campaign_worker(args):
    from repro.harness.fabric.protocol import parse_address
    from repro.harness.fabric.worker import FabricWorker

    try:
        host, port = parse_address(args.address)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.max_reconnects < 0:
        print(f"--max-reconnects must be >= 0, got "
              f"{args.max_reconnects}", file=sys.stderr)
        return 2
    worker = FabricWorker(
        host, port, name=args.name, max_reconnects=args.max_reconnects
    )
    completed = worker.run()
    print(f"worker {worker.name}: {completed} shard(s) completed"
          + (f" ({worker.reconnects} reconnect(s))"
             if worker.reconnects else ""))
    return 0


def _cmd_serve(args):
    from repro.harness.service import serve

    return serve(args)


def _cmd_oltp(args):
    from repro.oltp import OltpExperiment
    from repro.reporting.tables import TableBuilder

    config = _make_config(
        args, fault_sample=args.faults, connections=args.connections
    )
    config.server_name = "walnut"
    print("fine-tuning the faultload for the OLTP domain...")
    tuned = OltpExperiment(config).domain_tuned_faultload(
        profile_seconds=args.seconds
    )
    table = TableBuilder(
        ["Engine", "Row", "TPS", "RTM(ms)", "ER%", "violations",
         "MIS", "KNS", "KCP"],
        title="OLTP dependability benchmark",
    )
    for engine in ("walnut", "breezy"):
        experiment = OltpExperiment(
            config.with_target(server_name=engine)
        )
        baseline = experiment.run_baseline()
        table.add_row(engine, "baseline", f"{baseline.tps:.1f}",
                      f"{baseline.rtm_ms:.1f}",
                      f"{baseline.er_percent:.2f}",
                      baseline.integrity_violations, 0, 0, 0)
        result = experiment.run_injection(faultload=tuned, iteration=1)
        metrics = result.metrics
        table.add_row(engine, "faultload", f"{metrics.tps:.1f}",
                      f"{metrics.rtm_ms:.1f}",
                      f"{metrics.er_percent:.2f}",
                      metrics.integrity_violations,
                      result.mis, result.kns, result.kcp)
    print(table.render())
    return 0


def _cmd_tables(args):
    print(table1_fault_types().render())
    print()
    faultloads = {}
    for codename in sorted(ALL_BUILDS):
        build = get_build(codename)
        faultloads[build.display_name] = scan_build(build)
    print(table3_faultload_details(faultloads).render())
    print()
    results = {}
    for codename in sorted(ALL_BUILDS):
        for server in BENCHMARKED_SERVERS:
            config = _make_config(
                args, fault_sample=args.faults,
                connections=args.connections,
            )
            config.os_codename = codename
            config.server_name = server
            experiment = WebServerExperiment(config)
            build = get_build(codename)
            results[(build.display_name, server)] = (
                experiment.run_campaign()
            )
    print(table5_results(results).render())
    return 0


def build_parser():
    """Construct the argparse parser for repro-bench."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Dependability benchmarking with software-fault faultloads "
            "(DSN 2004 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scan = subparsers.add_parser("scan", help="scan an OS build (step 1)")
    _add_common(scan)
    scan.add_argument("--output", help="write the faultload JSON here")
    scan.add_argument(
        "--validate", action="store_true",
        help="verify every location builds a mutant before writing",
    )
    _add_operator_specs(scan)
    scan.set_defaults(func=_cmd_scan)

    profile = subparsers.add_parser(
        "profile", help="profile API usage of all servers (Table 2)"
    )
    _add_common(profile)
    profile.add_argument(
        "--seconds", type=float, default=40.0,
        help="profiling workload duration per server",
    )
    profile.set_defaults(func=_cmd_profile)

    faultload = subparsers.add_parser(
        "faultload", help="full pipeline: scan+profile+tune (Table 3)"
    )
    _add_common(faultload)
    faultload.add_argument("--seconds", type=float, default=40.0)
    faultload.add_argument("--output")
    faultload.set_defaults(func=_cmd_faultload)

    run = subparsers.add_parser(
        "run", help="benchmark one server/OS pair (Table 5)"
    )
    _add_common(run)
    run.add_argument(
        "--server", default="apache", choices=server_names()
    )
    run.add_argument("--faults", type=int, default=96,
                     help="faultload subsample size (None-like: 0 = full)")
    run.add_argument("--connections", type=int, default=16)
    _add_activation(run)
    _add_snapshot(run)
    run.add_argument("--export", help="write results to this directory")
    run.set_defaults(func=_cmd_run)

    campaign = subparsers.add_parser(
        "campaign",
        help="benchmark one server/OS pair in parallel, with "
             "checkpoint/resume and scan caching",
    )
    _add_common(campaign)
    campaign.add_argument(
        "--server", default="apache", choices=server_names()
    )
    campaign.add_argument("--faults", type=int, default=96,
                          help="faultload subsample size (0 = full)")
    campaign.add_argument("--connections", type=int, default=16)
    campaign.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: cpu count); results are "
             "identical for any worker count",
    )
    campaign.add_argument(
        "--slots-per-shard", type=int, default=None,
        help="slots per worker shard "
             "(default: one conformance batch)",
    )
    campaign.add_argument(
        "--journal", help="JSONL checkpoint journal for this campaign"
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip units already recorded in --journal",
    )
    campaign.add_argument(
        "--cache-dir",
        help="disk cache directory for build scans and compiled mutants",
    )
    campaign.add_argument(
        "--no-warm-mutants", action="store_true",
        help="skip the up-front mutant compilation pass",
    )
    campaign.add_argument(
        "--shard-timeout", type=float, default=None,
        help="wall-clock deadline in seconds per shard attempt; a "
             "shard exceeding it is treated as hung and retried",
    )
    campaign.add_argument(
        "--max-retries", type=int, default=2,
        help="failures a shard may accumulate before it is "
             "quarantined (default: 2)",
    )
    campaign.add_argument(
        "--telemetry",
        help="JSONL supervision/phase event stream (default: next to "
             "--journal when one is given)",
    )
    campaign.add_argument(
        "--manifest",
        help="write the run manifest (with the deterministic metrics "
             "digest) to this path (default: next to --journal)",
    )
    campaign.add_argument(
        "--no-baseline", action="store_true",
        help="skip the baseline phase",
    )
    campaign.add_argument(
        "--no-profile", action="store_true",
        help="skip the profile-mode (intrusiveness) phase",
    )
    campaign.add_argument(
        "--no-integrity-audit", action="store_true",
        help="skip the slot-gap state-integrity audits (and the "
             "verified reboots they trigger)",
    )
    campaign.add_argument(
        "--reboot-budget", type=int, default=None,
        help="verified machine reboots allowed per shard after "
             "contaminated slots (default: 2); when exhausted the run "
             "continues and keeps flagging",
    )
    campaign.add_argument(
        "--no-inject", action="store_true",
        help="control run: walk the slot protocol with the injector "
             "attached but swap no code (any integrity violation is an "
             "auditor false positive — the clean-machine CI gate)",
    )
    campaign.add_argument(
        "--backend", choices=("pool", "fabric"), default="pool",
        help="shard dispatch backend: in-process worker pool "
             "(default) or the socket coordinator/worker fabric; the "
             "metrics digest is identical either way",
    )
    campaign.add_argument(
        "--fabric-listen", metavar="HOST:PORT",
        help="fabric only: accept external campaign-worker processes "
             "on this address (default: loopback, ephemeral port)",
    )
    campaign.add_argument(
        "--fabric-loopback", type=int, default=None, metavar="N",
        help="fabric only: local worker processes to spawn (default: "
             "--workers when no --fabric-listen, else 0)",
    )
    _add_activation(campaign)
    _add_snapshot(campaign)
    _add_sequential(campaign)
    _add_operator_specs(campaign)
    campaign.add_argument("--export",
                          help="write results to this directory")
    campaign.set_defaults(func=_cmd_campaign)

    worker = subparsers.add_parser(
        "campaign-worker",
        help="join a distributed campaign as a fabric worker",
    )
    worker.add_argument(
        "address", metavar="HOST:PORT",
        help="the campaign coordinator's --fabric-listen address",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker name in the coordinator's roster "
             "(default: hostname-pid)",
    )
    worker.add_argument(
        "--max-reconnects", type=int, default=0, metavar="N",
        help="redial the coordinator up to N times after a dropped "
             "connection, with exponential backoff + jitter "
             "(default: 0 — die on first loss)",
    )
    worker.set_defaults(func=_cmd_campaign_worker)

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign service daemon: accept campaign specs "
             "over HTTP, queue them durably, run them through the "
             "campaign engine with crash-safe recovery",
    )
    serve.add_argument(
        "--home", required=True,
        help="service state directory (spec queue, per-campaign "
             "journals, exports); restarting with the same --home "
             "resumes interrupted work",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="HTTP port (default: 0 — pick an ephemeral port and "
             "print it)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=16, metavar="N",
        help="admission control: queued + running campaigns beyond "
             "this are shed with a retryable 429 (default: 16)",
    )
    serve.add_argument(
        "--campaign-budget", type=float, default=None, metavar="SECONDS",
        help="per-campaign wall-clock budget; a campaign past it is "
             "interrupted at the next shard-round boundary and marked "
             "failed (default: unlimited)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=5.0, metavar="SECONDS",
        help="Retry-After hint returned with shed submissions "
             "(default: 5)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="runs a campaign may fail before it is abandoned "
             "(default: 3; retries back off exponentially)",
    )
    serve.set_defaults(func=_cmd_serve)

    oltp = subparsers.add_parser(
        "oltp", help="the OLTP case study (walnut vs breezy)"
    )
    _add_common(oltp)
    oltp.add_argument("--faults", type=int, default=48)
    oltp.add_argument("--connections", type=int, default=10)
    oltp.add_argument("--seconds", type=float, default=15.0,
                      help="profiling duration per engine")
    oltp.set_defaults(func=_cmd_oltp)

    tables = subparsers.add_parser(
        "tables", help="regenerate all tables at scaled cost"
    )
    _add_common(tables)
    tables.add_argument("--faults", type=int, default=64)
    tables.add_argument("--connections", type=int, default=12)
    tables.set_defaults(func=_cmd_tables)

    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "faults", None) == 0:
        args.faults = None
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
