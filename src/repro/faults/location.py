"""Fault locations.

A :class:`FaultLocation` is one entry of the fault-location map G-SWFIT's
scanning step produces: a specific construct inside a specific function of
the fault injection target where a specific fault type can be emulated.
Locations are plain serializable records — the injection step re-derives
the concrete mutation from ``(module, function, site_key)``, so a faultload
saved to JSON is portable across processes and runs, which is what makes
the experiments repeatable.
"""

from dataclasses import dataclass, field

from repro.faults.types import FaultType, lookup_fault_type

__all__ = ["FaultLocation"]


@dataclass(frozen=True)
class FaultLocation:
    """One injectable fault.

    Attributes
    ----------
    module:
        Importable python module path of the FIT code
        (e.g. ``repro.ossim.modules.ntdll50``).
    display_module:
        The OS-module name shown in reports (``Ntdll`` / ``Kernel32``).
    function:
        Name of the FIT function containing the site.
    fault_type:
        One of the twelve :class:`~repro.faults.types.FaultType` members.
    site_key:
        Operator-defined stable key identifying the construct within the
        function (survives re-scanning of unchanged source).
    lineno:
        Source line of the construct (1-based, absolute in the file).
    description:
        Human-readable account of the mutation this location produces.
    """

    module: str
    display_module: str
    function: str
    fault_type: FaultType
    site_key: str
    lineno: int = 0
    description: str = ""

    @property
    def fault_id(self):
        """Globally unique, stable identifier for this location."""
        return (
            f"{self.module}:{self.function}:"
            f"{self.fault_type.value}:{self.site_key}"
        )

    def to_dict(self):
        return {
            "module": self.module,
            "display_module": self.display_module,
            "function": self.function,
            "fault_type": self.fault_type.value,
            "site_key": self.site_key,
            "lineno": self.lineno,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            module=data["module"],
            display_module=data["display_module"],
            function=data["function"],
            fault_type=lookup_fault_type(data["fault_type"]),
            site_key=data["site_key"],
            lineno=data.get("lineno", 0),
            description=data.get("description", ""),
        )

    def __str__(self):
        return self.fault_id
