"""Fault model: the representative software fault types and faultloads.

This package encodes the *what* of the methodology — the twelve
field-data-derived fault types of the paper's Table 1, the notion of a
fault location inside a scanned binary/module, and the faultload container
that a dependability benchmark consumes.  The *how* (finding locations and
applying mutations) lives in :mod:`repro.gswfit`.
"""

from repro.faults.types import (
    ConstructNature,
    FaultType,
    FaultTypeInfo,
    ODCType,
    fault_type_info,
    iter_fault_types,
)
from repro.faults.fielddata import (
    FIELD_COVERAGE,
    total_field_coverage,
    coverage_by_odc_type,
    coverage_by_nature,
)
from repro.faults.location import FaultLocation
from repro.faults.faultload import Faultload

__all__ = [
    "ConstructNature",
    "FIELD_COVERAGE",
    "FaultLocation",
    "FaultType",
    "FaultTypeInfo",
    "Faultload",
    "ODCType",
    "coverage_by_nature",
    "coverage_by_odc_type",
    "fault_type_info",
    "iter_fault_types",
    "total_field_coverage",
]
