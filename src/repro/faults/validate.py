"""Faultload validation — the paper's Section 4 properties, as code.

A faultload shipped as a benchmark artifact must be *usable*: every
location must resolve against the current FIT code, rescanning must find
it again (stability), and the mix must look like a software faultload
(fault types present, missing-construct faults dominating).  This module
turns those properties into machine-checkable findings, used by the CLI
(``repro-bench scan --output``) and available to library users before
they commit a faultload to a long campaign.
"""

from dataclasses import dataclass

from repro.faults.types import ConstructNature, fault_type_info

__all__ = ["ValidationFinding", "ValidationReport", "validate_faultload"]


@dataclass(frozen=True)
class ValidationFinding:
    """One validation problem (or informational note)."""

    severity: str  # "error" | "warning"
    code: str
    detail: str

    def __str__(self):
        return f"[{self.severity}] {self.code}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of validating one faultload."""

    faultload_name: str
    checked: int
    findings: list

    @property
    def ok(self):
        return not any(f.severity == "error" for f in self.findings)

    def errors(self):
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self):
        return [f for f in self.findings if f.severity == "warning"]

    def __str__(self):
        state = "OK" if self.ok else "INVALID"
        lines = [
            f"faultload {self.faultload_name!r}: {state} "
            f"({self.checked} locations, {len(self.errors())} errors, "
            f"{len(self.warnings())} warnings)"
        ]
        lines.extend(str(finding) for finding in self.findings)
        return "\n".join(lines)


def validate_faultload(faultload, resolve_limit=None):
    """Validate ``faultload``; returns a :class:`ValidationReport`.

    Checks, in order of severity:

    * every location's mutant builds against the current FIT source
      (``resolve_limit`` bounds how many are tried; None = all);
    * no duplicate fault ids;
    * the empty faultload is flagged;
    * type-mix sanity (warnings): all locations of a single type, or a
      mix where wrong-construct faults outnumber missing-construct ones,
      does not look like a field-data-representative software faultload.
    """
    from repro.gswfit.mutator import MutantError, build_mutant

    findings = []
    locations = list(faultload)
    if not locations:
        findings.append(ValidationFinding(
            "error", "empty", "the faultload contains no locations"
        ))
        return ValidationReport(faultload.name, 0, findings)

    seen = set()
    for location in locations:
        if location.fault_id in seen:
            findings.append(ValidationFinding(
                "error", "duplicate",
                f"{location.fault_id} appears more than once",
            ))
        seen.add(location.fault_id)

    to_resolve = locations
    if resolve_limit is not None:
        to_resolve = locations[:resolve_limit]
    for location in to_resolve:
        try:
            build_mutant(location)
        except MutantError as exc:
            findings.append(ValidationFinding(
                "error", "unresolvable",
                f"{location.fault_id}: {exc}",
            ))
        except Exception as exc:  # anything else is a library bug
            findings.append(ValidationFinding(
                "error", "mutant-failure",
                f"{location.fault_id}: {type(exc).__name__}: {exc}",
            ))

    counts = faultload.counts_by_type()
    present = [ft for ft, count in counts.items() if count > 0]
    if len(present) == 1:
        findings.append(ValidationFinding(
            "warning", "single-type",
            f"only {present[0].value} faults present — fine for targeted "
            f"studies, not representative of field data",
        ))
    missing_total = sum(
        count for ft, count in counts.items()
        if fault_type_info(ft).nature is ConstructNature.MISSING
    )
    wrong_total = sum(
        count for ft, count in counts.items()
        if fault_type_info(ft).nature is ConstructNature.WRONG
    )
    if wrong_total > missing_total:
        findings.append(ValidationFinding(
            "warning", "mix-inverted",
            f"wrong-construct faults ({wrong_total}) outnumber "
            f"missing-construct faults ({missing_total}); field data "
            f"shows the opposite",
        ))
    return ValidationReport(faultload.name, len(to_resolve), findings)
