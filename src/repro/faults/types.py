"""The representative software fault types (the paper's Table 1).

The classification combines the *construct nature* (missing / wrong /
extraneous construct — how the defect relates to the programming-language
constructs of the program text) with the ODC defect type.  The twelve types
below are the ones the field-data study behind the paper found to account
for roughly half of all residual software faults; extraneous-construct
faults were too rare to justify inclusion, so none appear here.

Beyond Table 1, the registry is *extensible*: declarative operator specs
(DESIGN.md §16) can introduce new fault types at runtime.  A dynamic type
is an interned :class:`DynamicFaultType` token that quacks like a
:class:`FaultType` member (it has a ``.value``, it is hashable, identity
is equality), so faultloads, reports and campaign plumbing treat both
uniformly.  ``lookup_fault_type`` resolves names across both worlds and
``iter_fault_types`` appends dynamic types, in registration order, after
the Table 1 twelve.
"""

import enum
from dataclasses import dataclass

__all__ = [
    "ConstructNature",
    "DynamicFaultType",
    "FaultType",
    "FaultTypeInfo",
    "ODCType",
    "fault_type_info",
    "iter_fault_types",
    "lookup_fault_type",
    "register_fault_type",
    "reset_dynamic_fault_types",
    "unregister_fault_type",
]


class ConstructNature(enum.Enum):
    """How the defect relates to the program text."""

    MISSING = "missing"
    WRONG = "wrong"
    EXTRANEOUS = "extraneous"


class ODCType(enum.Enum):
    """Orthogonal Defect Classification defect types used by the paper."""

    ASSIGNMENT = "Assignment"
    CHECKING = "Checking"
    ALGORITHM = "Algorithm"
    INTERFACE = "Interface"
    FUNCTION = "Function"


class FaultType(enum.Enum):
    """The twelve fault types of the faultload (paper Table 1)."""

    MVI = "MVI"
    MVAV = "MVAV"
    MVAE = "MVAE"
    MIA = "MIA"
    MLAC = "MLAC"
    MFC = "MFC"
    MIFS = "MIFS"
    MLPC = "MLPC"
    WVAV = "WVAV"
    WLEC = "WLEC"
    WAEP = "WAEP"
    WPFV = "WPFV"


class DynamicFaultType:
    """An interned fault-type token for spec-defined fault types.

    Tokens are interned by ``value``: constructing the same name twice
    yields the same object, so the enum-style identity comparisons used
    throughout the codebase (``location.fault_type is stratum.fault_type``,
    dict keys, set membership) keep working.  Interning survives pickling
    (``__reduce__`` routes through the constructor), which is what lets
    fault locations for dynamic types cross the worker-process boundary.
    """

    __slots__ = ("value",)
    _interned = {}

    def __new__(cls, value):
        token = cls._interned.get(value)
        if token is None:
            token = super().__new__(cls)
            token.value = value
            cls._interned[value] = token
        return token

    def __repr__(self):
        return f"<DynamicFaultType.{self.value}>"

    def __reduce__(self):
        """Unpickle through ``__new__`` so interning is preserved."""
        return (DynamicFaultType, (self.value,))


@dataclass(frozen=True)
class FaultTypeInfo:
    """Static metadata for one fault type."""

    fault_type: FaultType
    description: str
    nature: ConstructNature
    odc_type: ODCType
    field_coverage_percent: float


_INFOS = {
    FaultType.MVI: FaultTypeInfo(
        FaultType.MVI,
        "Missing variable initialization",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        2.25,
    ),
    FaultType.MVAV: FaultTypeInfo(
        FaultType.MVAV,
        "Missing variable assignment using a value",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        2.25,
    ),
    FaultType.MVAE: FaultTypeInfo(
        FaultType.MVAE,
        "Missing variable assignment using an expression",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        3.0,
    ),
    FaultType.MIA: FaultTypeInfo(
        FaultType.MIA,
        'Missing "if (cond)" surrounding statement(s)',
        ConstructNature.MISSING,
        ODCType.CHECKING,
        4.32,
    ),
    FaultType.MLAC: FaultTypeInfo(
        FaultType.MLAC,
        'Missing "AND EXPR" in expression used as branch condition',
        ConstructNature.MISSING,
        ODCType.CHECKING,
        7.89,
    ),
    FaultType.MFC: FaultTypeInfo(
        FaultType.MFC,
        "Missing function call",
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        8.64,
    ),
    FaultType.MIFS: FaultTypeInfo(
        FaultType.MIFS,
        'Missing "If (cond) { statement(s) }"',
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        9.96,
    ),
    FaultType.MLPC: FaultTypeInfo(
        FaultType.MLPC,
        "Missing small and localized part of the algorithm",
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        3.19,
    ),
    FaultType.WVAV: FaultTypeInfo(
        FaultType.WVAV,
        "Wrong value assigned to a variable",
        ConstructNature.WRONG,
        ODCType.ASSIGNMENT,
        2.44,
    ),
    FaultType.WLEC: FaultTypeInfo(
        FaultType.WLEC,
        "Wrong logical expression used as branch condition",
        ConstructNature.WRONG,
        ODCType.CHECKING,
        3.0,
    ),
    FaultType.WAEP: FaultTypeInfo(
        FaultType.WAEP,
        "Wrong arithmetic expression used in parameter of function call",
        ConstructNature.WRONG,
        ODCType.INTERFACE,
        2.25,
    ),
    FaultType.WPFV: FaultTypeInfo(
        FaultType.WPFV,
        "Wrong variable used in parameter of function call",
        ConstructNature.WRONG,
        ODCType.INTERFACE,
        1.5,
    ),
}

#: Metadata for dynamic (spec-defined) fault types, keyed by token,
#: in registration order (dicts preserve insertion order).
_DYNAMIC_INFOS = {}

_BUILTIN_NAMES = frozenset(member.value for member in FaultType)


def register_fault_type(name, description, nature, odc_type,
                        field_coverage_percent=0.0):
    """Register a dynamic fault type and return its interned token.

    ``nature`` and ``odc_type`` may be enum members or their string
    values.  Registering the same name again with identical metadata is
    a no-op (workers re-install operator specs idempotently); new
    metadata for an existing name replaces it.  A name colliding with a
    built-in :class:`FaultType` member raises ``ValueError`` — built-ins
    are re-expressed via ``"replaces": true`` operator specs, never
    shadowed by a new type.
    """
    if name in _BUILTIN_NAMES:
        raise ValueError(
            f"fault type {name!r} collides with a built-in fault type; "
            'use an operator spec with "replaces": true to re-express '
            "the built-in, or pick a new id"
        )
    token = DynamicFaultType(name)
    info = FaultTypeInfo(
        token,
        description,
        ConstructNature(nature),
        ODCType(odc_type),
        float(field_coverage_percent),
    )
    _DYNAMIC_INFOS[token] = info
    return token


def unregister_fault_type(name):
    """Remove a dynamic fault type registration (no-op if absent)."""
    token = DynamicFaultType._interned.get(name)
    if token is not None:
        _DYNAMIC_INFOS.pop(token, None)


def reset_dynamic_fault_types():
    """Drop every dynamic fault type registration (test isolation)."""
    _DYNAMIC_INFOS.clear()


def lookup_fault_type(fault_type):
    """Resolve ``fault_type`` (name, enum member, or token) to its object.

    Accepts a built-in :class:`FaultType` member, a registered
    :class:`DynamicFaultType` token, or the name of either.  Unknown
    names raise ``ValueError`` with a pointer at operator specs, the
    mechanism that introduces non-Table-1 types.
    """
    if isinstance(fault_type, (FaultType, DynamicFaultType)):
        return fault_type
    try:
        return FaultType(fault_type)
    except ValueError:
        pass
    token = DynamicFaultType._interned.get(fault_type)
    if token is not None and token in _DYNAMIC_INFOS:
        return token
    raise ValueError(
        f"unknown fault type {fault_type!r}: not one of the Table 1 "
        "twelve and no operator spec has registered it (dynamic fault "
        "types must be installed — e.g. via --operator-spec — before "
        "their faultloads are loaded)"
    )


def fault_type_info(fault_type):
    """Return the :class:`FaultTypeInfo` for ``fault_type`` (or its name)."""
    if isinstance(fault_type, str):
        fault_type = lookup_fault_type(fault_type)
    if isinstance(fault_type, DynamicFaultType):
        return _DYNAMIC_INFOS[fault_type]
    return _INFOS[fault_type]


def iter_fault_types():
    """All fault types: Table 1 order, then dynamic registration order."""
    return [
        FaultType.MVI,
        FaultType.MVAV,
        FaultType.MVAE,
        FaultType.MIA,
        FaultType.MLAC,
        FaultType.MFC,
        FaultType.MIFS,
        FaultType.MLPC,
        FaultType.WVAV,
        FaultType.WLEC,
        FaultType.WAEP,
        FaultType.WPFV,
        *_DYNAMIC_INFOS,
    ]
