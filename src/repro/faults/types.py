"""The representative software fault types (the paper's Table 1).

The classification combines the *construct nature* (missing / wrong /
extraneous construct — how the defect relates to the programming-language
constructs of the program text) with the ODC defect type.  The twelve types
below are the ones the field-data study behind the paper found to account
for roughly half of all residual software faults; extraneous-construct
faults were too rare to justify inclusion, so none appear here.
"""

import enum
from dataclasses import dataclass

__all__ = [
    "ConstructNature",
    "FaultType",
    "FaultTypeInfo",
    "ODCType",
    "fault_type_info",
    "iter_fault_types",
]


class ConstructNature(enum.Enum):
    """How the defect relates to the program text."""

    MISSING = "missing"
    WRONG = "wrong"
    EXTRANEOUS = "extraneous"


class ODCType(enum.Enum):
    """Orthogonal Defect Classification defect types used by the paper."""

    ASSIGNMENT = "Assignment"
    CHECKING = "Checking"
    ALGORITHM = "Algorithm"
    INTERFACE = "Interface"
    FUNCTION = "Function"


class FaultType(enum.Enum):
    """The twelve fault types of the faultload (paper Table 1)."""

    MVI = "MVI"
    MVAV = "MVAV"
    MVAE = "MVAE"
    MIA = "MIA"
    MLAC = "MLAC"
    MFC = "MFC"
    MIFS = "MIFS"
    MLPC = "MLPC"
    WVAV = "WVAV"
    WLEC = "WLEC"
    WAEP = "WAEP"
    WPFV = "WPFV"


@dataclass(frozen=True)
class FaultTypeInfo:
    """Static metadata for one fault type."""

    fault_type: FaultType
    description: str
    nature: ConstructNature
    odc_type: ODCType
    field_coverage_percent: float


_INFOS = {
    FaultType.MVI: FaultTypeInfo(
        FaultType.MVI,
        "Missing variable initialization",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        2.25,
    ),
    FaultType.MVAV: FaultTypeInfo(
        FaultType.MVAV,
        "Missing variable assignment using a value",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        2.25,
    ),
    FaultType.MVAE: FaultTypeInfo(
        FaultType.MVAE,
        "Missing variable assignment using an expression",
        ConstructNature.MISSING,
        ODCType.ASSIGNMENT,
        3.0,
    ),
    FaultType.MIA: FaultTypeInfo(
        FaultType.MIA,
        'Missing "if (cond)" surrounding statement(s)',
        ConstructNature.MISSING,
        ODCType.CHECKING,
        4.32,
    ),
    FaultType.MLAC: FaultTypeInfo(
        FaultType.MLAC,
        'Missing "AND EXPR" in expression used as branch condition',
        ConstructNature.MISSING,
        ODCType.CHECKING,
        7.89,
    ),
    FaultType.MFC: FaultTypeInfo(
        FaultType.MFC,
        "Missing function call",
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        8.64,
    ),
    FaultType.MIFS: FaultTypeInfo(
        FaultType.MIFS,
        'Missing "If (cond) { statement(s) }"',
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        9.96,
    ),
    FaultType.MLPC: FaultTypeInfo(
        FaultType.MLPC,
        "Missing small and localized part of the algorithm",
        ConstructNature.MISSING,
        ODCType.ALGORITHM,
        3.19,
    ),
    FaultType.WVAV: FaultTypeInfo(
        FaultType.WVAV,
        "Wrong value assigned to a variable",
        ConstructNature.WRONG,
        ODCType.ASSIGNMENT,
        2.44,
    ),
    FaultType.WLEC: FaultTypeInfo(
        FaultType.WLEC,
        "Wrong logical expression used as branch condition",
        ConstructNature.WRONG,
        ODCType.CHECKING,
        3.0,
    ),
    FaultType.WAEP: FaultTypeInfo(
        FaultType.WAEP,
        "Wrong arithmetic expression used in parameter of function call",
        ConstructNature.WRONG,
        ODCType.INTERFACE,
        2.25,
    ),
    FaultType.WPFV: FaultTypeInfo(
        FaultType.WPFV,
        "Wrong variable used in parameter of function call",
        ConstructNature.WRONG,
        ODCType.INTERFACE,
        1.5,
    ),
}


def fault_type_info(fault_type):
    """Return the :class:`FaultTypeInfo` for ``fault_type`` (or its name)."""
    if isinstance(fault_type, str):
        fault_type = FaultType(fault_type)
    return _INFOS[fault_type]


def iter_fault_types():
    """All fault types in the paper's Table 1 order."""
    return [
        FaultType.MVI,
        FaultType.MVAV,
        FaultType.MVAE,
        FaultType.MIA,
        FaultType.MLAC,
        FaultType.MFC,
        FaultType.MIFS,
        FaultType.MLPC,
        FaultType.WVAV,
        FaultType.WLEC,
        FaultType.WAEP,
        FaultType.WPFV,
    ]
