"""Faultload container.

A faultload is the ordered set of fault locations one benchmark run injects
— the artifact the whole methodology exists to produce.  It is specific to
one OS build and one application domain (the function set selected by the
profiling phase), exactly as in the paper: "the resulting faultload is
specific for a given OS and an intended domain".
"""

import json

from repro.faults.location import FaultLocation
from repro.faults.types import iter_fault_types, lookup_fault_type
from repro.sim.rng import SeededRng

__all__ = ["Faultload"]


class Faultload:
    """An ordered collection of :class:`FaultLocation`.

    Parameters
    ----------
    os_codename:
        The OS build this faultload was generated for (``nt50``/``nt51``).
    locations:
        The fault locations, in scan order (deterministic).
    name:
        Optional label used in reports.
    prepared:
        Set (by the harness) once the config's sampling/interleaving has
        been applied, so preparation is idempotent: a faultload prepared
        by a campaign is not re-sampled when handed to a single run.
    """

    def __init__(self, os_codename, locations=(), name="", prepared=False):
        self.os_codename = os_codename
        self.locations = list(locations)
        self.name = name or f"faultload-{os_codename}"
        self.prepared = prepared

    def __len__(self):
        return len(self.locations)

    def __iter__(self):
        return iter(self.locations)

    def __getitem__(self, index):
        return self.locations[index]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def counts_by_type(self):
        """Faults per fault type, in Table 1/3 order (paper Table 3 row)."""
        counts = {fault_type: 0 for fault_type in iter_fault_types()}
        for location in self.locations:
            # .get covers a location whose dynamic fault type was
            # registered after this faultload's types were enumerated.
            counts[location.fault_type] = counts.get(
                location.fault_type, 0
            ) + 1
        return counts

    def strata_by_type(self):
        """Ordered fault-type strata, preserving prepared slot order.

        Returns ``[(fault_type, [locations...]), ...]`` in Table 1/3
        order, skipping empty types.  Within a stratum the locations
        keep their faultload order, so a stratified campaign's slot
        sequence is a pure function of the prepared faultload — the
        property the sequential mode's digest parity rests on.
        """
        by_type = {}
        for location in self.locations:
            by_type.setdefault(location.fault_type, []).append(location)
        return [(fault_type, by_type[fault_type])
                for fault_type in iter_fault_types()
                if fault_type in by_type]

    def counts_by_function(self):
        """Faults per (display_module, function)."""
        counts = {}
        for location in self.locations:
            key = (location.display_module, location.function)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def functions(self):
        """Sorted set of FIT functions covered by this faultload."""
        return sorted({loc.function for loc in self.locations})

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def restrict_to_functions(self, function_names):
        """New faultload keeping only faults inside ``function_names``.

        This is the fine-tuning step: after profiling selects the API
        functions every benchmark target exercises, the faultload is
        restricted to locations inside them.
        """
        allowed = set(function_names)
        kept = [loc for loc in self.locations if loc.function in allowed]
        return Faultload(self.os_codename, kept,
                         name=f"{self.name}-tuned")

    def restrict_to_types(self, fault_types):
        """New faultload keeping only the given fault types."""
        allowed = {lookup_fault_type(ft) for ft in fault_types}
        kept = [loc for loc in self.locations if loc.fault_type in allowed]
        return Faultload(self.os_codename, kept,
                         name=f"{self.name}-typed")

    def sample(self, count, seed=0):
        """Deterministic stratified subsample of ``count`` locations.

        Sampling is stratified per fault type so a scaled-down experiment
        keeps the type mix of the full faultload.  Order of the result
        follows the original scan order.
        """
        if count >= len(self.locations):
            kept = list(self.locations)
            return Faultload(self.os_codename, kept,
                             name=f"{self.name}-sampled{len(kept)}")
        rng = SeededRng(seed, label="faultload-sample")
        by_type = {}
        for location in self.locations:
            by_type.setdefault(location.fault_type, []).append(location)
        fraction = count / len(self.locations)
        picks_by_type = {}
        for fault_type in iter_fault_types():
            bucket = by_type.get(fault_type, [])
            take = max(1, round(len(bucket) * fraction)) if bucket else 0
            take = min(take, len(bucket))
            if take:
                picked = {loc.fault_id for loc in rng.sample(bucket, take)}
                picks_by_type[fault_type] = [
                    loc.fault_id for loc in bucket
                    if loc.fault_id in picked
                ]
        # Stratified rounding may overshoot slightly.  Trim round-robin
        # across fault types, always from a type currently holding the
        # most picks: trimming the tail of scan order instead would drop
        # whole types scanned last and break the stratification.
        total = sum(len(ids) for ids in picks_by_type.values())
        while total > count:
            largest = max(len(ids) for ids in picks_by_type.values())
            for fault_type in iter_fault_types():
                ids = picks_by_type.get(fault_type)
                if ids and len(ids) == largest:
                    ids.pop()
                    if not ids:
                        del picks_by_type[fault_type]
                    total -= 1
                    break
        chosen = {fid for ids in picks_by_type.values() for fid in ids}
        kept = [loc for loc in self.locations if loc.fault_id in chosen]
        return Faultload(self.os_codename, kept,
                         name=f"{self.name}-sampled{len(kept)}")

    def interleave_types(self):
        """New faultload reordered to alternate fault types round-robin.

        Useful for scaled runs: consecutive slots exercise different fault
        types, so truncating the run keeps type diversity.
        """
        by_type = {}
        for location in self.locations:
            by_type.setdefault(location.fault_type, []).append(location)
        queues = [list(by_type[ft]) for ft in iter_fault_types()
                  if ft in by_type]
        merged = []
        while queues:
            next_round = []
            for queue in queues:
                merged.append(queue.pop(0))
                if queue:
                    next_round.append(queue)
            queues = next_round
        return Faultload(self.os_codename, merged,
                         name=f"{self.name}-interleaved")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        """Plain-dict form (JSON-ready)."""
        return {
            "name": self.name,
            "os_codename": self.os_codename,
            "prepared": self.prepared,
            "locations": [loc.to_dict() for loc in self.locations],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            os_codename=data["os_codename"],
            locations=[FaultLocation.from_dict(item)
                       for item in data["locations"]],
            name=data.get("name", ""),
            prepared=data.get("prepared", False),
        )

    def to_json(self, indent=None):
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        """Write the faultload as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2))

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self):
        return (
            f"Faultload(name={self.name!r}, os={self.os_codename!r}, "
            f"faults={len(self.locations)})"
        )
