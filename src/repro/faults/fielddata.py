"""Field-data statistics behind the fault model.

The numbers come from the field study the paper builds on (Durães &
Madeira, DSN 2003): the share each fault type holds in the total population
of real residual software faults found in deployed programs.  They drive
Table 1 of the paper and the representativeness argument of the faultload.
"""

from repro.faults.types import (
    ConstructNature,
    FaultType,
    fault_type_info,
    iter_fault_types,
)

__all__ = [
    "FIELD_COVERAGE",
    "total_field_coverage",
    "coverage_by_odc_type",
    "coverage_by_nature",
]

FIELD_COVERAGE = {
    fault_type: fault_type_info(fault_type).field_coverage_percent
    for fault_type in iter_fault_types()
}


def total_field_coverage():
    """Share of all field faults covered by the twelve types (~50.69%)."""
    return sum(FIELD_COVERAGE.values())


def coverage_by_odc_type():
    """Field coverage aggregated by ODC defect type."""
    totals = {}
    for fault_type in iter_fault_types():
        info = fault_type_info(fault_type)
        key = info.odc_type
        totals[key] = totals.get(key, 0.0) + info.field_coverage_percent
    return totals


def coverage_by_nature():
    """Field coverage aggregated by construct nature.

    Extraneous-construct faults are reported as 0: the field study found
    them too rare to justify inclusion in the faultload.
    """
    totals = {nature: 0.0 for nature in ConstructNature}
    for fault_type in iter_fault_types():
        info = fault_type_info(fault_type)
        totals[info.nature] += info.field_coverage_percent
    return totals
