"""Simulated operating system — the Fault Injection Target (FIT).

The paper injects software faults into the code of MS Windows' ``ntdll`` and
``kernel32`` modules while benchmarking web servers running on top of them.
This package is the analogue: a user-space operating system with

* kernel-side engines that are **never mutated** (the object manager, the
  heap engine, the virtual file system, synchronization and virtual-memory
  primitives) — these play the role of the hardware/kernel boundary, and
* API modules (:mod:`repro.ossim.modules`) written in a deliberately
  C-like procedural style — parameter validation, status codes, explicit
  buffer management — which **are** the code scanned and mutated by the
  G-SWFIT engine.

Two OS builds are provided (:data:`~repro.ossim.builds.NT50` and
:data:`~repro.ossim.builds.NT51`), mirroring the paper's Windows 2000 SP4
and Windows XP SP1 targets; the 5.1 build contains strictly more code, which
reproduces the larger XP faultload of the paper's Table 3.
"""

from repro.ossim.status import NtStatus, nt_success
from repro.ossim.context import ProcessContext, SimKernel
from repro.ossim.dispatch import ApiTable, OsInstance
from repro.ossim.builds import NT50, NT51, OsBuild, get_build
from repro.ossim.integrity import (
    IntegrityAuditor,
    IntegrityReport,
    IntegrityViolation,
)

__all__ = [
    "ApiTable",
    "IntegrityAuditor",
    "IntegrityReport",
    "IntegrityViolation",
    "NT50",
    "NT51",
    "NtStatus",
    "OsBuild",
    "OsInstance",
    "ProcessContext",
    "SimKernel",
    "get_build",
    "nt_success",
]
