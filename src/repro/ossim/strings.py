"""Counted-string structures (ANSI_STRING / UNICODE_STRING analogues).

The NT runtime passes paths around as counted strings whose ``length`` and
``maximum_length`` fields are maintained by hand in C — which is why so many
of the field-data fault types (missing initialization, wrong value assigned)
hit exactly this code.  We keep the same shape: the structures carry an
explicit byte length next to the text, and consumers trust the *length
field*, not the text, so a mutation that mis-computes a length truncates or
garbles the path a web server asked the OS to open.
"""

__all__ = [
    "AnsiString",
    "UnicodeString",
    "ansi_view",
    "unicode_view",
]


class AnsiString:
    """A counted 8-bit string: length/maximum_length in bytes."""

    __slots__ = ("length", "maximum_length", "buffer", "heap_address")

    def __init__(self, length=0, maximum_length=0, buffer="",
                 heap_address=0):
        self.length = length
        self.maximum_length = maximum_length
        self.buffer = buffer
        self.heap_address = heap_address

    def text(self):
        """The string as seen through the length field (not the buffer)."""
        return self.buffer[: max(0, self.length)]

    def consistent(self):
        """True when the length fields agree with the buffer contents."""
        return (
            0 <= self.length <= self.maximum_length
            and self.length == len(self.buffer)
        )

    def __repr__(self):
        return (
            f"AnsiString(len={self.length}, max={self.maximum_length}, "
            f"buffer={self.buffer!r})"
        )


class UnicodeString:
    """A counted 16-bit string: length/maximum_length in *bytes* (2/char)."""

    __slots__ = ("length", "maximum_length", "buffer", "heap_address")

    def __init__(self, length=0, maximum_length=0, buffer="",
                 heap_address=0):
        self.length = length
        self.maximum_length = maximum_length
        self.buffer = buffer
        self.heap_address = heap_address

    def char_count(self):
        return max(0, self.length) // 2

    def text(self):
        """The string as seen through the length field (not the buffer)."""
        return self.buffer[: self.char_count()]

    def consistent(self):
        return (
            0 <= self.length <= self.maximum_length
            and self.length % 2 == 0
            and self.char_count() == len(self.buffer)
        )

    def __repr__(self):
        return (
            f"UnicodeString(len={self.length}, max={self.maximum_length}, "
            f"buffer={self.buffer!r})"
        )


def ansi_view(text):
    """Build a consistent :class:`AnsiString` over ``text`` (test helper)."""
    return AnsiString(
        length=len(text),
        maximum_length=len(text) + 1,
        buffer=text,
    )


def unicode_view(text):
    """Build a consistent :class:`UnicodeString` over ``text``."""
    return UnicodeString(
        length=len(text) * 2,
        maximum_length=(len(text) + 1) * 2,
        buffer=text,
    )
