"""OS build definitions.

A build is the unit the paper generates one faultload *per*: the experiment
produced one faultload for Windows 2000 SP4 and another, larger one for
Windows XP SP1, because the XP binaries contain more code.  Here a build
names the set of mutable API modules exposed to applications plus the
build's per-call overhead (the XP analogue is slightly slower per call,
which reproduces the small baseline-performance gap in the paper's
Table 4).
"""

from repro.ossim.modules import kernel3250, kernel3251, ntdll50, ntdll51

__all__ = ["OsBuild", "NT50", "NT51", "ALL_BUILDS", "get_build"]


class OsBuild:
    """An immutable description of one simulated OS build."""

    def __init__(self, codename, display_name, modules, call_overhead,
                 function_costs=None):
        self.codename = codename
        self.display_name = display_name
        # List of (display module name, python module) pairs, in link order.
        self.modules = list(modules)
        self.call_overhead = call_overhead
        self.function_costs = dict(function_costs or {})
        self._exports = None

    def exports(self):
        """Mapping of export name -> (module display name, function).

        Later modules win on name collisions, mirroring link order.
        """
        if self._exports is None:
            table = {}
            for display_name, module in self.modules:
                for name in module.__exports__:
                    table[name] = (display_name, getattr(module, name))
            self._exports = table
        return self._exports

    def export_names(self):
        return sorted(self.exports())

    def module_of(self, export_name):
        """Display module name owning ``export_name`` (or None)."""
        entry = self.exports().get(export_name)
        if entry is None:
            return None
        return entry[0]

    def base_cost(self, export_name):
        """Fixed dispatch cost in cycles for one call to ``export_name``."""
        return self.function_costs.get(export_name, 0) + self.call_overhead

    def fit_modules(self):
        """The python modules whose code is the fault injection target."""
        return [module for _display, module in self.modules]

    def __repr__(self):
        return f"OsBuild({self.codename!r}, {self.display_name!r})"


# Per-function fixed costs (cycles).  These model the parts of each service
# we do not simulate instruction-by-instruction: the syscall transition,
# dispatch tables, security reference monitor...  Data-dependent costs are
# charged inside the (mutable) function bodies themselves.
_COMMON_COSTS = {
    "NtCreateFile": 5200,
    "NtOpenFile": 1400,
    "NtQueryAttributesFile": 2600,
    "NtClose": 900,
    "NtReadFile": 2100,
    "NtWriteFile": 2300,
    "NtQueryFileRecords": 1800,
    "NtQueryInformationFile": 1100,
    "NtSetInformationFile": 1000,
    "NtProtectVirtualMemory": 1600,
    "NtQueryVirtualMemory": 1200,
    "NtDelayExecution": 800,
    "NtQuerySystemTime": 300,
    "RtlAllocateHeap": 260,
    "RtlFreeHeap": 220,
    "RtlSizeHeap": 120,
    "RtlEnterCriticalSection": 90,
    "RtlLeaveCriticalSection": 80,
    "RtlInitUnicodeString": 60,
    "RtlInitAnsiString": 60,
    "RtlValidateUnicodeString": 90,
    "RtlFreeUnicodeString": 160,
    "RtlUnicodeToMultiByteN": 240,
    "RtlMultiByteToUnicodeN": 240,
    "RtlDosPathNameToNtPathName_U": 900,
    "RtlGetFullPathName_U": 700,
    "CloseHandle": 350,
    "CreateFileW": 1200,
    "ReadFile": 700,
    "WriteFile": 700,
    "SetFilePointer": 420,
    "SetEndOfFile": 650,
    "GetFileSize": 380,
    "GetFileAttributesW": 800,
    "GetLongPathNameW": 600,
    "DeleteFileW": 900,
    "GetLastError": 25,
    "SetLastError": 25,
}

NT50 = OsBuild(
    codename="nt50",
    display_name="Windows 2000 SP4 (sim)",
    modules=[("Ntdll", ntdll50), ("Kernel32", kernel3250)],
    call_overhead=140,
    function_costs=_COMMON_COSTS,
)

# The 5.1 build's services run more code per call (hardening, lookaside,
# prefetch bookkeeping), so its fixed costs are scaled up — the effect
# behind the slightly lower XP baselines in the paper's Table 4.
_NT51_COST_SCALE = 1.4

NT51 = OsBuild(
    codename="nt51",
    display_name="Windows XP SP1 (sim)",
    modules=[("Ntdll", ntdll51), ("Kernel32", kernel3251)],
    call_overhead=190,
    function_costs={
        name: int(cost * _NT51_COST_SCALE)
        for name, cost in _COMMON_COSTS.items()
    },
)

ALL_BUILDS = {build.codename: build for build in (NT50, NT51)}


def get_build(codename):
    """Look a build up by codename ('nt50' or 'nt51')."""
    build = ALL_BUILDS.get(codename)
    if build is None:
        known = ", ".join(sorted(ALL_BUILDS))
        raise KeyError(f"unknown OS build {codename!r} (known: {known})")
    return build
