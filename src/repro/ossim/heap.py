"""Heap engine.

This is the non-mutable mechanism behind ``RtlAllocateHeap``/``RtlFreeHeap``.
It keeps real bookkeeping — block headers, a free list, commit quota — so
that mutated API code produces the same *classes* of failure a native heap
shows:

* losing a free (leak) eventually exhausts the commit quota and allocations
  start failing with ``NO_MEMORY``;
* freeing a wrong or stale address corrupts heap metadata, after which the
  heap degrades deterministically — some later operations raise a simulated
  access violation, exactly like a corrupted native heap blowing up a few
  mallocs later rather than at the faulty call.
"""

from repro.sim.errors import SimSegfault

__all__ = ["HeapBlock", "SimHeap"]

_ALIGNMENT = 16


class HeapBlock:
    """Header for one allocated or free block."""

    __slots__ = ("address", "size", "free", "tag", "zeroed")

    def __init__(self, address, size, tag=0):
        self.address = address
        self.size = size
        self.free = False
        self.tag = tag
        self.zeroed = False

    def __repr__(self):
        state = "free" if self.free else "busy"
        return f"HeapBlock(addr=0x{self.address:x}, size={self.size}, {state})"


class SimHeap:
    """A growable heap with deterministic corruption semantics.

    Parameters
    ----------
    commit_limit:
        Maximum total bytes of live (non-free) allocations.  Exceeding it
        makes :meth:`allocate` return address 0 (the ``NO_MEMORY`` path).
    corruption_blast_radius:
        Once metadata is corrupted, every N-th subsequent heap operation
        raises :class:`SimSegfault`.  Deterministic by design so repeated
        benchmark iterations see the same behaviour.
    """

    def __init__(self, commit_limit=64 * 1024 * 1024,
                 corruption_blast_radius=5):
        self.commit_limit = commit_limit
        self.corruption_blast_radius = corruption_blast_radius
        self._blocks = {}
        self._free_by_size = {}
        self._next_address = 0x0010_0000
        self.live_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        self.failed_allocs = 0
        self.corruption_score = 0
        self._ops_since_corruption = 0

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _round(size):
        return max(_ALIGNMENT,
                   (size + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT)

    def _tick_corruption(self, operation):
        """Advance the post-corruption countdown; maybe blow up."""
        if self.corruption_score <= 0:
            return
        self._ops_since_corruption += 1
        if self._ops_since_corruption % self.corruption_blast_radius == 0:
            raise SimSegfault(
                f"heap metadata corrupted (score={self.corruption_score}); "
                f"{operation} touched a poisoned block"
            )

    def mark_corrupted(self, reason):
        """Record a metadata corruption event (bad free, header overwrite)."""
        self.corruption_score += 1
        self._last_corruption_reason = reason

    # ------------------------------------------------------------------
    # Allocation API (called by the mutable Rtl* functions)
    # ------------------------------------------------------------------
    def allocate(self, size, tag=0):
        """Allocate ``size`` bytes; return the block address, or 0 on failure."""
        if size < 0:
            self.mark_corrupted("negative allocation size")
            self._tick_corruption("allocate")
            return 0
        self._tick_corruption("allocate")
        rounded = self._round(size)
        if self.live_bytes + rounded > self.commit_limit:
            self.failed_allocs += 1
            return 0
        bucket = self._free_by_size.get(rounded)
        if bucket:
            address = bucket.pop(0)
            block = self._blocks[address]
            block.free = False
            block.tag = tag
            block.zeroed = False
        else:
            address = self._next_address
            self._next_address += rounded + _ALIGNMENT
            block = HeapBlock(address, rounded, tag=tag)
            self._blocks[address] = block
        self.live_bytes += rounded
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.alloc_count += 1
        return address

    def free(self, address):
        """Free the block at ``address``.  Returns True on success.

        Freeing an unknown or already-free address corrupts metadata and
        returns False — the caller (mutable API code) typically translates
        that into a success status anyway, which is precisely how a silent
        heap-corruption fault propagates.
        """
        self._tick_corruption("free")
        block = self._blocks.get(address)
        if block is None:
            self.mark_corrupted(f"free of unknown address 0x{address:x}")
            return False
        if block.free:
            self.mark_corrupted(f"double free of 0x{address:x}")
            return False
        block.free = True
        self.live_bytes -= block.size
        self.free_count += 1
        self._free_by_size.setdefault(block.size, []).append(address)
        return True

    def block_size(self, address):
        """Size of the live block at ``address``, or -1 when invalid."""
        block = self._blocks.get(address)
        if block is None or block.free:
            return -1
        return block.size

    def set_zeroed(self, address):
        """Mark a block as zero-initialized (set by HEAP_ZERO_MEMORY path)."""
        block = self._blocks.get(address)
        if block is not None and not block.free:
            block.zeroed = True

    def is_zeroed(self, address):
        block = self._blocks.get(address)
        return bool(block is not None and block.zeroed)

    def validate(self):
        """Heap self-check: returns True when no corruption was recorded."""
        return self.corruption_score == 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def live_blocks(self):
        return sum(1 for block in self._blocks.values() if not block.free)

    def stats(self):
        return {
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "failed_allocs": self.failed_allocs,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "live_blocks": self.live_blocks(),
            "corruption_score": self.corruption_score,
        }

    def __repr__(self):
        return (
            f"SimHeap(live={self.live_bytes}B, blocks={self.live_blocks()}, "
            f"corruption={self.corruption_score})"
        )
