"""Virtual memory manager.

Backs ``NtProtectVirtualMemory`` and ``NtQueryVirtualMemory``.  Servers use
it for their buffer arenas and file caches; a mutation that flips a
protection constant or mis-rounds a range makes later touches of that range
fail, which the engine reports as an access violation.
"""

from repro.sim.errors import SimSegfault

__all__ = [
    "PAGE_NOACCESS",
    "PAGE_READONLY",
    "PAGE_READWRITE",
    "PAGE_EXECUTE_READ",
    "PAGE_SIZE",
    "MemoryRegion",
    "VirtualMemoryManager",
]

PAGE_SIZE = 4096

PAGE_NOACCESS = 0x01
PAGE_READONLY = 0x02
PAGE_READWRITE = 0x04
PAGE_EXECUTE_READ = 0x20

_VALID_PROTECTIONS = {
    PAGE_NOACCESS,
    PAGE_READONLY,
    PAGE_READWRITE,
    PAGE_EXECUTE_READ,
}


class MemoryRegion:
    """A contiguous reserved range with uniform protection."""

    __slots__ = ("base", "size", "protection", "tag")

    def __init__(self, base, size, protection, tag=""):
        self.base = base
        self.size = size
        self.protection = protection
        self.tag = tag

    @property
    def end(self):
        return self.base + self.size

    def contains(self, address):
        return self.base <= address < self.end

    def __repr__(self):
        return (
            f"MemoryRegion(base=0x{self.base:x}, size=0x{self.size:x}, "
            f"prot=0x{self.protection:02x}, tag={self.tag!r})"
        )


class VirtualMemoryManager:
    """Tracks reserved regions of one simulated process."""

    def __init__(self, address_space=1 << 31):
        self.address_space = address_space
        self._regions = []
        self._next_base = 0x0100_0000
        self.protect_calls = 0
        self.query_calls = 0

    @staticmethod
    def round_to_pages(size):
        return max(PAGE_SIZE,
                   (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE)

    @staticmethod
    def valid_protection(protection):
        return protection in _VALID_PROTECTIONS

    def reserve(self, size, protection=PAGE_READWRITE, tag=""):
        """Reserve a new region; returns it or None when out of space."""
        rounded = self.round_to_pages(size)
        if self._next_base + rounded > self.address_space:
            return None
        region = MemoryRegion(self._next_base, rounded, protection, tag=tag)
        self._next_base += rounded + PAGE_SIZE
        self._regions.append(region)
        return region

    def find(self, address):
        """Region containing ``address``, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def protect(self, address, size, protection):
        """Change protection; returns the old protection or -1 on error."""
        self.protect_calls += 1
        region = self.find(address)
        if region is None:
            return -1
        if not self.valid_protection(protection):
            return -1
        if address + size > region.end:
            return -1
        old = region.protection
        region.protection = protection
        return old

    def query(self, address):
        """Return (base, size, protection) for the region, or None."""
        self.query_calls += 1
        region = self.find(address)
        if region is None:
            return None
        return (region.base, region.size, region.protection)

    def check_access(self, address, write=False):
        """Raise ``SimSegfault`` when touching ``address`` is not allowed."""
        region = self.find(address)
        if region is None:
            raise SimSegfault(f"access to unmapped address 0x{address:x}")
        if region.protection == PAGE_NOACCESS:
            raise SimSegfault(
                f"access to PAGE_NOACCESS region at 0x{address:x}"
            )
        if write and region.protection in (PAGE_READONLY, PAGE_EXECUTE_READ):
            raise SimSegfault(
                f"write to read-only region at 0x{address:x}"
            )

    def release(self, region):
        if region in self._regions:
            self._regions.remove(region)
            return True
        return False

    def regions(self):
        return list(self._regions)
