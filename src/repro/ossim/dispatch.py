"""API dispatch: how applications call the (possibly mutated) OS.

:class:`OsInstance` ties an :class:`~repro.ossim.builds.OsBuild` to one
machine's :class:`~repro.ossim.context.SimKernel`; :class:`ApiTable` is the
per-process view of the build's exports, the moral equivalent of the import
address table a native process resolves against ``ntdll``/``kernel32``.

Each call through the table:

1. is recorded by the attached tracer, if any (this is the probe the
   profiling phase of the methodology uses — analogous to the API tracing
   tool of the paper's Section 3.3);
2. charges the build's fixed dispatch cost to the process CPU meter;
3. invokes the live module-level function — whose ``__code__`` the G-SWFIT
   injector may have swapped for a mutant.

Failure semantics: simulated machine conditions (``SimSegfault``,
``SimBlockedForever``, ``CpuBudgetExceeded``) always propagate.  Any *other*
Python exception escaping OS code is a bug of ours when the OS is pristine
(so it propagates loudly), but when a fault is currently injected it is the
expected behaviour of broken native code and is converted to a simulated
access violation.
"""

from repro.sim.errors import (
    CpuBudgetExceeded,
    SimBlockedForever,
    SimSegfault,
)

__all__ = ["ApiTable", "OsInstance"]


class OsInstance:
    """One OS build booted on one machine kernel."""

    def __init__(self, build, kernel):
        self.build = build
        self.kernel = kernel
        self.tracer = None
        # Set by the fault injector while at least one mutation is applied.
        self.fault_mode = False
        kernel.boot_count += 1

    def attach_tracer(self, tracer):
        """Attach an API call tracer (None detaches)."""
        self.tracer = tracer

    def new_process(self, cpu=None, name="process"):
        """Create a process with its API table already bound."""
        ctx = self.kernel.new_process(cpu=cpu, name=name)
        ctx.api = ApiTable(self, ctx)
        return ctx

    def __repr__(self):
        return f"OsInstance({self.build.codename}, fault_mode={self.fault_mode})"


class ApiTable:
    """Per-process resolved view of an OS build's exports.

    Attribute access returns a callable wrapper; wrappers are cached, and
    they look the target function up on the *module object at call time*,
    so an injected ``__code__`` swap is visible immediately even to
    processes created before the injection.
    """

    def __init__(self, os_instance, ctx):
        # Avoid __setattr__ recursion by writing through __dict__.
        self.__dict__["os"] = os_instance
        self.__dict__["ctx"] = ctx
        self.__dict__["_wrappers"] = {}

    def __getattr__(self, name):
        wrapper = self._wrappers.get(name)
        if wrapper is None:
            wrapper = self._make_wrapper(name)
            self._wrappers[name] = wrapper
        return wrapper

    def has_export(self, name):
        return name in self.os.build.exports()

    def export_names(self):
        return self.os.build.export_names()

    def _make_wrapper(self, name):
        entry = self.os.build.exports().get(name)
        if entry is None:
            raise AttributeError(
                f"{self.os.build.display_name} has no export {name!r}"
            )
        module_display, function = entry
        base_cost = self.os.build.base_cost(name)
        os_instance = self.os
        ctx = self.ctx

        def call(*args, **kwargs):
            tracer = os_instance.tracer
            if tracer is not None:
                tracer.record(module_display, name)
            ctx.api_calls += 1
            ctx.charge(base_cost)
            try:
                return function(ctx, *args, **kwargs)
            except (SimSegfault, SimBlockedForever, CpuBudgetExceeded):
                raise
            except Exception as exc:
                if os_instance.fault_mode:
                    raise SimSegfault(
                        f"fault in {module_display}!{name}: "
                        f"{type(exc).__name__}: {exc}",
                        cause=exc,
                    ) from exc
                raise

        call.__name__ = name
        call.__qualname__ = f"ApiTable.{name}"
        return call

    def __repr__(self):
        return (
            f"ApiTable(build={self.os.build.codename}, "
            f"pid={self.ctx.pid})"
        )
