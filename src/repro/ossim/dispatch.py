"""API dispatch: how applications call the (possibly mutated) OS.

:class:`OsInstance` ties an :class:`~repro.ossim.builds.OsBuild` to one
machine's :class:`~repro.ossim.context.SimKernel`; :class:`ApiTable` is the
per-process view of the build's exports, the moral equivalent of the import
address table a native process resolves against ``ntdll``/``kernel32``.

Each call through the table:

1. is recorded by the attached tracer, if any (this is the probe the
   profiling phase of the methodology uses — analogous to the API tracing
   tool of the paper's Section 3.3);
2. charges the build's fixed dispatch cost to the process CPU meter;
3. invokes the live module-level function — whose ``__code__`` the G-SWFIT
   injector may have swapped for a mutant.

The tracer check is resolved at *wrapper build time*, not per call: a
table builds untraced wrappers (no tracer reference anywhere in the
closure) until a tracer is attached, and :meth:`OsInstance.attach_tracer`
rebuilds the wrappers of every live table when the tracer changes.
Attaching or detaching is rare — once per profiling run — while the
wrappers execute millions of times, so the steady state carries zero
tracing overhead.  Built wrappers are also published into the table's
instance dictionary, so repeat ``ctx.api.NtWriteFile`` lookups bypass
``__getattr__`` entirely.

Both classes implement ``__deepcopy__`` because the machine snapshot
layer (:mod:`repro.harness.snapshot`) deep-copies whole machines:
``copy.deepcopy`` treats function objects as atomic, so without help a
copied table would keep the *original* machine's wrappers — closures
over the original ``ctx`` — and every API call on the copy would
silently mutate the machine it was copied from.  The copies instead
drop the wrapper cache and rebuild lazily against the copied state.

Failure semantics: simulated machine conditions (``SimSegfault``,
``SimBlockedForever``, ``CpuBudgetExceeded``) always propagate.  Any *other*
Python exception escaping OS code is a bug of ours when the OS is pristine
(so it propagates loudly), but when a fault is currently injected it is the
expected behaviour of broken native code and is converted to a simulated
access violation.  ``fault_mode`` is read live — but only on the
exceptional path, so it costs nothing per successful call.
"""

import copy
import weakref

from repro.sim.errors import (
    CpuBudgetExceeded,
    SimBlockedForever,
    SimSegfault,
)

__all__ = ["ApiTable", "OsInstance"]

_PASSTHROUGH = (SimSegfault, SimBlockedForever, CpuBudgetExceeded)


class OsInstance:
    """One OS build booted on one machine kernel."""

    def __init__(self, build, kernel):
        self.build = build
        self.kernel = kernel
        self.tracer = None
        # Activation tracker, when fault-activation telemetry is on; the
        # injector reads this to decide probed vs plain mutants.  Probes
        # live inside mutant code, not in the dispatch wrappers, so
        # attaching never rebuilds tables.
        self.activation = None
        # Set by the fault injector while at least one mutation is applied.
        self.fault_mode = False
        # Live API tables bound to this instance; weak so a dead process
        # doesn't keep its table (and the table its ctx) alive.
        self._tables = weakref.WeakSet()
        kernel.boot_count += 1

    def attach_tracer(self, tracer):
        """Attach an API call tracer (None detaches).

        Every live table's wrappers are rebuilt for the new tracer state,
        so processes created *before* the attach are traced too — and
        stop paying for tracing the moment it is detached.
        """
        self.tracer = tracer
        # Snapshot first: a GC-triggered WeakSet removal mid-iteration
        # raises "set changed size during iteration".
        for table in list(self._tables):
            table._rebind()

    def attach_activation(self, tracker):
        """Attach a fault-activation tracker (None detaches)."""
        self.activation = tracker

    def new_process(self, cpu=None, name="process"):
        """Create a process with its API table already bound."""
        ctx = self.kernel.new_process(cpu=cpu, name=name)
        ctx.api = ApiTable(self, ctx)
        return ctx

    def __deepcopy__(self, memo):
        """Deep-copy for machine snapshots.

        The build is module-level code shared by every machine (the
        injector mutates it globally, per slot) — it is referenced, not
        copied.  The table set is rebuilt *before* the tables are
        copied so each copied table can register itself with the copied
        instance mid-copy (the default reduce path would try to deep-
        copy a half-constructed WeakSet instead).
        """
        clone = type(self).__new__(type(self))
        memo[id(self)] = clone
        clone.build = self.build
        clone._tables = weakref.WeakSet()
        clone.kernel = copy.deepcopy(self.kernel, memo)
        clone.tracer = copy.deepcopy(self.tracer, memo)
        clone.activation = copy.deepcopy(self.activation, memo)
        clone.fault_mode = self.fault_mode
        for table in list(self._tables):
            copy.deepcopy(table, memo)  # registers with clone._tables
        return clone

    def __getstate__(self):
        """Pickle for machine snapshots: tables re-register on load."""
        state = self.__dict__.copy()
        del state["_tables"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # A table that unpickled before us (the graph is cyclic) may have
        # already planted the set via ApiTable.__setstate__.
        if "_tables" not in self.__dict__:
            self._tables = weakref.WeakSet()

    def __repr__(self):
        return f"OsInstance({self.build.codename}, fault_mode={self.fault_mode})"


class ApiTable:
    """Per-process resolved view of an OS build's exports.

    Attribute access returns a callable wrapper; wrappers are cached (in
    the instance dictionary, so only the first access runs
    ``__getattr__``), and they call the live module-level function, so an
    injected ``__code__`` swap is visible immediately even to processes
    created before the injection.
    """

    def __init__(self, os_instance, ctx):
        self.__dict__["os"] = os_instance
        self.__dict__["ctx"] = ctx
        self.__dict__["_wrappers"] = {}
        os_instance._tables.add(self)

    def __getattr__(self, name):
        # Only reached for names not yet published into __dict__ (and
        # never for real attributes/methods, which resolve normally).
        wrapper = self._make_wrapper(name)
        self._wrappers[name] = wrapper
        self.__dict__[name] = wrapper
        return wrapper

    def _rebind(self):
        """Rebuild every built wrapper for the current tracer state."""
        for name in self._wrappers:
            wrapper = self._make_wrapper(name)
            self._wrappers[name] = wrapper
            self.__dict__[name] = wrapper

    def __deepcopy__(self, memo):
        """Deep-copy for machine snapshots.

        Wrappers are closures over ``ctx``/``os`` — ``deepcopy`` would
        share them, aiming the copied table at the original machine.
        The copy starts with an empty cache and rebuilds lazily against
        the copied state on first attribute access.  (This method must
        exist as a real attribute: the ``getattr(x, '__deepcopy__')``
        probe in :mod:`copy` otherwise lands in ``__getattr__`` on a
        half-constructed copy and recurses without end.)
        """
        clone = type(self).__new__(type(self))
        memo[id(self)] = clone
        clone.__dict__["_wrappers"] = {}
        clone.__dict__["os"] = copy.deepcopy(self.os, memo)
        clone.__dict__["ctx"] = copy.deepcopy(self.ctx, memo)
        clone.os._tables.add(clone)
        return clone

    def __getstate__(self):
        """Pickle for machine snapshots: drop the closure cache."""
        return {"os": self.os, "ctx": self.ctx}

    def __setstate__(self, state):
        self.__dict__["os"] = state["os"]
        self.__dict__["ctx"] = state["ctx"]
        self.__dict__["_wrappers"] = {}
        # The OsInstance may still be mid-unpickle (its __setstate__ not
        # yet run); plant the table set for it if so — its __setstate__
        # keeps whatever is already there.
        os_instance = state["os"]
        if "_tables" not in os_instance.__dict__:
            os_instance.__dict__["_tables"] = weakref.WeakSet()
        os_instance._tables.add(self)

    def has_export(self, name):
        return name in self.os.build.exports()

    def export_names(self):
        return self.os.build.export_names()

    def _make_wrapper(self, name):
        entry = self.os.build.exports().get(name)
        if entry is None:
            raise AttributeError(
                f"{self.os.build.display_name} has no export {name!r}"
            )
        module_display, function = entry
        base_cost = self.os.build.base_cost(name)
        os_instance = self.os
        ctx = self.ctx
        tracer = os_instance.tracer

        if tracer is None:
            def call(*args, **kwargs):
                ctx.api_calls += 1
                ctx.charge(base_cost)
                try:
                    return function(ctx, *args, **kwargs)
                except _PASSTHROUGH:
                    raise
                except Exception as exc:
                    if os_instance.fault_mode:
                        raise SimSegfault(
                            f"fault in {module_display}!{name}: "
                            f"{type(exc).__name__}: {exc}",
                            cause=exc,
                        ) from exc
                    raise
        else:
            record = tracer.record

            def call(*args, **kwargs):
                record(module_display, name)
                ctx.api_calls += 1
                ctx.charge(base_cost)
                try:
                    return function(ctx, *args, **kwargs)
                except _PASSTHROUGH:
                    raise
                except Exception as exc:
                    if os_instance.fault_mode:
                        raise SimSegfault(
                            f"fault in {module_display}!{name}: "
                            f"{type(exc).__name__}: {exc}",
                            cause=exc,
                        ) from exc
                    raise

        call.__name__ = name
        call.__qualname__ = f"ApiTable.{name}"
        return call

    def __repr__(self):
        return (
            f"ApiTable(build={self.os.build.codename}, "
            f"pid={self.ctx.pid})"
        )
