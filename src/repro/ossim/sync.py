"""Synchronization primitives (critical sections).

The engine behind ``RtlEnterCriticalSection``/``RtlLeaveCriticalSection``.
Because request handlers execute synchronously inside the event simulation,
two healthy workers can never actually contend — a section found *owned by
another thread* is always a leak: some earlier handler exited without
releasing it (e.g. because a mutation removed the Leave call).  A native
thread would block forever; the engine reports that as
:class:`~repro.sim.errors.SimBlockedForever`, which the server process model
turns into a hung worker — the mechanism behind most of the paper's "killed,
not responding" (KNS) events.
"""

from repro.sim.errors import SimBlockedForever, SimSegfault

__all__ = ["CriticalSection", "SyncRegistry"]


class CriticalSection:
    """An NT-style recursive mutex."""

    __slots__ = (
        "name", "owner", "recursion", "enter_count", "leave_count",
        "corrupted",
    )

    def __init__(self, name):
        self.name = name
        self.owner = None
        self.recursion = 0
        self.enter_count = 0
        self.leave_count = 0
        self.corrupted = False

    def held(self):
        return self.owner is not None

    def enter(self, thread_id):
        """Acquire for ``thread_id``.

        Raises ``SimSegfault`` on a corrupted section and
        ``SimBlockedForever`` when the section is leaked by another thread.
        """
        if self.corrupted:
            raise SimSegfault(
                f"critical section {self.name!r} is corrupted"
            )
        if self.owner is None:
            self.owner = thread_id
            self.recursion = 1
        elif self.owner == thread_id:
            self.recursion += 1
        else:
            raise SimBlockedForever(
                f"critical section {self.name!r} leaked by thread "
                f"{self.owner!r}; thread {thread_id!r} would block forever"
            )
        self.enter_count += 1

    def leave(self, thread_id):
        """Release for ``thread_id``.  Returns True on success.

        Releasing a section the thread does not own corrupts it — matching
        the undefined behaviour of the native primitive.
        """
        if self.owner != thread_id or self.recursion <= 0:
            self.corrupted = True
            return False
        self.recursion -= 1
        self.leave_count += 1
        if self.recursion == 0:
            self.owner = None
        return True

    def force_release(self, thread_id):
        """Steal the lock from a dead thread (process-recovery path)."""
        if self.owner == thread_id:
            self.owner = None
            self.recursion = 0
            return True
        return False

    def __repr__(self):
        return (
            f"CriticalSection({self.name!r}, owner={self.owner!r}, "
            f"recursion={self.recursion})"
        )


class SyncRegistry:
    """Per-process registry of named critical sections."""

    def __init__(self):
        self._sections = {}

    def get(self, name):
        """Return the section named ``name``, creating it on first use."""
        section = self._sections.get(name)
        if section is None:
            section = CriticalSection(name)
            self._sections[name] = section
        return section

    def sections(self):
        return list(self._sections.values())

    def leaked_sections(self):
        """Sections currently held — candidates for deadlock on next enter."""
        return [s for s in self._sections.values() if s.held()]

    def release_thread(self, thread_id):
        """Force-release everything a (dead) thread still holds."""
        released = 0
        for section in self._sections.values():
            if section.force_release(thread_id):
                released += 1
        return released
