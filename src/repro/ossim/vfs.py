"""Virtual file system.

The kernel-side store behind ``NtCreateFile``/``NtReadFile``/... .  Files do
not hold real byte arrays — at SPECWeb99 scale that would dominate runtime —
but a size plus a content *fingerprint*.  Reads return :class:`SimBuffer`
views whose fingerprint is a pure function of (file content, offset,
length); the benchmark client recomputes the expected fingerprint, so a
mutated OS function that reads from the wrong offset, truncates the
transfer, or returns a stale buffer produces a detectable content error at
the client exactly like a corrupted response body would.
"""

import hashlib

__all__ = ["SimBuffer", "FileNode", "VirtualFileSystem"]


def _digest(*parts):
    hasher = hashlib.blake2b(digest_size=8)
    for part in parts:
        hasher.update(str(part).encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest(), "big")


class SimBuffer:
    """A window of file content in flight: a length and a fingerprint."""

    __slots__ = ("length", "fingerprint")

    def __init__(self, length, fingerprint):
        self.length = length
        self.fingerprint = fingerprint

    @staticmethod
    def for_content(content_id, offset, length):
        """Fingerprint of ``length`` bytes at ``offset`` of ``content_id``."""
        return SimBuffer(length, _digest(content_id, offset, length))

    def matches(self, content_id, offset, length):
        """True when this buffer is exactly that slice of that content."""
        return (
            self.length == length
            and self.fingerprint == _digest(content_id, offset, length)
        )

    def __eq__(self, other):
        return (
            isinstance(other, SimBuffer)
            and self.length == other.length
            and self.fingerprint == other.fingerprint
        )

    def __hash__(self):
        return hash((self.length, self.fingerprint))

    def __repr__(self):
        return f"SimBuffer(len={self.length}, fp=0x{self.fingerprint:x})"


class FileNode:
    """One file or directory in the tree."""

    __slots__ = (
        "name",
        "parent",
        "is_dir",
        "children",
        "size",
        "content_id",
        "read_only",
        "open_count",
        "version",
        "records",
    )

    def __init__(self, name, parent=None, is_dir=False, size=0,
                 content_id=None):
        self.name = name
        self.parent = parent
        self.is_dir = is_dir
        self.children = {} if is_dir else None
        self.size = size
        # Durable record payloads by offset (the scatter/gather channel
        # database-style applications use — see VirtualFileSystem.write).
        self.records = {}
        self.content_id = content_id if content_id is not None else _digest(
            "content", name, size
        )
        self.read_only = False
        self.open_count = 0
        self.version = 0

    def path(self):
        parts = []
        node = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def touch(self):
        """Record a content change: new version, new content identity."""
        self.version += 1
        self.content_id = _digest("content", self.path(), self.version)

    def __repr__(self):
        kind = "dir" if self.is_dir else f"file size={self.size}"
        return f"<FileNode {self.path()} {kind}>"


class VirtualFileSystem:
    """A tree of :class:`FileNode` with POSIX-ish path resolution."""

    def __init__(self, capacity_bytes=8 * 1024 * 1024 * 1024):
        self.root = FileNode("", is_dir=True)
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.reads = 0
        self.writes = 0
        # Hardware-fault hook (see repro.extensions): when non-zero,
        # every Nth read returns a corrupted buffer — a disk surface
        # error surfacing as bad sector content.
        self.read_fault_period = 0

    # ------------------------------------------------------------------
    # Path handling
    # ------------------------------------------------------------------
    @staticmethod
    def split(path):
        """Split a normalized path into components; '' and '/' are root."""
        return [part for part in path.split("/") if part]

    def lookup(self, path):
        """Resolve ``path`` to a node or None."""
        node = self.root
        for part in self.split(path):
            if not node.is_dir:
                return None
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def lookup_parent(self, path):
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        parts = self.split(path)
        if not parts:
            return None, ""
        node = self.root
        for part in parts[:-1]:
            if not node.is_dir:
                return None, parts[-1]
            node = node.children.get(part)
            if node is None:
                return None, parts[-1]
        if not node.is_dir:
            return None, parts[-1]
        return node, parts[-1]

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def mkdir(self, path, parents=False):
        """Create a directory; returns the node (existing dirs are fine)."""
        node = self.root
        parts = self.split(path)
        for index, part in enumerate(parts):
            child = node.children.get(part)
            if child is None:
                if not parents and index != len(parts) - 1:
                    return None
                child = FileNode(part, parent=node, is_dir=True)
                node.children[part] = child
            elif not child.is_dir:
                return None
            node = child
        return node

    def create_file(self, path, size=0):
        """Create a regular file; returns the node or None on conflict."""
        parent, name = self.lookup_parent(path)
        if parent is None or not name:
            return None
        if name in parent.children:
            return None
        if self.used_bytes + size > self.capacity_bytes:
            return None
        node = FileNode(name, parent=parent, is_dir=False, size=size)
        parent.children[name] = node
        self.used_bytes += size
        return node

    def delete(self, path):
        """Remove a file or empty directory; True on success."""
        node = self.lookup(path)
        if node is None or node.parent is None:
            return False
        if node.is_dir and node.children:
            return False
        if node.open_count > 0:
            return False
        if not node.is_dir:
            self.used_bytes -= node.size
        del node.parent.children[node.name]
        return True

    def listdir(self, path):
        node = self.lookup(path)
        if node is None or not node.is_dir:
            return None
        return sorted(node.children)

    # ------------------------------------------------------------------
    # Data operations (fingerprint arithmetic, no real bytes)
    # ------------------------------------------------------------------
    def read(self, node, offset, length):
        """Read up to ``length`` bytes at ``offset``; returns a SimBuffer.

        Short reads at end of file return the truncated window; reads past
        the end return an empty buffer.
        """
        self.reads += 1
        if offset >= node.size or length <= 0:
            return SimBuffer.for_content(node.content_id, offset, 0)
        actual = min(length, node.size - offset)
        buffer = SimBuffer.for_content(node.content_id, offset, actual)
        if (
            self.read_fault_period
            and self.reads % self.read_fault_period == 0
        ):
            # Deterministically corrupted sector content.
            buffer = SimBuffer(actual, buffer.fingerprint ^ 0x1)
        return buffer

    def write(self, node, offset, length, record=None):
        """Write ``length`` bytes at ``offset``; returns bytes written or -1.

        Growing a file past the capacity limit fails.  Content identity
        changes on every write so stale cached buffers become detectable.

        When ``record`` is given, the payload is stored durably at the
        write offset — the channel transactional applications (the OLTP
        case study) use to persist structured records the same way real
        ones lay structs into file pages.
        """
        self.writes += 1
        if offset < 0 or length < 0:
            return -1
        new_end = offset + length
        if new_end > node.size:
            growth = new_end - node.size
            if self.used_bytes + growth > self.capacity_bytes:
                return -1
            self.used_bytes += growth
            node.size = new_end
        if record is not None:
            node.records[offset] = record
        node.touch()
        return length

    def records_between(self, node, offset, end):
        """Durable records in ``[offset, end)``, in offset order."""
        return [
            (record_offset, node.records[record_offset])
            for record_offset in sorted(node.records)
            if offset <= record_offset < end
        ]

    def truncate(self, node, size):
        if size < 0:
            return False
        delta = size - node.size
        if delta > 0 and self.used_bytes + delta > self.capacity_bytes:
            return False
        self.used_bytes += delta
        node.size = size
        # Records beyond the new end are gone from disk.
        node.records = {
            offset: record for offset, record in node.records.items()
            if offset < size
        }
        node.touch()
        return True

    def count_files(self):
        """Total regular files in the tree (test/diagnostic helper)."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_dir:
                stack.extend(node.children.values())
            else:
                total += 1
        return total
