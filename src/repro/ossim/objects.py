"""Object manager and handle table.

Every kernel resource a simulated process touches (files, sections, critical
sections created through the API) is a :class:`KernelObject` referenced
through a per-process :class:`HandleTable`, mirroring the NT executive's
object manager.  Handle misuse — the classic victim of wrong-parameter
faults — is therefore observable: a mutated call that passes a stale or
wrong handle gets ``None`` back from :meth:`HandleTable.resolve` and the API
function decides whether that is a recoverable ``INVALID_HANDLE`` status or
a simulated access violation.
"""

from repro.sim.errors import SimSegfault

__all__ = ["KernelObject", "FileObject", "HandleTable"]


class KernelObject:
    """Base class for kernel-managed objects."""

    object_type = "Object"

    def __init__(self, name=None):
        self.name = name
        self.ref_count = 1
        self.closed = False

    def reference(self):
        self.ref_count += 1

    def dereference(self):
        """Drop a reference; returns True when the object died."""
        if self.ref_count <= 0:
            raise SimSegfault(
                f"dereference of dead {self.object_type} object {self.name!r}"
            )
        self.ref_count -= 1
        if self.ref_count == 0:
            self.closed = True
            self.on_close()
            return True
        return False

    def on_close(self):
        """Subclass hook run when the last reference is dropped."""

    def __repr__(self):
        return (
            f"<{self.object_type} name={self.name!r} refs={self.ref_count}>"
        )


class FileObject(KernelObject):
    """An open file: a node reference plus a cursor and access mode."""

    object_type = "File"

    def __init__(self, node, access="r", name=None):
        super().__init__(name=name or node.path())
        self.node = node
        self.access = access
        self.position = 0
        self.pending_writes = 0

    def readable(self):
        return "r" in self.access

    def writable(self):
        return "w" in self.access or "a" in self.access

    def on_close(self):
        self.node.open_count -= 1


class HandleTable:
    """Per-process handle table.

    Handles are small integers starting at 4 and stepping by 4, like NT.
    Closed slots are recycled in order, so handle values are deterministic
    for a deterministic call sequence.
    """

    FIRST_HANDLE = 4
    STEP = 4

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self._slots = {}
        self._free = []
        self._next = self.FIRST_HANDLE
        self.total_opened = 0

    def __len__(self):
        return len(self._slots)

    def insert(self, obj):
        """Store ``obj`` and return its handle value.

        Returns 0 (an invalid handle) when the table is full, matching the
        ``TOO_MANY_OPENED_FILES`` failure mode.
        """
        if len(self._slots) >= self.capacity:
            return 0
        if self._free:
            handle = self._free.pop(0)
        else:
            handle = self._next
            self._next += self.STEP
        self._slots[handle] = obj
        self.total_opened += 1
        return handle

    def resolve(self, handle, expected_type=None):
        """Return the object for ``handle`` or None when invalid.

        When ``expected_type`` is given, a live handle of another type also
        resolves to None (type confusion is an error, not a crash, at this
        layer).
        """
        obj = self._slots.get(handle)
        if obj is None:
            return None
        if expected_type is not None and obj.object_type != expected_type:
            return None
        return obj

    def close(self, handle):
        """Close ``handle``.  Returns True on success, False when invalid."""
        obj = self._slots.pop(handle, None)
        if obj is None:
            return False
        self._free.append(handle)
        obj.dereference()
        return True

    def handles(self):
        """Snapshot of live handle values (sorted, for deterministic walks)."""
        return sorted(self._slots)

    def close_all(self):
        """Close every live handle (process teardown)."""
        for handle in self.handles():
            self.close(handle)
