"""NT-style status codes.

The mutable OS API communicates failure through these integer codes exactly
like the Windows native API does; web servers decide per call site whether a
non-success status is recoverable.  Keeping failures as *values* rather than
exceptions matters for fault emulation: many real residual faults manifest
as a wrong status or a success-with-bad-output, not as a crash.
"""

import enum

__all__ = ["NtStatus", "nt_success"]


class NtStatus(enum.IntEnum):
    """Subset of NTSTATUS codes used by the simulated OS."""

    SUCCESS = 0x00000000
    PENDING = 0x00000103
    END_OF_FILE = 0xC0000011
    BUFFER_TOO_SMALL = 0xC0000023
    INVALID_HANDLE = 0xC0000008
    INVALID_PARAMETER = 0xC000000D
    OBJECT_NAME_NOT_FOUND = 0xC0000034
    OBJECT_NAME_COLLISION = 0xC0000035
    OBJECT_PATH_NOT_FOUND = 0xC000003A
    ACCESS_DENIED = 0xC0000022
    ACCESS_VIOLATION = 0xC0000005
    NO_MEMORY = 0xC0000017
    INSUFFICIENT_RESOURCES = 0xC000009A
    SHARING_VIOLATION = 0xC0000043
    TOO_MANY_OPENED_FILES = 0xC000011F
    HEAP_CORRUPTION = 0xC0000374
    NOT_IMPLEMENTED = 0xC0000002
    INVALID_DEVICE_REQUEST = 0xC0000010
    FILE_IS_A_DIRECTORY = 0xC00000BA
    NOT_A_DIRECTORY = 0xC0000103
    DISK_FULL = 0xC000007F
    INTERNAL_ERROR = 0xC00000E5
    CANCELLED = 0xC0000120

    def is_success(self):
        return self == NtStatus.SUCCESS

    def is_error(self):
        return int(self) >= 0xC0000000


def nt_success(status):
    """True when ``status`` denotes success (SUCCESS or informational)."""
    return 0 <= int(status) < 0xC0000000
