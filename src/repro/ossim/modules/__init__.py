"""Mutable OS API modules — the code the G-SWFIT engine scans and mutates.

Each module in this package is written in a deliberately C-like procedural
style (all locals initialized up front, explicit status codes, early-return
parameter validation, compound ``and`` conditions) because those are the
constructs the field-data fault types of the paper's Table 1 live in.

Style rules enforced by ``tests/test_fit_style.py``:

* no ``while`` loops (a mutated loop condition must not be able to hang the
  host interpreter — bounded ``for`` loops only);
* no nested functions, closures, lambdas or decorators (mutants are
  compiled stand-alone and hot-swapped via ``__code__`` replacement);
* every function takes the process context ``ctx`` as its first parameter
  and communicates failure through return values, not exceptions.
"""

from repro.ossim.modules import kernel3250, kernel3251, ntdll50, ntdll51

__all__ = ["kernel3250", "kernel3251", "ntdll50", "ntdll51"]
