"""``ntdll``-like API module, NT 5.0 build ("Windows 2000 SP4" analogue).

FAULT INJECTION TARGET.  Every public function in this module is scanned by
the G-SWFIT engine and may run *mutated* during an experiment.  The code is
written in the C-like style described in :mod:`repro.ossim.modules`: all
locals initialized in a block at the top, explicit status returns, compound
``and`` validation, bookkeeping side-effect calls.  Do not "clean it up"
into idiomatic Python — the constructs are the fault sites.
"""

from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.ossim.memory import PAGE_SIZE
from repro.ossim.objects import FileObject

# Heap flags (subset of the native ones).
HEAP_ZERO_MEMORY = 0x08
HEAP_GENERATE_EXCEPTIONS = 0x04

# File positioning methods.
FILE_BEGIN = 0
FILE_CURRENT = 1
FILE_END = 2

# Create dispositions.
FILE_OPEN = 1
FILE_CREATE = 2
FILE_OPEN_IF = 3

# Internal tuning constants.
MAX_ALLOC_SIZE = 16 * 1024 * 1024
MIN_ALLOC_GRAIN = 32
MAX_PATH_LENGTH = 260
MAX_COMPONENT_LENGTH = 64
CONVERT_COST_PER_CHAR = 6
COPY_COST_PER_BYTE = 220
ZERO_COST_PER_BYTE = 2
PATH_COST_PER_COMPONENT = 180
ALLOC_RETRY_LIMIT = 2

_ILLEGAL_PATH_CHARS = "<>\"|?*"


# ----------------------------------------------------------------------
# Internal helpers (also part of the fault injection target)
# ----------------------------------------------------------------------

def _resolve_file_handle(ctx, handle):
    """Resolve ``handle`` to a live file object; returns None when invalid."""
    file_object = None
    if handle == 0:
        return None
    file_object = ctx.handles.resolve(handle, "File")
    if file_object is None:
        return None
    if file_object.closed:
        return None
    return file_object


def _is_path_char_legal(char):
    """One character of a path component is acceptable."""
    code = 0
    code = ord(char)
    if code < 32:
        return False
    if char in _ILLEGAL_PATH_CHARS:
        return False
    return True


def _canonical_components(text):
    """Split a DOS-ish path into canonical components.

    Handles backslashes, drive prefixes, ``.`` and ``..`` segments, and
    repeated separators.  Returns None when the path is malformed.
    """
    normalized = ""
    components = []
    output = []
    index = 0
    part = ""
    normalized = text.replace("\\", "/")
    if len(normalized) >= 2 and normalized[1] == ":":
        normalized = normalized[2:]
    components = normalized.split("/")
    for part in components:
        index = index + 1
        if part == "" or part == ".":
            continue
        if part == "..":
            if len(output) > 0:
                output.pop()
            continue
        if len(part) > MAX_COMPONENT_LENGTH:
            return None
        for char in part:
            if not _is_path_char_legal(char):
                return None
        output.append(part.lower())
    return output


# ----------------------------------------------------------------------
# Rtl string runtime
# ----------------------------------------------------------------------

def RtlInitUnicodeString(ctx, destination, source):
    """Initialize a counted UNICODE_STRING over ``source``.

    Mirrors the native semantics: the buffer is *referenced*, not copied,
    and the length fields are computed from the source text.
    """
    char_count = 0
    if destination is None:
        return NtStatus.INVALID_PARAMETER
    if source is None:
        destination.buffer = ""
        destination.length = 0
        destination.maximum_length = 0
        destination.heap_address = 0
        return NtStatus.SUCCESS
    char_count = len(source)
    ctx.charge(char_count)
    destination.buffer = source
    destination.length = char_count * 2
    destination.maximum_length = char_count * 2 + 2
    destination.heap_address = 0
    return NtStatus.SUCCESS


def RtlInitAnsiString(ctx, destination, source):
    """Initialize a counted ANSI_STRING over ``source``."""
    byte_count = 0
    if destination is None:
        return NtStatus.INVALID_PARAMETER
    if source is None:
        destination.buffer = ""
        destination.length = 0
        destination.maximum_length = 0
        destination.heap_address = 0
        return NtStatus.SUCCESS
    byte_count = len(source)
    ctx.charge(byte_count)
    destination.buffer = source
    destination.length = byte_count
    destination.maximum_length = byte_count + 1
    destination.heap_address = 0
    return NtStatus.SUCCESS


def RtlFreeUnicodeString(ctx, unicode_string):
    """Release the heap buffer owned by a UNICODE_STRING, if any."""
    freed = False
    if unicode_string is None:
        return NtStatus.INVALID_PARAMETER
    if unicode_string.heap_address != 0:
        freed = ctx.heap.free(unicode_string.heap_address)
        if not freed:
            ctx.heap.mark_corrupted("RtlFreeUnicodeString on bad buffer")
        unicode_string.heap_address = 0
    unicode_string.buffer = ""
    unicode_string.length = 0
    unicode_string.maximum_length = 0
    return NtStatus.SUCCESS


def RtlUnicodeToMultiByteN(ctx, unicode_string, max_bytes):
    """Convert a UNICODE_STRING to a counted multi-byte string.

    Returns ``(status, AnsiString, bytes_written)``.  When the destination
    budget is too small the output is truncated and the status reports
    BUFFER_TOO_SMALL, matching the native contract.
    """
    source_chars = 0
    out_chars = 0
    truncated = False
    text = ""
    result = None
    if unicode_string is None or max_bytes < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    source_chars = unicode_string.length // 2
    out_chars = source_chars
    if out_chars > max_bytes:
        out_chars = max_bytes
        truncated = True
    text = unicode_string.buffer[:out_chars]
    ctx.charge(out_chars * CONVERT_COST_PER_CHAR)
    result = AnsiString()
    result.buffer = text
    result.length = out_chars
    result.maximum_length = max_bytes
    if truncated:
        return (NtStatus.BUFFER_TOO_SMALL, result, out_chars)
    return (NtStatus.SUCCESS, result, out_chars)


def RtlMultiByteToUnicodeN(ctx, ansi_string, max_chars):
    """Convert a counted multi-byte string to a UNICODE_STRING."""
    source_bytes = 0
    out_chars = 0
    truncated = False
    text = ""
    result = None
    if ansi_string is None or max_chars < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    source_bytes = ansi_string.length
    out_chars = source_bytes
    if out_chars > max_chars:
        out_chars = max_chars
        truncated = True
    text = ansi_string.buffer[:out_chars]
    ctx.charge(out_chars * CONVERT_COST_PER_CHAR)
    result = UnicodeString()
    result.buffer = text
    result.length = out_chars * 2
    result.maximum_length = max_chars * 2
    if truncated:
        return (NtStatus.BUFFER_TOO_SMALL, result, out_chars)
    return (NtStatus.SUCCESS, result, out_chars)


def RtlDosPathNameToNtPathName_U(ctx, dos_path):
    """Translate a DOS path into a canonical NT path.

    Returns ``(status, UnicodeString)``.  The output buffer is allocated
    from the process heap (and must be released with
    ``RtlFreeUnicodeString``), which is why path-heavy workloads show heap
    traffic even when the application never allocates directly.
    """
    components = None
    nt_path = ""
    address = 0
    result = None
    joined = ""
    if dos_path is None:
        return (NtStatus.INVALID_PARAMETER, None)
    if len(dos_path) == 0:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, None)
    if len(dos_path) > MAX_PATH_LENGTH:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, None)
    components = _canonical_components(dos_path)
    if components is None:
        return (NtStatus.OBJECT_NAME_NOT_FOUND, None)
    ctx.charge(len(components) * PATH_COST_PER_COMPONENT)
    joined = "/".join(components)
    nt_path = "/" + joined
    address = RtlAllocateHeap(ctx, len(nt_path) * 2 + 2, 0)
    if address == 0:
        return (NtStatus.NO_MEMORY, None)
    result = UnicodeString()
    result.buffer = nt_path
    result.length = len(nt_path) * 2
    result.maximum_length = len(nt_path) * 2 + 2
    result.heap_address = address
    return (NtStatus.SUCCESS, result)


def RtlGetFullPathName_U(ctx, path):
    """Return ``(length_in_chars, full_path)`` for a DOS path, (0, "") on error."""
    components = None
    full_path = ""
    if path is None or len(path) == 0:
        return (0, "")
    components = _canonical_components(path)
    if components is None:
        return (0, "")
    ctx.charge(len(components) * PATH_COST_PER_COMPONENT)
    full_path = "/" + "/".join(components)
    return (len(full_path), full_path)


# ----------------------------------------------------------------------
# Rtl heap runtime
# ----------------------------------------------------------------------

def RtlAllocateHeap(ctx, size, flags=0):
    """Allocate ``size`` bytes from the process heap.

    Returns the block address or 0 on failure.  HEAP_ZERO_MEMORY charges a
    zeroing pass and marks the block, which callers that skip their own
    initialization rely on (a favourite hiding place for MVI-class faults).
    """
    rounded = 0
    address = 0
    attempt = 0
    if size < 0:
        return 0
    if size > MAX_ALLOC_SIZE:
        return 0
    rounded = size
    if rounded < MIN_ALLOC_GRAIN:
        rounded = MIN_ALLOC_GRAIN
    for attempt in range(ALLOC_RETRY_LIMIT):
        address = ctx.heap.allocate(rounded, tag=flags)
        if address != 0:
            break
    if address == 0:
        return 0
    if flags & HEAP_ZERO_MEMORY:
        ctx.charge(rounded * ZERO_COST_PER_BYTE)
        ctx.heap.set_zeroed(address)
    return address


def RtlFreeHeap(ctx, address, flags=0):
    """Release a heap block.  Returns True on success.

    A bad address corrupts the heap (recorded by the engine) but still
    returns True, matching how the native heap frequently fails silently.
    """
    released = False
    if address == 0:
        return False
    released = ctx.heap.free(address)
    if not released:
        return True
    return True


def RtlSizeHeap(ctx, address):
    """Size of a live heap block, or -1 when the address is invalid."""
    size = -1
    if address == 0:
        return -1
    size = ctx.heap.block_size(address)
    return size


# ----------------------------------------------------------------------
# Rtl critical sections
# ----------------------------------------------------------------------

def RtlEnterCriticalSection(ctx, section_name):
    """Acquire a named critical section for the current thread."""
    section = None
    if section_name is None:
        return NtStatus.INVALID_PARAMETER
    section = ctx.sync.get(section_name)
    ctx.charge(40)
    section.enter(ctx.current_thread)
    return NtStatus.SUCCESS


def RtlLeaveCriticalSection(ctx, section_name):
    """Release a named critical section held by the current thread."""
    section = None
    released = False
    if section_name is None:
        return NtStatus.INVALID_PARAMETER
    section = ctx.sync.get(section_name)
    ctx.charge(30)
    released = section.leave(ctx.current_thread)
    if not released:
        return NtStatus.INVALID_PARAMETER
    return NtStatus.SUCCESS


# ----------------------------------------------------------------------
# Nt file API
# ----------------------------------------------------------------------

def NtCreateFile(ctx, path_string, access, disposition, allocation_size=0):
    """Open or create a file by NT path.

    Returns ``(status, handle)``.  ``path_string`` is a UNICODE_STRING as
    produced by ``RtlDosPathNameToNtPathName_U``; the *length field* is
    trusted, so a fault that corrupted the counted length upstream shows up
    here as a lookup of a truncated name.
    """
    path_text = ""
    node = None
    handle = 0
    file_object = None
    wants_write = False
    if path_string is None:
        return (NtStatus.INVALID_PARAMETER, 0)
    if access is None or len(access) == 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    if disposition < FILE_OPEN or disposition > FILE_OPEN_IF:
        return (NtStatus.INVALID_PARAMETER, 0)
    path_text = path_string.text()
    if len(path_text) == 0:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, 0)
    ctx.charge(len(path_text) * 2)
    wants_write = "w" in access or "a" in access
    node = ctx.vfs.lookup(path_text)
    if node is not None and node.is_dir:
        return (NtStatus.FILE_IS_A_DIRECTORY, 0)
    if node is None:
        if disposition == FILE_OPEN:
            return (NtStatus.OBJECT_NAME_NOT_FOUND, 0)
        node = ctx.vfs.create_file(path_text, size=allocation_size)
        if node is None:
            return (NtStatus.OBJECT_PATH_NOT_FOUND, 0)
    else:
        if disposition == FILE_CREATE:
            return (NtStatus.OBJECT_NAME_COLLISION, 0)
        if wants_write and node.read_only:
            return (NtStatus.ACCESS_DENIED, 0)
    file_object = FileObject(node, access=access)
    node.open_count = node.open_count + 1
    handle = ctx.handles.insert(file_object)
    if handle == 0:
        node.open_count = node.open_count - 1
        return (NtStatus.TOO_MANY_OPENED_FILES, 0)
    return (NtStatus.SUCCESS, handle)


def NtOpenFile(ctx, path_string, access):
    """Open an existing file by NT path; returns ``(status, handle)``."""
    status = NtStatus.SUCCESS
    handle = 0
    status, handle = NtCreateFile(ctx, path_string, access, FILE_OPEN)
    return (status, handle)


def NtClose(ctx, handle):
    """Close a handle of any type."""
    closed = False
    if handle == 0:
        return NtStatus.INVALID_HANDLE
    ctx.charge(25)
    closed = ctx.handles.close(handle)
    if not closed:
        return NtStatus.INVALID_HANDLE
    return NtStatus.SUCCESS


def NtReadFile(ctx, handle, length, offset=None):
    """Read from an open file.

    Returns ``(status, SimBuffer, bytes_read)``.  When ``offset`` is None
    the file cursor is used and advanced, as with a synchronous native read.
    """
    file_object = None
    position = 0
    buffer = None
    actual = 0
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None, 0)
    if not file_object.readable():
        return (NtStatus.ACCESS_DENIED, None, 0)
    if length < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    position = file_object.position
    if offset is not None:
        position = offset
    if position >= file_object.node.size and length > 0:
        return (NtStatus.END_OF_FILE, None, 0)
    buffer = ctx.vfs.read(file_object.node, position, length)
    actual = buffer.length
    ctx.charge(actual * COPY_COST_PER_BYTE)
    if offset is None:
        file_object.position = position + actual
    return (NtStatus.SUCCESS, buffer, actual)


def NtWriteFile(ctx, handle, length, offset=None, record=None):
    """Write to an open file; returns ``(status, bytes_written)``.

    ``record`` is the structured-payload channel: the record is laid
    down durably at the write offset (how a database persists a struct
    into a file page).
    """
    file_object = None
    position = 0
    written = 0
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, 0)
    if not file_object.writable():
        return (NtStatus.ACCESS_DENIED, 0)
    if length < 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    position = file_object.position
    if offset is not None:
        position = offset
    written = ctx.vfs.write(file_object.node, position, length, record)
    if written < 0:
        return (NtStatus.DISK_FULL, 0)
    ctx.charge(written * COPY_COST_PER_BYTE)
    if offset is None:
        file_object.position = position + written
    file_object.pending_writes = file_object.pending_writes + 1
    return (NtStatus.SUCCESS, written)


def NtQueryFileRecords(ctx, handle, offset, length):
    """Scatter-read the durable records of a file range.

    Returns ``(status, [(offset, record), ...])``.  The gather/scatter
    analogue databases use for recovery scans (WAL replay, checkpoint
    loading).
    """
    file_object = None
    records = None
    end = 0
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None)
    if not file_object.readable():
        return (NtStatus.ACCESS_DENIED, None)
    if offset < 0 or length < 0:
        return (NtStatus.INVALID_PARAMETER, None)
    end = offset + length
    if end > file_object.node.size:
        end = file_object.node.size
    records = ctx.vfs.records_between(file_object.node, offset, end)
    ctx.charge(80 + len(records) * 45)
    return (NtStatus.SUCCESS, records)


def NtQueryInformationFile(ctx, handle):
    """Return ``(status, info_dict)`` with size/position/path of a file."""
    file_object = None
    info = None
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None)
    ctx.charge(60)
    info = {
        "size": file_object.node.size,
        "position": file_object.position,
        "path": file_object.node.path(),
        "version": file_object.node.version,
    }
    return (NtStatus.SUCCESS, info)


def NtSetInformationFile(ctx, handle, position):
    """Set the file cursor; returns a status code."""
    file_object = None
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return NtStatus.INVALID_HANDLE
    if position < 0:
        return NtStatus.INVALID_PARAMETER
    ctx.charge(40)
    file_object.position = position
    return NtStatus.SUCCESS


# ----------------------------------------------------------------------
# Nt virtual memory API
# ----------------------------------------------------------------------

def NtProtectVirtualMemory(ctx, address, size, new_protection):
    """Change protection of a mapped range.

    Returns ``(status, old_protection)``.
    """
    old = -1
    pages = 0
    if address <= 0 or size <= 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    if not ctx.vmem.valid_protection(new_protection):
        return (NtStatus.INVALID_PARAMETER, 0)
    pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
    ctx.charge(pages * 15)
    old = ctx.vmem.protect(address, size, new_protection)
    if old < 0:
        return (NtStatus.ACCESS_VIOLATION, 0)
    return (NtStatus.SUCCESS, old)


def NtQueryVirtualMemory(ctx, address):
    """Query the region containing ``address``.

    Returns ``(status, (base, size, protection))``.
    """
    info = None
    if address <= 0:
        return (NtStatus.INVALID_PARAMETER, None)
    ctx.charge(35)
    info = ctx.vmem.query(address)
    if info is None:
        return (NtStatus.INVALID_PARAMETER, None)
    return (NtStatus.SUCCESS, info)


# ----------------------------------------------------------------------
# Misc executive services
# ----------------------------------------------------------------------

def NtDelayExecution(ctx, microseconds):
    """Voluntary delay: charges CPU proportional to the requested interval."""
    if microseconds < 0:
        return NtStatus.INVALID_PARAMETER
    ctx.charge(microseconds // 4)
    return NtStatus.SUCCESS


def NtQuerySystemTime(ctx):
    """Return ``(status, ticks)`` from the machine clock (100ns units)."""
    ticks = 0
    ctx.charge(15)
    ticks = int(ctx.kernel.time_source() * 10_000_000)
    return (NtStatus.SUCCESS, ticks)


# Exported names, in the module's canonical order.  The builds expose this
# list to the dispatcher and the G-SWFIT scanner.
__exports__ = [
    "RtlInitUnicodeString",
    "RtlInitAnsiString",
    "RtlFreeUnicodeString",
    "RtlUnicodeToMultiByteN",
    "RtlMultiByteToUnicodeN",
    "RtlDosPathNameToNtPathName_U",
    "RtlGetFullPathName_U",
    "RtlAllocateHeap",
    "RtlFreeHeap",
    "RtlSizeHeap",
    "RtlEnterCriticalSection",
    "RtlLeaveCriticalSection",
    "NtCreateFile",
    "NtOpenFile",
    "NtClose",
    "NtReadFile",
    "NtWriteFile",
    "NtQueryFileRecords",
    "NtQueryInformationFile",
    "NtSetInformationFile",
    "NtProtectVirtualMemory",
    "NtQueryVirtualMemory",
    "NtDelayExecution",
    "NtQuerySystemTime",
]

# Internal helpers scanned for faults alongside the exports (they are part
# of the module's code, exactly like ntdll's internal routines).
__internal__ = [
    "_resolve_file_handle",
    "_is_path_char_legal",
    "_canonical_components",
]

__module_name__ = "ntdll"
