"""``kernel32``-like API module, NT 5.1 build ("Windows XP SP1" analogue).

FAULT INJECTION TARGET — see :mod:`repro.ossim.modules.ntdll50` for the
style rules.  Functional superset of the 5.0 Win32 layer: the same exports
plus ``GetFileAttributesW`` (backed by the 5.1-only
``NtQueryAttributesFile``), existence probing in ``CreateFileW``, and
chunked large reads in ``ReadFile``.
"""

from repro.ossim.status import NtStatus

# Win32 error codes (subset).
ERROR_SUCCESS = 0
ERROR_FILE_NOT_FOUND = 2
ERROR_PATH_NOT_FOUND = 3
ERROR_ACCESS_DENIED = 5
ERROR_INVALID_HANDLE = 6
ERROR_NOT_ENOUGH_MEMORY = 8
ERROR_SHARING_VIOLATION = 32
ERROR_HANDLE_EOF = 38
ERROR_INVALID_PARAMETER = 87
ERROR_DISK_FULL = 112
ERROR_ALREADY_EXISTS = 183
ERROR_INTERNAL = 1359

# File positioning methods (Win32 names).
FILE_BEGIN = 0
FILE_CURRENT = 1
FILE_END = 2

# Create dispositions (Win32 names, translated to NT dispositions).
CREATE_NEW = 1
OPEN_EXISTING = 3
OPEN_ALWAYS = 4

INVALID_HANDLE_VALUE = 0
INVALID_SET_FILE_POINTER = -1
INVALID_FILE_SIZE = -1
INVALID_FILE_ATTRIBUTES = -1

FILE_ATTRIBUTE_NORMAL = 0x80
FILE_ATTRIBUTE_DIRECTORY = 0x10
FILE_ATTRIBUTE_READONLY = 0x01

READ_CHUNK_SIZE = 65536


def _status_to_win32(status):
    """Translate an NTSTATUS into the closest Win32 error code."""
    code = ERROR_INTERNAL
    if status == NtStatus.SUCCESS:
        return ERROR_SUCCESS
    if status == NtStatus.OBJECT_NAME_NOT_FOUND:
        return ERROR_FILE_NOT_FOUND
    if status == NtStatus.OBJECT_PATH_NOT_FOUND:
        return ERROR_PATH_NOT_FOUND
    if status == NtStatus.INVALID_HANDLE:
        return ERROR_INVALID_HANDLE
    if status == NtStatus.ACCESS_DENIED:
        return ERROR_ACCESS_DENIED
    if status == NtStatus.END_OF_FILE:
        return ERROR_HANDLE_EOF
    if status == NtStatus.NO_MEMORY:
        return ERROR_NOT_ENOUGH_MEMORY
    if status == NtStatus.SHARING_VIOLATION:
        return ERROR_SHARING_VIOLATION
    if status == NtStatus.OBJECT_NAME_COLLISION:
        return ERROR_ALREADY_EXISTS
    if status == NtStatus.DISK_FULL:
        return ERROR_DISK_FULL
    if status == NtStatus.INVALID_PARAMETER:
        return ERROR_INVALID_PARAMETER
    return code


def GetLastError(ctx):
    """Return the per-thread last error value."""
    return ctx.last_error


def SetLastError(ctx, error_code):
    """Store the per-thread last error value."""
    ctx.last_error = error_code
    return None


def CloseHandle(ctx, handle):
    """Close any handle; returns True on success."""
    status = NtStatus.SUCCESS
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return False
    if handle < 0:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return False
    status = ctx.api.NtClose(handle)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return False
    SetLastError(ctx, ERROR_SUCCESS)
    return True


def GetFileAttributesW(ctx, dos_path):
    """Attribute probe by DOS path (5.1 only); -1 on failure."""
    status = NtStatus.SUCCESS
    nt_path = None
    attributes = None
    result = 0
    if dos_path is None or len(dos_path) == 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return INVALID_FILE_ATTRIBUTES
    status, nt_path = ctx.api.RtlDosPathNameToNtPathName_U(dos_path)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return INVALID_FILE_ATTRIBUTES
    status, attributes = ctx.api.NtQueryAttributesFile(nt_path)
    ctx.api.RtlFreeUnicodeString(nt_path)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return INVALID_FILE_ATTRIBUTES
    result = FILE_ATTRIBUTE_NORMAL
    if attributes["directory"]:
        result = FILE_ATTRIBUTE_DIRECTORY
    if attributes["read_only"]:
        result = result | FILE_ATTRIBUTE_READONLY
    SetLastError(ctx, ERROR_SUCCESS)
    return result


def CreateFileW(ctx, dos_path, access, creation_disposition):
    """Open or create a file by DOS path (5.1 variant); handle or 0.

    XP probes the name before a plain open so a missing file fails without
    building the full create machinery.
    """
    status = NtStatus.SUCCESS
    nt_disposition = 1
    handle = 0
    nt_path = None
    probe = None
    if dos_path is None or len(dos_path) == 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return 0
    if creation_disposition == CREATE_NEW:
        nt_disposition = 2
    if creation_disposition == OPEN_ALWAYS:
        nt_disposition = 3
    status, nt_path = ctx.api.RtlDosPathNameToNtPathName_U(dos_path)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return 0
    if creation_disposition == OPEN_EXISTING:
        status, probe = ctx.api.NtQueryAttributesFile(nt_path)
        if status != NtStatus.SUCCESS:
            ctx.api.RtlFreeUnicodeString(nt_path)
            SetLastError(ctx, _status_to_win32(status))
            return 0
    status, handle = ctx.api.NtCreateFile(nt_path, access, nt_disposition)
    ctx.api.RtlFreeUnicodeString(nt_path)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return 0
    SetLastError(ctx, ERROR_SUCCESS)
    return handle


def ReadFile(ctx, handle, length):
    """Synchronous read at the file cursor (5.1 variant).

    Large reads are issued in chunks of READ_CHUNK_SIZE, as the XP cache
    manager does; the returned buffer covers the full contiguous range.
    Returns ``(ok, SimBuffer, bytes_read)``.
    """
    status = NtStatus.SUCCESS
    buffer = None
    chunk = None
    actual = 0
    total = 0
    remaining = 0
    request = 0
    first_buffer = None
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return (False, None, 0)
    if length < 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return (False, None, 0)
    if length <= READ_CHUNK_SIZE:
        status, buffer, actual = ctx.api.NtReadFile(handle, length)
        if status == NtStatus.END_OF_FILE:
            SetLastError(ctx, ERROR_SUCCESS)
            return (True, None, 0)
        if status != NtStatus.SUCCESS:
            SetLastError(ctx, _status_to_win32(status))
            return (False, None, 0)
        SetLastError(ctx, ERROR_SUCCESS)
        return (True, buffer, actual)
    remaining = length
    for _chunk_index in range(1 + length // READ_CHUNK_SIZE):
        if remaining <= 0:
            break
        request = remaining
        if request > READ_CHUNK_SIZE:
            request = READ_CHUNK_SIZE
        status, chunk, actual = ctx.api.NtReadFile(handle, request)
        if status == NtStatus.END_OF_FILE:
            break
        if status != NtStatus.SUCCESS:
            SetLastError(ctx, _status_to_win32(status))
            return (False, None, 0)
        if first_buffer is None:
            first_buffer = chunk
        total = total + actual
        remaining = remaining - actual
        if actual < request:
            break
    SetLastError(ctx, ERROR_SUCCESS)
    return (True, first_buffer, total)


def WriteFile(ctx, handle, length):
    """Synchronous write at the file cursor; returns ``(ok, written)``."""
    status = NtStatus.SUCCESS
    written = 0
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return (False, 0)
    if length < 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return (False, 0)
    status, written = ctx.api.NtWriteFile(handle, length)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return (False, 0)
    SetLastError(ctx, ERROR_SUCCESS)
    return (True, written)


def SetFilePointer(ctx, handle, distance, move_method):
    """Move the file cursor; returns the new position or -1 on error."""
    status = NtStatus.SUCCESS
    info = None
    base = 0
    target = 0
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return INVALID_SET_FILE_POINTER
    if move_method < FILE_BEGIN or move_method > FILE_END:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return INVALID_SET_FILE_POINTER
    status, info = ctx.api.NtQueryInformationFile(handle)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return INVALID_SET_FILE_POINTER
    if move_method == FILE_BEGIN:
        base = 0
    if move_method == FILE_CURRENT:
        base = info["position"]
    if move_method == FILE_END:
        base = info["size"]
    target = base + distance
    if target < 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return INVALID_SET_FILE_POINTER
    status = ctx.api.NtSetInformationFile(handle, target)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return INVALID_SET_FILE_POINTER
    SetLastError(ctx, ERROR_SUCCESS)
    return target


def SetEndOfFile(ctx, handle):
    """Truncate (or extend) the file at the current cursor (5.1).

    Returns True on success.  Adds a writability pre-check.
    """
    status = NtStatus.SUCCESS
    info = None
    done = False
    file_object = None
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return False
    if handle < 0:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return False
    file_object = ctx.handles.resolve(handle, "File")
    if file_object is None:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return False
    if not file_object.writable():
        SetLastError(ctx, ERROR_ACCESS_DENIED)
        return False
    status, info = ctx.api.NtQueryInformationFile(handle)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return False
    ctx.charge(130)
    done = ctx.vfs.truncate(file_object.node, info["position"])
    if not done:
        SetLastError(ctx, ERROR_DISK_FULL)
        return False
    SetLastError(ctx, ERROR_SUCCESS)
    return True


def GetFileSize(ctx, handle):
    """Size of an open file, or -1 on error."""
    status = NtStatus.SUCCESS
    info = None
    if handle == INVALID_HANDLE_VALUE:
        SetLastError(ctx, ERROR_INVALID_HANDLE)
        return INVALID_FILE_SIZE
    status, info = ctx.api.NtQueryInformationFile(handle)
    if status != NtStatus.SUCCESS:
        SetLastError(ctx, _status_to_win32(status))
        return INVALID_FILE_SIZE
    SetLastError(ctx, ERROR_SUCCESS)
    return info["size"]


def GetLongPathNameW(ctx, dos_path):
    """Canonicalize a path against the live namespace (5.1).

    Returns ``(length_in_chars, long_path)``; length 0 signals failure.
    """
    length = 0
    full_path = ""
    node = None
    if dos_path is None or len(dos_path) == 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return (0, "")
    length, full_path = ctx.api.RtlGetFullPathName_U(dos_path)
    if length == 0:
        SetLastError(ctx, ERROR_PATH_NOT_FOUND)
        return (0, "")
    node = ctx.vfs.lookup(full_path)
    if node is None:
        SetLastError(ctx, ERROR_FILE_NOT_FOUND)
        return (0, "")
    SetLastError(ctx, ERROR_SUCCESS)
    return (len(full_path), full_path)


def DeleteFileW(ctx, dos_path):
    """Delete a file by DOS path (5.1: probes attributes first)."""
    length = 0
    full_path = ""
    removed = False
    attributes = 0
    if dos_path is None or len(dos_path) == 0:
        SetLastError(ctx, ERROR_INVALID_PARAMETER)
        return False
    attributes = GetFileAttributesW(ctx, dos_path)
    if attributes == INVALID_FILE_ATTRIBUTES:
        return False
    if attributes & FILE_ATTRIBUTE_READONLY:
        SetLastError(ctx, ERROR_ACCESS_DENIED)
        return False
    length, full_path = ctx.api.RtlGetFullPathName_U(dos_path)
    if length == 0:
        SetLastError(ctx, ERROR_PATH_NOT_FOUND)
        return False
    ctx.charge(85)
    removed = ctx.vfs.delete(full_path)
    if not removed:
        SetLastError(ctx, ERROR_ACCESS_DENIED)
        return False
    SetLastError(ctx, ERROR_SUCCESS)
    return True


__exports__ = [
    "CloseHandle",
    "CreateFileW",
    "ReadFile",
    "WriteFile",
    "SetFilePointer",
    "SetEndOfFile",
    "GetFileSize",
    "GetFileAttributesW",
    "GetLongPathNameW",
    "DeleteFileW",
    "GetLastError",
    "SetLastError",
]

__internal__ = [
    "_status_to_win32",
]

__module_name__ = "kernel32"
