"""``ntdll``-like API module, NT 5.1 build ("Windows XP SP1" analogue).

FAULT INJECTION TARGET — see :mod:`repro.ossim.modules.ntdll50` for the
style rules.  The 5.1 build is a functional superset of the 5.0 build: the
same contracts, plus the hardening and performance machinery XP added on
top of 2000 (reserved-name checks in the path translator, a small-block
lookaside front end and tail validation in the heap, read prefetch
accounting, stricter counted-string validation).  The extra code is the
point: scanning this build yields a substantially larger faultload, which
is the effect behind the paper's Table 3 (2927 faults on XP vs 1714 on
Windows 2000).
"""

from repro.ossim.status import NtStatus
from repro.ossim.strings import AnsiString, UnicodeString
from repro.ossim.memory import PAGE_SIZE
from repro.ossim.objects import FileObject

# Heap flags.
HEAP_ZERO_MEMORY = 0x08
HEAP_GENERATE_EXCEPTIONS = 0x04
HEAP_TAIL_CHECKING = 0x20

# File positioning methods.
FILE_BEGIN = 0
FILE_CURRENT = 1
FILE_END = 2

# Create dispositions.
FILE_OPEN = 1
FILE_CREATE = 2
FILE_OPEN_IF = 3

# Internal tuning constants.
MAX_ALLOC_SIZE = 16 * 1024 * 1024
MIN_ALLOC_GRAIN = 32
LOOKASIDE_MAX_SIZE = 1024
LOOKASIDE_DEPTH = 32
MAX_PATH_LENGTH = 260
MAX_COMPONENT_LENGTH = 64
CONVERT_COST_PER_CHAR = 8
COPY_COST_PER_BYTE = 290
ZERO_COST_PER_BYTE = 2
PATH_COST_PER_COMPONENT = 210
SECURITY_CHECK_COST = 55
PREFETCH_WINDOW = 3
PREFETCH_COST = 120
ALLOC_RETRY_LIMIT = 2

_ILLEGAL_PATH_CHARS = "<>\"|?*"
_RESERVED_DEVICE_NAMES = (
    "con", "prn", "aux", "nul",
    "com1", "com2", "com3", "com4",
    "lpt1", "lpt2", "lpt3",
)


# ----------------------------------------------------------------------
# Internal helpers (also part of the fault injection target)
# ----------------------------------------------------------------------

def _resolve_file_handle(ctx, handle):
    """Resolve ``handle`` to a live file object; returns None when invalid."""
    file_object = None
    if handle == 0:
        return None
    if handle < 0:
        return None
    file_object = ctx.handles.resolve(handle, "File")
    if file_object is None:
        return None
    if file_object.closed:
        return None
    return file_object


def _is_path_char_legal(char):
    """One character of a path component is acceptable."""
    code = 0
    code = ord(char)
    if code < 32:
        return False
    if char in _ILLEGAL_PATH_CHARS:
        return False
    return True


def _is_reserved_component(part):
    """True for DOS device names that must not appear as path components."""
    stem = ""
    dot = 0
    stem = part
    dot = part.find(".")
    if dot >= 0:
        stem = part[:dot]
    if stem in _RESERVED_DEVICE_NAMES:
        return True
    return False


def _canonical_components(ctx, text):
    """Split a DOS-ish path into canonical components with 5.1 hardening.

    In addition to the 5.0 normalization this rejects reserved device
    names, trailing dots and spaces — the checks XP added after the
    device-name path traversal advisories.
    """
    normalized = ""
    components = []
    output = []
    index = 0
    part = ""
    trimmed = ""
    normalized = text.replace("\\", "/")
    if len(normalized) >= 2 and normalized[1] == ":":
        normalized = normalized[2:]
    components = normalized.split("/")
    for part in components:
        index = index + 1
        if part == "" or part == ".":
            continue
        if part == "..":
            if len(output) > 0:
                output.pop()
            continue
        if len(part) > MAX_COMPONENT_LENGTH:
            return None
        trimmed = part.rstrip(". ")
        if len(trimmed) == 0:
            return None
        ctx.charge(SECURITY_CHECK_COST)
        if _is_reserved_component(trimmed.lower()):
            return None
        for char in trimmed:
            if not _is_path_char_legal(char):
                return None
        output.append(trimmed.lower())
    return output


def _validate_counted_string(string_object, is_unicode):
    """5.1 strict validation of a counted string's header fields."""
    if string_object is None:
        return False
    if string_object.length < 0:
        return False
    if string_object.maximum_length < string_object.length:
        return False
    if is_unicode and string_object.length % 2 != 0:
        return False
    return True


def _lookaside_state(ctx):
    """Fetch (or create) the per-process small-block lookaside counters."""
    state = None
    state = ctx.os_state.get("lookaside")
    if state is None:
        state = {"hits": 0, "misses": 0, "pushes": 0, "lists": {}}
        ctx.os_state["lookaside"] = state
    return state


def _lookaside_pop(ctx, rounded):
    """Take a cached block address for ``rounded`` bytes, or 0."""
    state = None
    bucket = None
    address = 0
    state = _lookaside_state(ctx)
    bucket = state["lists"].get(rounded)
    if bucket is not None and len(bucket) > 0:
        address = bucket.pop()
        state["hits"] = state["hits"] + 1
        return address
    state["misses"] = state["misses"] + 1
    return 0


def _lookaside_push(ctx, rounded, address):
    """Return a freed small block to the lookaside; False when full."""
    state = None
    bucket = None
    state = _lookaside_state(ctx)
    bucket = state["lists"].get(rounded)
    if bucket is None:
        bucket = []
        state["lists"][rounded] = bucket
    if len(bucket) >= LOOKASIDE_DEPTH:
        return False
    bucket.append(address)
    state["pushes"] = state["pushes"] + 1
    return True


def _prefetch_state(ctx):
    """Fetch (or create) the per-process read-prefetch window map."""
    state = None
    state = ctx.os_state.get("prefetch")
    if state is None:
        state = {}
        ctx.os_state["prefetch"] = state
    return state


# ----------------------------------------------------------------------
# Rtl string runtime
# ----------------------------------------------------------------------

def RtlInitUnicodeString(ctx, destination, source):
    """Initialize a counted UNICODE_STRING over ``source`` (5.1 variant).

    XP added an explicit length clamp so oversized sources set a truncated
    but well-formed header instead of an inconsistent one.
    """
    char_count = 0
    clamped = 0
    if destination is None:
        return NtStatus.INVALID_PARAMETER
    if source is None:
        destination.buffer = ""
        destination.length = 0
        destination.maximum_length = 0
        destination.heap_address = 0
        return NtStatus.SUCCESS
    char_count = len(source)
    clamped = char_count
    if clamped > MAX_PATH_LENGTH * 4:
        clamped = MAX_PATH_LENGTH * 4
    ctx.charge(clamped)
    destination.buffer = source[:clamped]
    destination.length = clamped * 2
    destination.maximum_length = clamped * 2 + 2
    destination.heap_address = 0
    return NtStatus.SUCCESS


def RtlInitAnsiString(ctx, destination, source):
    """Initialize a counted ANSI_STRING over ``source`` (5.1 variant)."""
    byte_count = 0
    clamped = 0
    if destination is None:
        return NtStatus.INVALID_PARAMETER
    if source is None:
        destination.buffer = ""
        destination.length = 0
        destination.maximum_length = 0
        destination.heap_address = 0
        return NtStatus.SUCCESS
    byte_count = len(source)
    clamped = byte_count
    if clamped > MAX_PATH_LENGTH * 4:
        clamped = MAX_PATH_LENGTH * 4
    ctx.charge(clamped)
    destination.buffer = source[:clamped]
    destination.length = clamped
    destination.maximum_length = clamped + 1
    destination.heap_address = 0
    return NtStatus.SUCCESS


def RtlValidateUnicodeString(ctx, unicode_string):
    """Strict header validation added in 5.1; returns a status code."""
    consistent = False
    ctx.charge(20)
    consistent = _validate_counted_string(unicode_string, True)
    if not consistent:
        return NtStatus.INVALID_PARAMETER
    if unicode_string.char_count() != len(unicode_string.buffer):
        return NtStatus.INVALID_PARAMETER
    return NtStatus.SUCCESS


def RtlFreeUnicodeString(ctx, unicode_string):
    """Release the heap buffer owned by a UNICODE_STRING, if any."""
    freed = False
    valid = False
    if unicode_string is None:
        return NtStatus.INVALID_PARAMETER
    valid = _validate_counted_string(unicode_string, True)
    if not valid:
        ctx.heap.mark_corrupted("RtlFreeUnicodeString on malformed header")
        return NtStatus.INVALID_PARAMETER
    if unicode_string.heap_address != 0:
        freed = ctx.heap.free(unicode_string.heap_address)
        if not freed:
            ctx.heap.mark_corrupted("RtlFreeUnicodeString on bad buffer")
        unicode_string.heap_address = 0
    unicode_string.buffer = ""
    unicode_string.length = 0
    unicode_string.maximum_length = 0
    return NtStatus.SUCCESS


def RtlUnicodeToMultiByteN(ctx, unicode_string, max_bytes):
    """Convert a UNICODE_STRING to a counted multi-byte string (5.1).

    Returns ``(status, AnsiString, bytes_written)``.  The 5.1 variant
    validates the source header before trusting its length field.
    """
    source_chars = 0
    out_chars = 0
    truncated = False
    text = ""
    result = None
    valid = False
    if unicode_string is None or max_bytes < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    valid = _validate_counted_string(unicode_string, True)
    if not valid:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    source_chars = unicode_string.length // 2
    out_chars = source_chars
    if out_chars > max_bytes:
        out_chars = max_bytes
        truncated = True
    text = unicode_string.buffer[:out_chars]
    ctx.charge(out_chars * CONVERT_COST_PER_CHAR)
    result = AnsiString()
    result.buffer = text
    result.length = out_chars
    result.maximum_length = max_bytes
    if truncated:
        return (NtStatus.BUFFER_TOO_SMALL, result, out_chars)
    return (NtStatus.SUCCESS, result, out_chars)


def RtlMultiByteToUnicodeN(ctx, ansi_string, max_chars):
    """Convert a counted multi-byte string to a UNICODE_STRING (5.1)."""
    source_bytes = 0
    out_chars = 0
    truncated = False
    text = ""
    result = None
    valid = False
    if ansi_string is None or max_chars < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    valid = _validate_counted_string(ansi_string, False)
    if not valid:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    source_bytes = ansi_string.length
    out_chars = source_bytes
    if out_chars > max_chars:
        out_chars = max_chars
        truncated = True
    text = ansi_string.buffer[:out_chars]
    ctx.charge(out_chars * CONVERT_COST_PER_CHAR)
    result = UnicodeString()
    result.buffer = text
    result.length = out_chars * 2
    result.maximum_length = max_chars * 2
    if truncated:
        return (NtStatus.BUFFER_TOO_SMALL, result, out_chars)
    return (NtStatus.SUCCESS, result, out_chars)


def RtlDosPathNameToNtPathName_U(ctx, dos_path):
    """Translate a DOS path into a canonical NT path (5.1 hardened).

    Returns ``(status, UnicodeString)``.  Rejects reserved device names and
    over-long inputs before any allocation happens.
    """
    components = None
    nt_path = ""
    address = 0
    result = None
    joined = ""
    depth = 0
    if dos_path is None:
        return (NtStatus.INVALID_PARAMETER, None)
    if len(dos_path) == 0:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, None)
    if len(dos_path) > MAX_PATH_LENGTH:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, None)
    components = _canonical_components(ctx, dos_path)
    if components is None:
        return (NtStatus.OBJECT_NAME_NOT_FOUND, None)
    depth = len(components)
    ctx.charge(depth * PATH_COST_PER_COMPONENT)
    joined = "/".join(components)
    nt_path = "/" + joined
    address = RtlAllocateHeap(ctx, len(nt_path) * 2 + 2, 0)
    if address == 0:
        return (NtStatus.NO_MEMORY, None)
    result = UnicodeString()
    result.buffer = nt_path
    result.length = len(nt_path) * 2
    result.maximum_length = len(nt_path) * 2 + 2
    result.heap_address = address
    return (NtStatus.SUCCESS, result)


def RtlGetFullPathName_U(ctx, path):
    """Return ``(length_in_chars, full_path)`` for a DOS path (5.1)."""
    components = None
    full_path = ""
    if path is None or len(path) == 0:
        return (0, "")
    if len(path) > MAX_PATH_LENGTH:
        return (0, "")
    components = _canonical_components(ctx, path)
    if components is None:
        return (0, "")
    ctx.charge(len(components) * PATH_COST_PER_COMPONENT)
    full_path = "/" + "/".join(components)
    return (len(full_path), full_path)


# ----------------------------------------------------------------------
# Rtl heap runtime (lookaside front end added in 5.1)
# ----------------------------------------------------------------------

def RtlAllocateHeap(ctx, size, flags=0):
    """Allocate ``size`` bytes from the process heap (5.1 variant).

    Small requests are served from a per-size lookaside list when possible;
    the main heap engine is the fallback.  Returns the block address or 0.
    """
    rounded = 0
    address = 0
    attempt = 0
    small = False
    if size < 0:
        return 0
    if size > MAX_ALLOC_SIZE:
        return 0
    rounded = size
    if rounded < MIN_ALLOC_GRAIN:
        rounded = MIN_ALLOC_GRAIN
    if rounded <= LOOKASIDE_MAX_SIZE:
        small = True
    if small:
        ctx.charge(12)
        address = _lookaside_pop(ctx, rounded)
        if address != 0 and ctx.heap.block_size(address) < 0:
            # The cached address went stale (the block was freed behind the
            # lookaside's back); fall back to the engine.
            address = 0
    if address == 0:
        for attempt in range(ALLOC_RETRY_LIMIT):
            address = ctx.heap.allocate(rounded, tag=flags)
            if address != 0:
                break
    if address == 0:
        return 0
    if flags & HEAP_ZERO_MEMORY:
        ctx.charge(rounded * ZERO_COST_PER_BYTE)
        ctx.heap.set_zeroed(address)
    return address


def RtlFreeHeap(ctx, address, flags=0):
    """Release a heap block (5.1 variant, with tail checking).

    Returns True on success.  Tail checking validates the block header
    before the release and reports corruption instead of freeing blindly.
    """
    released = False
    size = 0
    if address == 0:
        return False
    if flags & HEAP_TAIL_CHECKING:
        ctx.charge(18)
        size = ctx.heap.block_size(address)
        if size < 0:
            ctx.heap.mark_corrupted("tail check failed in RtlFreeHeap")
            return False
    released = ctx.heap.free(address)
    if not released:
        return True
    return True


def RtlSizeHeap(ctx, address):
    """Size of a live heap block, or -1 when the address is invalid."""
    size = -1
    if address == 0:
        return -1
    size = ctx.heap.block_size(address)
    return size


# ----------------------------------------------------------------------
# Rtl critical sections
# ----------------------------------------------------------------------

def RtlEnterCriticalSection(ctx, section_name):
    """Acquire a named critical section (5.1: spin accounting added)."""
    section = None
    if section_name is None:
        return NtStatus.INVALID_PARAMETER
    section = ctx.sync.get(section_name)
    ctx.charge(45)
    section.enter(ctx.current_thread)
    return NtStatus.SUCCESS


def RtlLeaveCriticalSection(ctx, section_name):
    """Release a named critical section held by the current thread."""
    section = None
    released = False
    if section_name is None:
        return NtStatus.INVALID_PARAMETER
    section = ctx.sync.get(section_name)
    ctx.charge(32)
    released = section.leave(ctx.current_thread)
    if not released:
        return NtStatus.INVALID_PARAMETER
    return NtStatus.SUCCESS


# ----------------------------------------------------------------------
# Nt file API
# ----------------------------------------------------------------------

def NtCreateFile(ctx, path_string, access, disposition, allocation_size=0):
    """Open or create a file by NT path (5.1 variant).

    Returns ``(status, handle)``.  Adds strict counted-string validation
    and per-process open accounting on top of the 5.0 logic.
    """
    path_text = ""
    node = None
    handle = 0
    file_object = None
    wants_write = False
    valid = False
    opens = 0
    if path_string is None:
        return (NtStatus.INVALID_PARAMETER, 0)
    if access is None or len(access) == 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    if disposition < FILE_OPEN or disposition > FILE_OPEN_IF:
        return (NtStatus.INVALID_PARAMETER, 0)
    valid = _validate_counted_string(path_string, True)
    if not valid:
        return (NtStatus.INVALID_PARAMETER, 0)
    path_text = path_string.text()
    if len(path_text) == 0:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, 0)
    ctx.charge(len(path_text) * 2)
    ctx.charge(SECURITY_CHECK_COST)
    wants_write = "w" in access or "a" in access
    node = ctx.vfs.lookup(path_text)
    if node is not None and node.is_dir:
        return (NtStatus.FILE_IS_A_DIRECTORY, 0)
    if node is None:
        if disposition == FILE_OPEN:
            return (NtStatus.OBJECT_NAME_NOT_FOUND, 0)
        node = ctx.vfs.create_file(path_text, size=allocation_size)
        if node is None:
            return (NtStatus.OBJECT_PATH_NOT_FOUND, 0)
    else:
        if disposition == FILE_CREATE:
            return (NtStatus.OBJECT_NAME_COLLISION, 0)
        if wants_write and node.read_only:
            return (NtStatus.ACCESS_DENIED, 0)
    file_object = FileObject(node, access=access)
    node.open_count = node.open_count + 1
    handle = ctx.handles.insert(file_object)
    if handle == 0:
        node.open_count = node.open_count - 1
        return (NtStatus.TOO_MANY_OPENED_FILES, 0)
    opens = ctx.os_state.get("file_opens", 0)
    ctx.os_state["file_opens"] = opens + 1
    return (NtStatus.SUCCESS, handle)


def NtOpenFile(ctx, path_string, access):
    """Open an existing file by NT path; returns ``(status, handle)``."""
    status = NtStatus.SUCCESS
    handle = 0
    status, handle = NtCreateFile(ctx, path_string, access, FILE_OPEN)
    return (status, handle)


def NtQueryAttributesFile(ctx, path_string):
    """Existence/metadata probe by path (added in 5.1).

    Returns ``(status, attributes_dict)`` without opening a handle.
    """
    path_text = ""
    node = None
    valid = False
    if path_string is None:
        return (NtStatus.INVALID_PARAMETER, None)
    valid = _validate_counted_string(path_string, True)
    if not valid:
        return (NtStatus.INVALID_PARAMETER, None)
    path_text = path_string.text()
    if len(path_text) == 0:
        return (NtStatus.OBJECT_PATH_NOT_FOUND, None)
    ctx.charge(len(path_text))
    node = ctx.vfs.lookup(path_text)
    if node is None:
        return (NtStatus.OBJECT_NAME_NOT_FOUND, None)
    return (NtStatus.SUCCESS, {
        "directory": node.is_dir,
        "size": node.size,
        "read_only": node.read_only,
    })


def NtClose(ctx, handle):
    """Close a handle of any type (5.1: negative handles rejected)."""
    closed = False
    if handle == 0:
        return NtStatus.INVALID_HANDLE
    if handle < 0:
        return NtStatus.INVALID_HANDLE
    ctx.charge(28)
    closed = ctx.handles.close(handle)
    if not closed:
        return NtStatus.INVALID_HANDLE
    return NtStatus.SUCCESS


def NtReadFile(ctx, handle, length, offset=None):
    """Read from an open file (5.1 variant, with prefetch accounting).

    Returns ``(status, SimBuffer, bytes_read)``.  Sequential reads within
    the prefetch window are cheaper per byte, modelling the XP cache
    manager's read-ahead.
    """
    file_object = None
    position = 0
    buffer = None
    actual = 0
    prefetch = None
    window_end = 0
    cost_per_byte = 0
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None, 0)
    if not file_object.readable():
        return (NtStatus.ACCESS_DENIED, None, 0)
    if length < 0:
        return (NtStatus.INVALID_PARAMETER, None, 0)
    position = file_object.position
    if offset is not None:
        position = offset
    if position >= file_object.node.size and length > 0:
        return (NtStatus.END_OF_FILE, None, 0)
    buffer = ctx.vfs.read(file_object.node, position, length)
    actual = buffer.length
    prefetch = _prefetch_state(ctx)
    window_end = prefetch.get(handle, -1)
    cost_per_byte = COPY_COST_PER_BYTE
    if window_end >= 0 and position <= window_end:
        cost_per_byte = COPY_COST_PER_BYTE - 40
    ctx.charge(actual * cost_per_byte)
    ctx.charge(PREFETCH_COST)
    prefetch[handle] = position + actual * PREFETCH_WINDOW
    if offset is None:
        file_object.position = position + actual
    return (NtStatus.SUCCESS, buffer, actual)


def NtWriteFile(ctx, handle, length, offset=None, record=None):
    """Write to an open file (5.1); returns ``(status, bytes_written)``.

    ``record`` is the structured-payload channel (see the 5.0 variant).
    """
    file_object = None
    position = 0
    written = 0
    prefetch = None
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, 0)
    if not file_object.writable():
        return (NtStatus.ACCESS_DENIED, 0)
    if length < 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    position = file_object.position
    if offset is not None:
        position = offset
    written = ctx.vfs.write(file_object.node, position, length, record)
    if written < 0:
        return (NtStatus.DISK_FULL, 0)
    ctx.charge(written * COPY_COST_PER_BYTE)
    if offset is None:
        file_object.position = position + written
    file_object.pending_writes = file_object.pending_writes + 1
    prefetch = _prefetch_state(ctx)
    if handle in prefetch:
        # Writes invalidate the read-ahead window for this handle.
        prefetch[handle] = -1
    return (NtStatus.SUCCESS, written)


def NtQueryFileRecords(ctx, handle, offset, length):
    """Scatter-read the durable records of a file range (5.1 variant).

    Returns ``(status, [(offset, record), ...])``.  Adds the range clamp
    validation the 5.0 variant applies after the fact.
    """
    file_object = None
    records = None
    end = 0
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None)
    if not file_object.readable():
        return (NtStatus.ACCESS_DENIED, None)
    if offset < 0 or length < 0:
        return (NtStatus.INVALID_PARAMETER, None)
    if offset > file_object.node.size:
        return (NtStatus.SUCCESS, [])
    end = offset + length
    if end > file_object.node.size:
        end = file_object.node.size
    records = ctx.vfs.records_between(file_object.node, offset, end)
    ctx.charge(90 + len(records) * 50)
    return (NtStatus.SUCCESS, records)


def NtQueryInformationFile(ctx, handle):
    """Return ``(status, info_dict)`` with size/position/path of a file."""
    file_object = None
    info = None
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return (NtStatus.INVALID_HANDLE, None)
    ctx.charge(65)
    info = {
        "size": file_object.node.size,
        "position": file_object.position,
        "path": file_object.node.path(),
        "version": file_object.node.version,
    }
    return (NtStatus.SUCCESS, info)


def NtSetInformationFile(ctx, handle, position):
    """Set the file cursor; returns a status code."""
    file_object = None
    prefetch = None
    file_object = _resolve_file_handle(ctx, handle)
    if file_object is None:
        return NtStatus.INVALID_HANDLE
    if position < 0:
        return NtStatus.INVALID_PARAMETER
    ctx.charge(45)
    file_object.position = position
    prefetch = _prefetch_state(ctx)
    if handle in prefetch:
        # A random seek invalidates the read-ahead window.
        prefetch[handle] = -1
    return NtStatus.SUCCESS


# ----------------------------------------------------------------------
# Nt virtual memory API
# ----------------------------------------------------------------------

def NtProtectVirtualMemory(ctx, address, size, new_protection):
    """Change protection of a mapped range (5.1 variant).

    Returns ``(status, old_protection)``.  Adds a range pre-check before
    the protection change so partially-covered ranges fail cleanly.
    """
    old = -1
    pages = 0
    info = None
    if address <= 0 or size <= 0:
        return (NtStatus.INVALID_PARAMETER, 0)
    if not ctx.vmem.valid_protection(new_protection):
        return (NtStatus.INVALID_PARAMETER, 0)
    info = ctx.vmem.query(address)
    if info is None:
        return (NtStatus.ACCESS_VIOLATION, 0)
    if address + size > info[0] + info[1]:
        return (NtStatus.INVALID_PARAMETER, 0)
    pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
    ctx.charge(pages * 17)
    old = ctx.vmem.protect(address, size, new_protection)
    if old < 0:
        return (NtStatus.ACCESS_VIOLATION, 0)
    return (NtStatus.SUCCESS, old)


def NtQueryVirtualMemory(ctx, address):
    """Query the region containing ``address`` (5.1).

    Returns ``(status, (base, size, protection))``.
    """
    info = None
    if address <= 0:
        return (NtStatus.INVALID_PARAMETER, None)
    ctx.charge(38)
    info = ctx.vmem.query(address)
    if info is None:
        return (NtStatus.INVALID_PARAMETER, None)
    return (NtStatus.SUCCESS, info)


# ----------------------------------------------------------------------
# Misc executive services
# ----------------------------------------------------------------------

def NtDelayExecution(ctx, microseconds):
    """Voluntary delay: charges CPU proportional to the requested interval."""
    if microseconds < 0:
        return NtStatus.INVALID_PARAMETER
    ctx.charge(microseconds // 4)
    return NtStatus.SUCCESS


def NtQuerySystemTime(ctx):
    """Return ``(status, ticks)`` from the machine clock (100ns units)."""
    ticks = 0
    ctx.charge(15)
    ticks = int(ctx.kernel.time_source() * 10_000_000)
    return (NtStatus.SUCCESS, ticks)


__exports__ = [
    "RtlInitUnicodeString",
    "RtlInitAnsiString",
    "RtlValidateUnicodeString",
    "RtlFreeUnicodeString",
    "RtlUnicodeToMultiByteN",
    "RtlMultiByteToUnicodeN",
    "RtlDosPathNameToNtPathName_U",
    "RtlGetFullPathName_U",
    "RtlAllocateHeap",
    "RtlFreeHeap",
    "RtlSizeHeap",
    "RtlEnterCriticalSection",
    "RtlLeaveCriticalSection",
    "NtCreateFile",
    "NtOpenFile",
    "NtQueryAttributesFile",
    "NtClose",
    "NtReadFile",
    "NtWriteFile",
    "NtQueryFileRecords",
    "NtQueryInformationFile",
    "NtSetInformationFile",
    "NtProtectVirtualMemory",
    "NtQueryVirtualMemory",
    "NtDelayExecution",
    "NtQuerySystemTime",
]

__internal__ = [
    "_resolve_file_handle",
    "_is_path_char_legal",
    "_is_reserved_component",
    "_canonical_components",
    "_validate_counted_string",
    "_lookaside_state",
    "_lookaside_pop",
    "_lookaside_push",
    "_prefetch_state",
]

__module_name__ = "ntdll"
