"""State-integrity auditing of a simulated machine.

The paper's procedure restarts the target machine after every injection
run so each experiment starts from a known error-free state.  Our slots
run back to back on one :class:`~repro.harness.machine.ServerMachine`,
which is only sound while no fault leaves *residual* OS-state damage
behind after it is removed: a leaked heap block, a dangling handle, an
orphaned open file or a lock held by a dead thread silently contaminates
every later slot's measures.

:class:`IntegrityAuditor` makes that residue observable.  After
boot + warm-up it snapshots a reference view of the kernel state; on
demand — the harness calls it during the injection-free gap between
slots, with the workload paused and no handler mid-flight — it audits
four domains and emits a typed, deterministic :class:`IntegrityReport`:

* **heap** — metadata corruption (bad/double frees), leaked blocks
  (busy blocks above the process's startup footprint) and foreign frees
  (busy blocks below it);
* **handles** — handles resolving to closed objects, reference-count
  underflow, file handles desynchronized from their node's open count;
* **vfs** — fileset damage (missing or content-changed immutable
  files), stray files, and orphaned opens (a node's ``open_count``
  disagreeing with the live handle tables);
* **sync** — corrupted critical sections and sections still held at
  quiesce, split into *leaked* (owner alive) and *dead-owner* (owner
  hung or gone) locks.

Audits read only deterministic kernel data structures and simulated
time — no wall clock, no RNG, no allocation through the audited heap —
so an audited campaign merges to the same metrics digest for any worker
count.  Violation records never embed process ids or raw thread ids
(both vary with host process reuse); thread owners are reduced to their
pid-free suffix.
"""

from dataclasses import dataclass, field

__all__ = [
    "AUDIT_DOMAINS",
    "IntegrityAuditor",
    "IntegrityReport",
    "IntegrityViolation",
]

AUDIT_DOMAINS = ("heap", "handles", "vfs", "sync")

# Default path prefixes whose file *content* legitimately changes under
# the workload (access/POST logs).  Existence is still checked.
DEFAULT_MUTABLE_PREFIXES = ("/logs", "/postlog")


def _short_thread(thread_id):
    """A pid-free thread label (pids vary with host process reuse)."""
    return str(thread_id).split(":", 1)[-1]


@dataclass(frozen=True)
class IntegrityViolation:
    """One invariant broken in one audit domain."""

    domain: str
    kind: str
    subject: str
    detail: str

    def to_dict(self):
        return {
            "domain": self.domain,
            "kind": self.kind,
            "subject": self.subject,
            "detail": self.detail,
        }


@dataclass
class IntegrityReport:
    """Everything one audit pass found, in deterministic order."""

    sim_time: float
    violations: list = field(default_factory=list)
    # True when the audited process generation changed since the last
    # audit (the server was restarted): process-local reference values
    # were re-based on the fresh process.
    reference_reset: bool = False
    # Process-local domains are skipped when no live process exists.
    process_audited: bool = True

    @property
    def clean(self):
        return not self.violations

    def kinds(self):
        """Sorted unique violation kinds (the contamination signature)."""
        return sorted({violation.kind for violation in self.violations})

    def count_by_kind(self):
        counts = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self):
        return {
            "sim_time": self.sim_time,
            "clean": self.clean,
            "reference_reset": self.reference_reset,
            "process_audited": self.process_audited,
            "violations": [v.to_dict() for v in self.violations],
        }

    def __repr__(self):
        state = "clean" if self.clean else f"{len(self.violations)} violations"
        return f"IntegrityReport(t={self.sim_time}, {state})"


class IntegrityAuditor:
    """Snapshots a reference view of kernel state and audits against it.

    Parameters
    ----------
    kernel:
        The :class:`~repro.ossim.context.SimKernel` under audit (the
        machine-wide state; per-process state arrives per audit call).
    mutable_prefixes:
        Path prefixes whose file contents change legitimately under the
        workload.  Their existence is still audited.
    """

    def __init__(self, kernel, mutable_prefixes=DEFAULT_MUTABLE_PREFIXES):
        self.kernel = kernel
        self.mutable_prefixes = tuple(mutable_prefixes)
        self._fs_reference = None
        self._pid_seen = None
        self._process_reference = None
        self.audits_performed = 0

    # ------------------------------------------------------------------
    # Reference snapshot
    # ------------------------------------------------------------------
    def snapshot(self, ctx=None):
        """Record the reference view (call after boot + warm-up).

        ``ctx`` is the live server process; its startup footprint (heap
        blocks/bytes at the end of a successful startup) becomes the
        leak baseline for its generation.
        """
        self._fs_reference = self._fs_view()
        if ctx is not None and not ctx.terminated:
            self._pid_seen = ctx.pid
            self._process_reference = self._footprint(ctx)

    def _fs_view(self):
        """Deterministic map of path -> (is_dir, size, content_id)."""
        view = {}
        for path, node in self._walk():
            view[path] = (node.is_dir, node.size, node.content_id)
        return view

    def _walk(self):
        """Depth-first walk of the VFS in sorted-name order."""
        stack = [("", self.kernel.vfs.root)]
        while stack:
            path, node = stack.pop()
            yield (path or "/", node)
            if node.is_dir:
                for name in sorted(node.children, reverse=True):
                    stack.append((path + "/" + name, node.children[name]))

    def _mutable(self, path):
        for prefix in self.mutable_prefixes:
            if path == prefix or path.startswith(prefix + "/"):
                return True
        return False

    @staticmethod
    def _footprint(ctx):
        """The process's leak baseline: its footprint at startup."""
        recorded = getattr(ctx, "startup_footprint", None)
        if recorded is not None:
            return dict(recorded)
        return {
            "heap_blocks": ctx.heap.live_blocks(),
            "heap_bytes": ctx.heap.live_bytes,
        }

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self, ctx=None, live_threads=(), internal=False):
        """Audit the machine (and ``ctx``, the live server process).

        ``live_threads`` is the set of thread ids that can still run
        (the non-hung workers plus the main thread); a critical section
        held by any other owner is a dead-owner lock.  Returns an
        :class:`IntegrityReport`; mutates nothing.

        ``internal`` audits (the snapshot layer's capture-reference and
        restore-verify passes) produce a full report but do not count
        toward ``audits_performed``, which tracks only the slot
        protocol's own quiesce audits — so booted and restored epochs
        report identical audit counts.
        """
        if self._fs_reference is None:
            self.snapshot(ctx)
        if not internal:
            self.audits_performed += 1
        report = IntegrityReport(sim_time=self.kernel.time_source())
        process_alive = ctx is not None and not ctx.terminated
        report.process_audited = process_alive
        if process_alive:
            if self._pid_seen is None or ctx.pid != self._pid_seen:
                # New process generation (server restarted): re-base the
                # process-local reference on the fresh process.
                report.reference_reset = self._pid_seen is not None
                self._pid_seen = ctx.pid
                self._process_reference = self._footprint(ctx)
            self._audit_heap(ctx, report)
            self._audit_handles(ctx, report)
        self._audit_vfs(ctx if process_alive else None, report)
        if process_alive:
            self._audit_sync(ctx, set(live_threads), report)
        return report

    # -- heap ----------------------------------------------------------
    def _audit_heap(self, ctx, report):
        heap = ctx.heap
        if heap.corruption_score > 0:
            reason = getattr(heap, "_last_corruption_reason", "unknown")
            report.violations.append(IntegrityViolation(
                domain="heap", kind="heap-corruption", subject="heap",
                detail=(f"metadata corruption score "
                        f"{heap.corruption_score} (last: {reason})"),
            ))
        reference = self._process_reference or self._footprint(ctx)
        busy = heap.live_blocks()
        expected = reference.get("heap_blocks", busy)
        if busy > expected:
            report.violations.append(IntegrityViolation(
                domain="heap", kind="heap-leak", subject="heap",
                detail=(f"{busy - expected} leaked block(s): "
                        f"{busy} busy at quiesce vs {expected} at startup "
                        f"({heap.live_bytes} live bytes vs "
                        f"{reference.get('heap_bytes', heap.live_bytes)})"),
            ))
        elif busy < expected:
            report.violations.append(IntegrityViolation(
                domain="heap", kind="heap-foreign-free", subject="heap",
                detail=(f"{expected - busy} startup block(s) missing: "
                        f"{busy} busy at quiesce vs {expected} at startup"),
            ))

    # -- handles -------------------------------------------------------
    def _audit_handles(self, ctx, report):
        for handle in ctx.handles.handles():
            obj = ctx.handles.resolve(handle)
            if obj is None:
                continue
            subject = f"{obj.object_type}:{obj.name}"
            if obj.closed:
                report.violations.append(IntegrityViolation(
                    domain="handles", kind="dangling-handle",
                    subject=subject,
                    detail=f"live handle to already-closed {subject}",
                ))
                continue
            if obj.ref_count <= 0:
                report.violations.append(IntegrityViolation(
                    domain="handles", kind="refcount-underflow",
                    subject=subject,
                    detail=f"{subject} alive with ref_count="
                           f"{obj.ref_count}",
                ))
            node = getattr(obj, "node", None)
            if node is not None and node.open_count <= 0:
                report.violations.append(IntegrityViolation(
                    domain="handles", kind="handle-node-desync",
                    subject=subject,
                    detail=(f"open file handle but node open_count="
                            f"{node.open_count}"),
                ))

    # -- vfs -----------------------------------------------------------
    def _expected_opens(self, ctx):
        """node -> live FileObject count from the live handle table."""
        expected = {}
        if ctx is None:
            return expected
        for handle in ctx.handles.handles():
            obj = ctx.handles.resolve(handle)
            node = getattr(obj, "node", None)
            if node is None or obj.closed:
                continue
            expected[id(node)] = expected.get(id(node), 0) + 1
        return expected

    def _audit_vfs(self, ctx, report):
        current = {}
        expected_opens = self._expected_opens(ctx)
        for path, node in self._walk():
            current[path] = (node.is_dir, node.size, node.content_id)
            if node.open_count < 0:
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="vfs-open-negative", subject=path,
                    detail=f"open_count={node.open_count}",
                ))
            elif node.open_count != expected_opens.get(id(node), 0):
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="vfs-orphan", subject=path,
                    detail=(f"open_count={node.open_count} but "
                            f"{expected_opens.get(id(node), 0)} live "
                            f"handle(s) reference it"),
                ))
        reference = self._fs_reference or {}
        for path in sorted(reference):
            ref_dir, ref_size, ref_content = reference[path]
            if path not in current:
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="fileset-missing", subject=path,
                    detail="file present in the reference snapshot "
                           "is gone",
                ))
                continue
            cur_dir, cur_size, cur_content = current[path]
            if cur_dir != ref_dir:
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="fileset-damage", subject=path,
                    detail="node changed type since the reference "
                           "snapshot",
                ))
            elif (not ref_dir and not self._mutable(path)
                    and (cur_size, cur_content) != (ref_size, ref_content)):
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="fileset-changed", subject=path,
                    detail=(f"immutable file changed: size "
                            f"{ref_size} -> {cur_size}"),
                ))
        for path in sorted(current):
            is_dir, _size, _content = current[path]
            if (path not in reference and not is_dir
                    and not self._mutable(path)):
                report.violations.append(IntegrityViolation(
                    domain="vfs", kind="vfs-stray", subject=path,
                    detail="file absent from the reference snapshot",
                ))

    # -- sync ----------------------------------------------------------
    def _audit_sync(self, ctx, live_threads, report):
        for section in sorted(ctx.sync.sections(), key=lambda s: s.name):
            if section.corrupted:
                report.violations.append(IntegrityViolation(
                    domain="sync", kind="lock-corrupted",
                    subject=section.name,
                    detail=f"critical section {section.name!r} corrupted",
                ))
            if not section.held():
                continue
            owner = _short_thread(section.owner)
            if section.owner in live_threads:
                kind = "leaked-lock"
                detail = (f"held at quiesce by live thread {owner!r} "
                          f"(recursion={section.recursion})")
            else:
                kind = "dead-owner-lock"
                detail = (f"held by dead/hung thread {owner!r} "
                          f"(recursion={section.recursion})")
            report.violations.append(IntegrityViolation(
                domain="sync", kind=kind, subject=section.name,
                detail=detail,
            ))

    def __repr__(self):
        return (
            f"IntegrityAuditor(audits={self.audits_performed}, "
            f"pid={self._pid_seen})"
        )
