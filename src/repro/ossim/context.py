"""Kernel and per-process execution context.

:class:`SimKernel` is the machine-wide state (the file system, global
counters); :class:`ProcessContext` is what one simulated process sees —
its heap, handle table, critical sections, virtual memory and CPU meter.
Every mutable OS API function receives the calling process's context as its
first argument, so state damaged by a fault is confined to that process and
cleared by a process restart, exactly like user-mode ``ntdll`` state on NT.
"""

import itertools

from repro.ossim.heap import SimHeap
from repro.ossim.memory import VirtualMemoryManager
from repro.ossim.objects import HandleTable
from repro.ossim.sync import SyncRegistry
from repro.ossim.vfs import VirtualFileSystem
from repro.sim.cpu import CpuMeter

__all__ = ["SimKernel", "ProcessContext"]

_process_ids = itertools.count(100)


def _zero_time():
    """Default time source for kernels created outside a simulation."""
    return 0.0


class SimKernel:
    """Machine-wide kernel state shared by every process on one machine."""

    def __init__(self, vfs=None, time_source=None):
        self.vfs = vfs if vfs is not None else VirtualFileSystem()
        self.time_source = time_source if time_source is not None else _zero_time
        self.boot_count = 0
        self.processes_created = 0

    def new_process(self, cpu=None, name="process"):
        """Create a fresh process context on this kernel."""
        self.processes_created += 1
        return ProcessContext(self, cpu=cpu, name=name)


class ProcessContext:
    """Everything one simulated process owns.

    Parameters
    ----------
    kernel:
        The :class:`SimKernel` this process runs on.
    cpu:
        The :class:`~repro.sim.cpu.CpuMeter` charged by OS code running in
        this process.  A default meter is created when omitted (unit tests).
    """

    def __init__(self, kernel, cpu=None, name="process"):
        self.kernel = kernel
        self.name = name
        self.pid = next(_process_ids)
        self.cpu = cpu if cpu is not None else CpuMeter()
        self.heap = SimHeap()
        self.handles = HandleTable()
        self.sync = SyncRegistry()
        self.vmem = VirtualMemoryManager()
        # The process image/arena region: mapped at startup like a native
        # image section; servers manage its protection via the API.
        self.arena = self.vmem.reserve(4 * 1024 * 1024, tag="image")
        self.current_thread = f"{self.pid}:main"
        self.last_error = 0
        self.api_calls = 0
        self.terminated = False
        # Scratch state owned by the OS API modules (e.g. the NT 5.1
        # lookaside counters).  Lives and dies with the process, like
        # any other user-mode OS state.
        self.os_state = {}
        # Heap footprint at the end of a successful startup, recorded by
        # the runtime that spawned us.  The integrity auditor's leak
        # baseline: at quiesce (no request in flight) a clean process is
        # back to exactly this footprint.
        self.startup_footprint = None

    # ------------------------------------------------------------------
    # Hooks used by the mutable OS API code
    # ------------------------------------------------------------------
    def charge(self, cycles):
        """Charge simulated CPU cycles to this process."""
        self.cpu.charge(cycles)

    def set_thread(self, thread_id):
        """Set the identity used for lock ownership (worker dispatch glue)."""
        self.current_thread = thread_id

    @property
    def vfs(self):
        return self.kernel.vfs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def record_startup_footprint(self):
        """Freeze the current heap footprint as the leak baseline."""
        self.startup_footprint = {
            "heap_blocks": self.heap.live_blocks(),
            "heap_bytes": self.heap.live_bytes,
        }

    def thread_died(self, thread_id):
        """Release kernel resources still held by a dead worker thread."""
        return self.sync.release_thread(thread_id)

    def terminate(self):
        """Tear the process down (close handles, drop locks)."""
        if self.terminated:
            return
        self.terminated = True
        self.handles.close_all()

    def health_report(self):
        """Summary used by watchdog diagnostics and tests."""
        return {
            "pid": self.pid,
            "heap": self.heap.stats(),
            "open_handles": len(self.handles),
            "leaked_sections": len(self.sync.leaked_sections()),
            "api_calls": self.api_calls,
            "terminated": self.terminated,
        }

    def __repr__(self):
        return f"ProcessContext(pid={self.pid}, name={self.name!r})"
