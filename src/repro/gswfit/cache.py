"""Scan and mutant caching (G-SWFIT step 1 + step 2 memoization).

Both expensive halves of the pipeline are pure functions of source text:

* **Scans** — the faultload an OS build produces depends only on the
  build's module sources, the mutation-operator library, and the
  ``include_internal`` switch.
* **Mutants** — the code object a fault location compiles to depends
  only on the target function's source and the operator implementing
  the location's fault type.

A campaign therefore never needs more than one scan per build and one
compilation per fault location — yet the harness used to redo both on
every call/slot.  This module caches each at two levels:

* **in process** — memo tables keyed by the fingerprints below, so
  repeat scans/injections inside one run are free (and, because worker
  processes fork from a warmed parent, free across a parallel
  campaign's workers too);
* **on disk** — the faultload JSON, and marshalled mutant code objects,
  persisted under a cache directory so repeat *runs* and freshly
  spawned worker processes skip the work entirely.

The scan cache key is ``(build codename, library fingerprint,
include_internal)``; the mutant cache key is ``(source fingerprint,
fault_id, probed)`` where the source fingerprint hashes the target
function's current source plus the operator's implementation and
``probed`` distinguishes activation-instrumented variants.  Fingerprints hash
the source they depend on, so editing it invalidates the cache
automatically — stale entries are simply never looked up again (their
key no longer matches) and can be garbage-collected at leisure.
"""

import hashlib
import inspect
import marshal
import os
import sys
import types
from pathlib import Path

from repro.faults.faultload import Faultload
from repro.gswfit.mutator import MutantError, build_mutant, resolve_function
from repro.gswfit.operators import (
    operator_for,
    operator_library,
    registry_generation,
)
from repro.gswfit.scanner import scan_build

__all__ = [
    "MUTANT_CACHE_STATS",
    "build_mutant_cached",
    "cache_key",
    "cache_path",
    "clear_mutant_cache",
    "clear_scan_cache",
    "library_fingerprint",
    "mutant_cache_path",
    "mutant_fingerprint",
    "scan_build_cached",
    "warm_mutant_cache",
]

_memory_cache = {}
_fingerprint_cache = {}


def library_fingerprint(build):
    """Hash of everything a scan's output depends on, for one build.

    Covers the behaviour of the full operator library (search patterns
    and preconditions shape the emitted sites; class operators
    fingerprint their source, spec-compiled operators their canonical
    spec JSON) and the source of the build's FIT modules (the code being
    scanned).  The memo key includes the operator registry generation,
    so installing or replacing a DSL operator invalidates it.
    """
    memo_key = (build.codename, registry_generation())
    cached = _fingerprint_cache.get(memo_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    library = operator_library()
    for fault_type in sorted(library, key=lambda ft: ft.value):
        hasher.update(fault_type.value.encode("utf-8"))
        hasher.update(
            library[fault_type].fingerprint_payload().encode("utf-8")
        )
    for display_name, module in build.modules:
        hasher.update(display_name.encode("utf-8"))
        hasher.update(inspect.getsource(module).encode("utf-8"))
    fingerprint = hasher.hexdigest()
    _fingerprint_cache[memo_key] = fingerprint
    return fingerprint


def cache_key(build, include_internal=True):
    """The tuple a cached scan is filed under."""
    return (
        build.codename,
        library_fingerprint(build),
        bool(include_internal),
    )


def cache_path(cache_dir, key):
    """Disk location for one cache key (fingerprint is in the name)."""
    codename, fingerprint, include_internal = key
    scope = "all" if include_internal else "exports"
    return (
        Path(cache_dir)
        / f"scan-{codename}-{scope}-{fingerprint[:16]}.json"
    )


def scan_build_cached(build, include_internal=True, cache_dir=None):
    """:func:`~repro.gswfit.scanner.scan_build` behind the cache.

    Returns a fresh :class:`Faultload` wrapper on every call (the
    location records are shared — they are frozen), so callers may
    derive/flag the result without poisoning the cache.
    """
    key = cache_key(build, include_internal)
    faultload = _memory_cache.get(key)
    if faultload is None and cache_dir is not None:
        path = cache_path(cache_dir, key)
        if path.exists():
            faultload = Faultload.load(path)
            _memory_cache[key] = faultload
    if faultload is None:
        faultload = scan_build(build, include_internal=include_internal)
        _memory_cache[key] = faultload
        if cache_dir is not None:
            path = cache_path(cache_dir, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            faultload.save(path)
    return Faultload(
        faultload.os_codename, faultload.locations, name=faultload.name
    )


def clear_scan_cache():
    """Drop the in-process memo (the disk cache is left alone)."""
    _memory_cache.clear()
    _fingerprint_cache.clear()


# --------------------------------------------------------------------------
# Mutant precompilation cache (step 2)
# --------------------------------------------------------------------------

_mutant_memory = {}
# (module, function) -> (code object the fingerprint was taken from, fp).
# Validity is checked by identity against the function's *current*
# ``__code__``: a code swap back to the original (restore) keeps the memo
# valid, a source edit / redefinition produces a new code object and the
# fingerprint is recomputed.  This keeps the warm inject path free of
# ``inspect.getsource`` + hashing.
_source_fp_memo = {}
_operator_fp_memo = {}


class _MutantCacheStats:
    """Counters for the mutant cache (reset with :func:`clear_mutant_cache`)."""

    __slots__ = ("compiles", "memory_hits", "disk_hits")

    def __init__(self):
        self.reset()

    def reset(self):
        self.compiles = 0
        self.memory_hits = 0
        self.disk_hits = 0

    def as_dict(self):
        return {
            "compiles": self.compiles,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
        }


MUTANT_CACHE_STATS = _MutantCacheStats()


def _operator_fingerprint(fault_type):
    # Memo key includes the registry generation: a DSL operator replacing
    # this fault type's implementation must change the fingerprint.
    memo_key = (fault_type, registry_generation())
    cached = _operator_fp_memo.get(memo_key)
    if cached is None:
        operator = operator_for(fault_type)
        cached = hashlib.sha256(
            operator.fingerprint_payload().encode("utf-8")
        ).hexdigest()
        _operator_fp_memo[memo_key] = cached
    return cached


def mutant_fingerprint(location, function=None):
    """Hash of everything ``location``'s mutant code depends on.

    Covers the target function's current source and the implementation of
    the operator for the location's fault type.  The per-function source
    hash is memoized against the function's ``__code__`` identity, so the
    warm path never re-reads source files.
    """
    if function is None:
        function = resolve_function(location)
    key = (location.module, location.function)
    memo = _source_fp_memo.get(key)
    if memo is not None and memo[0] is function.__code__:
        source_fp = memo[1]
    else:
        source_fp = hashlib.sha256(
            inspect.getsource(function).encode("utf-8")
        ).hexdigest()
        _source_fp_memo[key] = (function.__code__, source_fp)
    hasher = hashlib.sha256(source_fp.encode("ascii"))
    hasher.update(_operator_fingerprint(location.fault_type).encode("ascii"))
    return hasher.hexdigest()


def mutant_cache_path(cache_dir, fingerprint, fault_id, probed=False):
    """Disk location of one precompiled mutant.

    ``marshal`` output is only stable within one interpreter build, so the
    implementation cache tag is folded into the name — a different Python
    simply misses and recompiles.  Probed mutants (activation tracking)
    differ from unprobed ones by one planted statement, so the probe flag
    is part of the name too.
    """
    variant = "probed" if probed else "plain"
    digest = hashlib.sha256(
        f"{sys.implementation.cache_tag}:{fingerprint}:{fault_id}:{variant}"
        .encode("utf-8")
    ).hexdigest()[:24]
    return Path(cache_dir) / f"mutant-{digest}.marshal"


def _load_mutant_code(path):
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        code = marshal.loads(data)
    except (EOFError, ValueError, TypeError):
        return None  # truncated/corrupt entry: recompile and overwrite
    if not isinstance(code, types.CodeType):
        return None
    return code


def _store_mutant_code(path, code):
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_bytes(marshal.dumps(code))
    os.replace(tmp, path)  # atomic: concurrent workers race benignly


def build_mutant_cached(location, cache_dir=None, probed=False):
    """:func:`~repro.gswfit.mutator.build_mutant` behind the cache.

    Returns the same ``(original_function, mutant_code)`` pair.  The code
    object is compiled at most once per ``(source fingerprint, fault_id,
    probed)`` — per process via the in-memory memo, per machine via the
    optional ``cache_dir`` marshal tier shared by campaign worker
    processes.  Probed and unprobed variants are distinct cache entries:
    they compile to different bytecode.
    """
    probed = bool(probed)
    function = resolve_function(location)
    key = (mutant_fingerprint(location, function), location.fault_id, probed)
    code = _mutant_memory.get(key)
    if code is not None:
        MUTANT_CACHE_STATS.memory_hits += 1
        return function, code
    if cache_dir is not None:
        code = _load_mutant_code(
            mutant_cache_path(cache_dir, key[0], location.fault_id,
                              probed=probed)
        )
        if code is not None:
            MUTANT_CACHE_STATS.disk_hits += 1
            _mutant_memory[key] = code
            return function, code
    function, code = build_mutant(location, probed=probed)
    MUTANT_CACHE_STATS.compiles += 1
    _mutant_memory[key] = code
    if cache_dir is not None:
        _store_mutant_code(
            mutant_cache_path(cache_dir, key[0], location.fault_id,
                              probed=probed),
            code,
        )
    return function, code


def warm_mutant_cache(faultload, cache_dir=None, probed=False):
    """Batch-compile every location of ``faultload`` into the cache.

    A campaign calls this once after sampling, *before* spawning worker
    processes: on fork-based platforms the workers inherit the warm
    in-process memo outright, and with a ``cache_dir`` even spawn-based
    workers (or later runs) pick the mutants up from disk.  Locations that
    cannot be compiled are counted, not raised — the injection slot will
    surface the error in context.  ``probed`` must match what the slots
    will request (activation tracking on → probed mutants).
    """
    compiled = cached = failed = 0
    for location in faultload:
        before = MUTANT_CACHE_STATS.compiles
        try:
            build_mutant_cached(location, cache_dir=cache_dir, probed=probed)
        except MutantError:
            failed += 1
            continue
        if MUTANT_CACHE_STATS.compiles > before:
            compiled += 1
        else:
            cached += 1
    return {"slots": len(faultload), "compiled": compiled,
            "cached": cached, "failed": failed}


def clear_mutant_cache():
    """Drop the in-process mutant memo and reset the stats counters."""
    _mutant_memory.clear()
    _source_fp_memo.clear()
    _operator_fp_memo.clear()
    MUTANT_CACHE_STATS.reset()
