"""Scan-result caching (G-SWFIT step 1 memoization).

Scanning an OS build is pure analysis: the faultload it produces depends
only on the build's module sources, the mutation-operator library, and
the ``include_internal`` switch.  A campaign that boots dozens of worker
machines therefore never needs more than one scan per build — yet the
harness used to rescan from scratch on every call.  This module caches
scans at two levels:

* **in process** — a memo table keyed by the cache key below, so repeat
  scans inside one run are free;
* **on disk** — the faultload JSON persisted under a cache directory, so
  repeat *runs* (and campaign worker processes) skip the scan entirely.

The cache key is ``(build codename, library fingerprint,
include_internal)``.  The fingerprint hashes the source of every mutation
operator and every FIT module of the build, so editing either invalidates
the cache automatically — stale entries are simply never looked up again
(their key no longer matches) and can be garbage-collected at leisure.
"""

import hashlib
import inspect
from pathlib import Path

from repro.faults.faultload import Faultload
from repro.gswfit.operators import operator_library
from repro.gswfit.scanner import scan_build

__all__ = [
    "cache_key",
    "cache_path",
    "clear_scan_cache",
    "library_fingerprint",
    "scan_build_cached",
]

_memory_cache = {}
_fingerprint_cache = {}


def library_fingerprint(build):
    """Hash of everything a scan's output depends on, for one build.

    Covers the source of the full operator library (search patterns and
    preconditions shape the emitted sites) and the source of the build's
    FIT modules (the code being scanned).
    """
    cached = _fingerprint_cache.get(build.codename)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    library = operator_library()
    for fault_type in sorted(library, key=lambda ft: ft.value):
        hasher.update(fault_type.value.encode("utf-8"))
        hasher.update(
            inspect.getsource(type(library[fault_type])).encode("utf-8")
        )
    for display_name, module in build.modules:
        hasher.update(display_name.encode("utf-8"))
        hasher.update(inspect.getsource(module).encode("utf-8"))
    fingerprint = hasher.hexdigest()
    _fingerprint_cache[build.codename] = fingerprint
    return fingerprint


def cache_key(build, include_internal=True):
    """The tuple a cached scan is filed under."""
    return (
        build.codename,
        library_fingerprint(build),
        bool(include_internal),
    )


def cache_path(cache_dir, key):
    """Disk location for one cache key (fingerprint is in the name)."""
    codename, fingerprint, include_internal = key
    scope = "all" if include_internal else "exports"
    return (
        Path(cache_dir)
        / f"scan-{codename}-{scope}-{fingerprint[:16]}.json"
    )


def scan_build_cached(build, include_internal=True, cache_dir=None):
    """:func:`~repro.gswfit.scanner.scan_build` behind the cache.

    Returns a fresh :class:`Faultload` wrapper on every call (the
    location records are shared — they are frozen), so callers may
    derive/flag the result without poisoning the cache.
    """
    key = cache_key(build, include_internal)
    faultload = _memory_cache.get(key)
    if faultload is None and cache_dir is not None:
        path = cache_path(cache_dir, key)
        if path.exists():
            faultload = Faultload.load(path)
            _memory_cache[key] = faultload
    if faultload is None:
        faultload = scan_build(build, include_internal=include_internal)
        _memory_cache[key] = faultload
        if cache_dir is not None:
            path = cache_path(cache_dir, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            faultload.save(path)
    return Faultload(
        faultload.os_codename, faultload.locations, name=faultload.name
    )


def clear_scan_cache():
    """Drop the in-process memo (the disk cache is left alone)."""
    _memory_cache.clear()
    _fingerprint_cache.clear()
