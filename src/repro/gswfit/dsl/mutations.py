"""The mutation-rule vocabulary of the operator-spec DSL.

A rule is the edit half of an operator: given an anchor node that passed
every precondition, :meth:`MutationRule.enumerate` returns the sites the
rule derives from it — ``(payload, context)`` pairs, where ``payload``
becomes the :class:`~repro.gswfit.operators.base.Site` payload (part of
the stable site key) and ``context`` feeds extra placeholders into the
spec's description template — and :meth:`MutationRule.apply` performs
the edit on a fresh copy of the tree.  Rules that derive exactly one
site per anchor return one empty-payload pair, matching the built-in
operators' site keys.

Rules address sub-nodes through dotted *field paths* (``"test"``,
``"value"``); :func:`resolve_field` walks them.  Rules that inject new
code (``replace-field``, ``wrap-condition``, ``insert-before``) carry a
``source`` parameter holding Python source text, parsed at apply time —
the validator has already syntax-checked it, so a parse failure here is
impossible for a validated spec.
"""

import ast

from repro.gswfit.dsl.predicates import Param
from repro.gswfit.operators.assignment import perturb_constant
from repro.gswfit.operators.base import replace_statement

__all__ = ["MUTATIONS", "MutationRule", "build_mutation", "resolve_field"]

_BOOL_OP_NAMES = {ast.And: "and", ast.Or: "or"}

_ARITH_SWAP = {
    ast.Add: ast.Sub,
    ast.Sub: ast.Add,
    ast.Mult: ast.Add,
    ast.FloorDiv: ast.Mult,
    ast.Mod: ast.FloorDiv,
}

_ARITH_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Mod: "%",
}


def resolve_field(node, path):
    """Walk a dotted attribute path from ``node``; None when absent."""
    target = node
    for part in path.split("."):
        target = getattr(target, part, None)
        if target is None:
            return None
    return target


def _perturbable(value):
    return isinstance(value, (bool, int, float, str))


#: The single empty-payload site most rules derive per anchor.
_ONE_SITE = (("", {}),)


class MutationRule:
    """Base class: site enumeration plus the tree edit for one kind."""

    #: Extra description-template placeholders this rule provides.
    context_keys = frozenset()

    def __init__(self, params):
        self.params = params

    def enumerate(self, image, node):
        """The ``(payload, context)`` pairs this rule derives.

        Rules return sequences (tuples/lists), not generators, to keep
        the scan's per-passing-node cost flat.
        """
        return _ONE_SITE

    def apply(self, tree, node, payload):
        """Perform the edit on ``node`` inside the fresh ``tree`` copy."""
        raise NotImplementedError


class _DeleteNode(MutationRule):
    """Remove the anchor statement (NOP-ing the instruction range)."""

    def apply(self, tree, node, payload):
        replace_statement(tree, node, [])


class _ReplaceWithBody(MutationRule):
    """Replace the anchor with its own body (drop a guard, keep code)."""

    def enumerate(self, image, node):
        return _ONE_SITE if getattr(node, "body", None) else ()

    def apply(self, tree, node, payload):
        replace_statement(tree, node, node.body)


class _PerturbConstant(MutationRule):
    """Rewrite the constant at ``field`` with its deterministic wrong value."""

    context_keys = frozenset({"old", "new"})

    def enumerate(self, image, node):
        constant = resolve_field(node, self.params["field"])
        if not isinstance(constant, ast.Constant):
            return ()
        if not _perturbable(constant.value):
            return ()
        return (("", {
            "old": repr(constant.value),
            "new": repr(perturb_constant(constant.value)),
        }),)

    def apply(self, tree, node, payload):
        constant = resolve_field(node, self.params["field"])
        constant.value = perturb_constant(constant.value)


class _RemoveBoolOperand(MutationRule):
    """Delete one operand of the boolean chain at ``field``; one site each."""

    context_keys = frozenset({"clause", "position"})

    def enumerate(self, image, node):
        chain = resolve_field(node, self.params["field"])
        if not isinstance(chain, ast.BoolOp):
            return ()
        return [
            (str(position), {
                "clause": ast.unparse(operand),
                "position": str(position),
            })
            for position, operand in enumerate(chain.values)
        ]

    def apply(self, tree, node, payload):
        chain = resolve_field(node, self.params["field"])
        position = int(payload)
        del chain.values[position]
        if len(chain.values) == 1:
            collapsed = chain.values[0]
            parent, _, attr = self.params["field"].rpartition(".")
            owner = resolve_field(node, parent) if parent else node
            setattr(owner, attr, collapsed)


class _SwapBoolOperator(MutationRule):
    """Flip ``and`` ↔ ``or`` in the boolean chain at ``field``."""

    context_keys = frozenset({"old_op", "new_op"})

    def enumerate(self, image, node):
        chain = resolve_field(node, self.params["field"])
        if not isinstance(chain, ast.BoolOp):
            return ()
        old = _BOOL_OP_NAMES[type(chain.op)]
        new = "or" if old == "and" else "and"
        return (("", {"old_op": old, "new_op": new}),)

    def apply(self, tree, node, payload):
        chain = resolve_field(node, self.params["field"])
        chain.op = ast.Or() if isinstance(chain.op, ast.And) else ast.And()


class _SwapBinopOperator(MutationRule):
    """Swap the arithmetic operator of the binary expression at ``field``."""

    context_keys = frozenset({"old_op", "new_op"})

    def enumerate(self, image, node):
        binop = resolve_field(node, self.params["field"])
        if not isinstance(binop, ast.BinOp):
            return ()
        replacement = _ARITH_SWAP.get(type(binop.op))
        if replacement is None:
            return ()
        return (("", {
            "old_op": _ARITH_SYMBOLS[type(binop.op)],
            "new_op": _ARITH_SYMBOLS[replacement],
        }),)

    def apply(self, tree, node, payload):
        binop = resolve_field(node, self.params["field"])
        binop.op = _ARITH_SWAP[type(binop.op)]()


class _ReplaceField(MutationRule):
    """Replace the sub-node at ``field`` with the parsed ``source`` expression."""

    context_keys = frozenset({"source"})

    def enumerate(self, image, node):
        if resolve_field(node, self.params["field"]) is None:
            return ()
        return (("", {"source": self.params["source"]}),)

    def apply(self, tree, node, payload):
        replacement = ast.parse(
            self.params["source"], mode="eval"
        ).body
        parent, _, attr = self.params["field"].rpartition(".")
        owner = resolve_field(node, parent) if parent else node
        setattr(owner, attr, replacement)


class _WrapCondition(MutationRule):
    """Wrap the anchor statement in ``if <source>:`` (an added guard)."""

    context_keys = frozenset({"source"})

    def enumerate(self, image, node):
        if not isinstance(node, ast.stmt):
            return ()
        return (("", {"source": self.params["source"]}),)

    def apply(self, tree, node, payload):
        guard = ast.If(
            test=ast.parse(self.params["source"], mode="eval").body,
            body=[node],
            orelse=[],
        )
        replace_statement(tree, node, [guard])


class _InsertBefore(MutationRule):
    """Insert the parsed ``source`` statements before the anchor."""

    context_keys = frozenset({"source"})

    def enumerate(self, image, node):
        if not isinstance(node, ast.stmt):
            return ()
        return (("", {"source": self.params["source"]}),)

    def apply(self, tree, node, payload):
        inserted = ast.parse(self.params["source"]).body
        replace_statement(tree, node, inserted + [node])


#: kind → (rule class, params schema, source-parse mode or None).
#: ``source`` params are syntax-checked by the validator in the given
#: parse mode ("eval" for expressions, "exec" for statement suites).
MUTATIONS = {
    "delete-node": (_DeleteNode, {}, None),
    "replace-with-body": (_ReplaceWithBody, {}, None),
    "perturb-constant": (_PerturbConstant, {
        "field": Param("string", default="value"),
    }, None),
    "remove-bool-operand": (_RemoveBoolOperand, {
        "field": Param("string", default="test"),
    }, None),
    "swap-bool-operator": (_SwapBoolOperator, {
        "field": Param("string", default="test"),
    }, None),
    "swap-binop-operator": (_SwapBinopOperator, {
        "field": Param("string", default="value"),
    }, None),
    "replace-field": (_ReplaceField, {
        "field": Param("string", required=True),
        "source": Param("string", required=True),
    }, "eval"),
    "wrap-condition": (_WrapCondition, {
        "source": Param("string", required=True),
    }, "eval"),
    "insert-before": (_InsertBefore, {
        "source": Param("string", required=True),
    }, "exec"),
}


def build_mutation(kind, params):
    """Instantiate the mutation rule ``kind`` with validated ``params``."""
    cls, schema, _mode = MUTATIONS[kind]
    resolved = {
        name: params.get(name, spec.default)
        for name, spec in schema.items()
    }
    return cls(resolved)
