"""Declarative operator specs compiled into the G-SWFIT scanner.

The programmable-faultload DSL (DESIGN.md §16): a JSON spec describes a
mutation operator as *pattern* (AST node types to anchor on) +
*preconditions* (a composable predicate vocabulary over the
:class:`~repro.gswfit.astutils.FunctionImage` index) + *mutation rule*
(an AST edit template), and :func:`~repro.gswfit.dsl.compile.compile_spec`
turns it into a first-class scanner operator.  Specs either re-express
a built-in Table 1 operator (``"replaces": true`` — same fault type,
same fault ids, digest-identical campaigns) or define a brand-new
fault type that rides every downstream pipeline: faultloads, sampling,
sharding, caching, reports.

:func:`install_spec_operators` is the one entry point the harness
uses — the CLI, the campaign parent, and every worker process call it
with the canonical spec dicts carried by
``ExperimentConfig.operator_specs``; installation is idempotent by
spec digest, so re-installs across processes and resumes are free.
"""

from repro.faults.types import register_fault_type
from repro.gswfit.dsl.compile import DslOperator, compile_spec
from repro.gswfit.dsl.schema import SpecValidationError, validate_spec
from repro.gswfit.dsl.spec import OperatorSpec
from repro.gswfit.operators import operator_library, register_operator

__all__ = [
    "DslOperator",
    "OperatorSpec",
    "SpecValidationError",
    "compile_spec",
    "install_spec_operators",
    "validate_spec",
]


def install_spec_operators(specs):
    """Compile and register operators for ``specs``; returns them.

    ``specs`` is an iterable of spec dicts (raw or canonical) or
    :class:`OperatorSpec` instances.  Re-expressions replace their
    built-in operator in the library; new fault types are registered
    with the fault-type registry first, then overlaid on the library.
    Installing a spec whose digest is already live is a no-op, so the
    campaign parent, pool workers, and fabric workers can all install
    the same config unconditionally.
    """
    installed = []
    library = operator_library()
    for entry in specs or ():
        spec = (
            entry if isinstance(entry, OperatorSpec)
            else OperatorSpec.from_dict(entry)
        )
        operator = compile_spec(spec)
        current = library.get(operator.fault_type)
        if (
            isinstance(current, DslOperator)
            and current.spec.digest == spec.digest
        ):
            installed.append(current)
            continue
        if not spec.replaces:
            register_fault_type(spec.fault_type_name, **spec.metadata())
        register_operator(operator, replace=spec.replaces)
        library[operator.fault_type] = operator
        installed.append(operator)
    return installed
