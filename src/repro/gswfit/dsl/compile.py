"""Compilation of validated operator specs into scanner operators.

:func:`compile_spec` turns an :class:`~repro.gswfit.dsl.spec.OperatorSpec`
into a :class:`DslOperator` — a real
:class:`~repro.gswfit.operators.base.MutationOperator` that plugs into
both scan drivers (the per-operator ``find_sites`` reference pass and
the single-pass ``collect_sites`` visitor registry) unchanged.  The
compiled operator resolves the pattern's node-type names to the AST
classes, instantiates the predicate and mutation-rule vocabulary
entries, and renders the description template per site from a context
computed off the anchor node.

Fidelity contract: a spec that re-expresses a built-in operator
(``"replaces": true``) must produce the *same sites* (keys, payloads,
descriptions, line numbers) and the *same mutants* (byte-identical
bytecode) as the class implementation — the equivalence tests and the
``dsl-gate`` CI job hold it to that.
"""

import ast
import string

from repro.faults.types import DynamicFaultType, FaultType
from repro.gswfit.dsl.mutations import build_mutation
from repro.gswfit.dsl.predicates import build_predicate
from repro.gswfit.dsl.spec import OperatorSpec
from repro.gswfit.operators.base import MutationOperator, Site

__all__ = ["DslOperator", "compile_spec"]


def _call_of(node):
    """The Call node anchored at ``node`` (directly or Expr-wrapped)."""
    if isinstance(node, ast.Call):
        return node
    if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        return node.value
    return None


def _extract_test(node):
    test = getattr(node, "test", None)
    return ast.unparse(test) if isinstance(test, ast.AST) else None


def _extract_body_count(node):
    body = getattr(node, "body", None)
    return len(body) if isinstance(body, list) else None


def _extract_name(node):
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    return None


def _extract_target(node):
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        return ast.unparse(node.targets[0])
    return None


def _extract_value(node):
    if isinstance(node, ast.Assign) and isinstance(
        node.value, ast.Constant
    ):
        return repr(node.value.value)
    return None


def _extract_call(node):
    call = _call_of(node)
    return ast.unparse(call) if call is not None else None


def _extract_func(node):
    call = _call_of(node)
    return ast.unparse(call.func) if call is not None else None


#: Base template placeholders → the per-node value extractor.  Each
#: returns None on a node whose shape lacks the key — a template naming
#: it then fails at scan time with a pointed error (the validator has
#: already confirmed the key is *known*, but cannot know every shape
#: the preconditions admit).
_EXTRACTORS = {
    "test": _extract_test,
    "body_count": _extract_body_count,
    "name": _extract_name,
    "target": _extract_target,
    "value": _extract_value,
    "call": _extract_call,
    "func": _extract_func,
}


class DslOperator(MutationOperator):
    """A mutation operator compiled from a declarative spec.

    Every instance shares this class; behaviour lives in the spec, so
    cache fingerprints use :meth:`fingerprint_payload` (the canonical
    spec JSON) rather than class source.
    """

    provenance = "dsl"

    def __init__(self, spec):
        self.spec = spec
        name = spec.fault_type_name
        if spec.replaces:
            self.fault_type = FaultType(name)
        else:
            self.fault_type = DynamicFaultType(name)
        self.node_types = tuple(
            getattr(ast, type_name)
            for type_name in spec.pattern["node_types"]
        )
        self._predicates = tuple(
            build_predicate(entry["kind"], entry)
            for entry in spec.preconditions
        )
        self._rule = build_mutation(spec.mutation["kind"], spec.mutation)
        self._template = spec.mutation.get("description", "")
        # Compile the template into (literal, field, extractor) parts:
        # the per-site render is then one join over direct extractions,
        # no context dict and no format machinery.  Rule-provided keys
        # (extractor None) read the per-site context instead.
        rule_keys = self._rule.context_keys
        self._parts = tuple(
            (literal, field,
             None if field is None or field in rule_keys
             else _EXTRACTORS[field])
            for literal, field, _spec, _conv in string.Formatter().parse(
                self._template
            )
        )

    def begin_scan(self, image):
        """Fuse the predicates into one per-function checker closure.

        Preconditions prepare once per function, then fuse into a single
        short-circuit ``and`` chain — one closure call per candidate
        node instead of a loop over (predicate, state) pairs.  The scan
        visits every candidate node of both builds, and the bench holds
        the DSL path to >= 95% of class throughput, so the per-node cost
        is the part worth specializing.
        """
        pairs = [
            (predicate.check, predicate.prepare(image))
            for predicate in self._predicates
        ]
        if len(pairs) == 1:
            (c0, s0), = pairs
            return lambda image, node: c0(image, node, s0)
        if len(pairs) == 2:
            (c0, s0), (c1, s1) = pairs
            return lambda image, node: (
                c0(image, node, s0) and c1(image, node, s1)
            )
        if len(pairs) == 3:
            (c0, s0), (c1, s1), (c2, s2) = pairs
            return lambda image, node: (
                c0(image, node, s0) and c1(image, node, s1)
                and c2(image, node, s2)
            )
        return lambda image, node: all(
            check(image, node, state) for check, state in pairs
        )

    def visit_node(self, image, node, accepts):
        """Short-circuit the preconditions, then enumerate the rule."""
        if not accepts(image, node):
            return ()
        pairs = self._rule.enumerate(image, node)
        if not pairs:
            return ()
        # Site construction is the per-match hot path (the scan bench
        # holds it to class speed): hoist everything the payload loop
        # does not vary — node index, line number — and render through
        # the precompiled template parts.
        node_index = image.index_of(node)
        lineno = image.absolute_lineno(node)
        parts = self._parts
        sites = []
        for payload, extra in pairs:
            pieces = []
            for literal, field, extractor in parts:
                if literal:
                    pieces.append(literal)
                if field is None:
                    continue
                if extractor is None:
                    value = extra[field]
                else:
                    value = extractor(node)
                    if value is None:
                        self._missing_placeholder(field, node)
                pieces.append(
                    value if type(value) is str else str(value)
                )
            sites.append(Site(
                node_index=node_index,
                payload=payload,
                description="".join(pieces),
                lineno=lineno,
            ))
        return sites

    def _missing_placeholder(self, field, node):
        raise ValueError(
            f"operator spec {self.fault_type.value!r}: description "
            f"placeholder {{{field}}} is undefined for the "
            f"{type(node).__name__} node at this site — tighten the "
            "preconditions so only nodes providing it match"
        )

    def apply(self, tree, node_list, site):
        """Delegate the edit to the spec's mutation rule."""
        self._rule.apply(tree, node_list[site.node_index], site.payload)

    def fingerprint_payload(self):
        """Canonical spec JSON: the behaviour-complete cache-key input."""
        return self.spec.canonical_json()


def compile_spec(spec):
    """Compile ``spec`` (an :class:`OperatorSpec` or raw dict) to an operator."""
    if not isinstance(spec, OperatorSpec):
        spec = OperatorSpec.from_dict(spec)
    return DslOperator(spec)
