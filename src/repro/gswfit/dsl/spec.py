"""Operator specs: the validated, canonical form and its digest.

An :class:`OperatorSpec` wraps the canonical dict produced by
:func:`~repro.gswfit.dsl.schema.validate_spec`.  ``to_dict`` returns
that canonical form, so ``spec -> compile -> to_dict`` round-trips
bit-for-bit, and :attr:`OperatorSpec.digest` — the sha256 of the
sorted-key canonical JSON — is the identity the cache layer and the
campaign key fold in: edit a spec and every mutant/scan cache entry
and campaign key derived from it changes.
"""

import hashlib
import json

from repro.gswfit.dsl.schema import SpecValidationError, validate_spec

__all__ = ["OperatorSpec"]


class OperatorSpec:
    """One validated operator spec (immutable once constructed)."""

    def __init__(self, canonical):
        self._canonical = canonical

    @classmethod
    def from_dict(cls, data, source=None):
        """Validate ``data`` (a raw spec dict) into an :class:`OperatorSpec`.

        Raises :class:`~repro.gswfit.dsl.schema.SpecValidationError`
        with a path-precise message on any problem.
        """
        return cls(validate_spec(data, source=source))

    @classmethod
    def load(cls, path):
        """Load and validate a spec from a JSON file.

        JSON syntax errors are reported with the file, line and column;
        validation errors carry the file plus the ``$.path`` location.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SpecValidationError("$", str(exc), source=str(path))
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                "$", f"invalid JSON at line {exc.lineno} column "
                f"{exc.colno}: {exc.msg}", source=str(path),
            )
        return cls.from_dict(data, source=str(path))

    @property
    def fault_type_name(self):
        """The spec's fault type id (a string)."""
        return self._canonical["fault_type"]

    @property
    def replaces(self):
        """True when the spec re-expresses a built-in Table 1 operator."""
        return self._canonical["replaces"]

    @property
    def pattern(self):
        """The canonical pattern section."""
        return self._canonical["pattern"]

    @property
    def preconditions(self):
        """The canonical preconditions list."""
        return self._canonical["preconditions"]

    @property
    def mutation(self):
        """The canonical mutation section."""
        return self._canonical["mutation"]

    def metadata(self):
        """Fault-type metadata for new types (empty for re-expressions)."""
        if self.replaces:
            return {}
        return {
            "description": self._canonical["description"],
            "nature": self._canonical["nature"],
            "odc_type": self._canonical["odc_type"],
            "field_coverage_percent":
                self._canonical["field_coverage_percent"],
        }

    def to_dict(self):
        """The canonical spec dict (a deep copy; mutate freely)."""
        return json.loads(self.canonical_json())

    def canonical_json(self):
        """Sorted-key canonical JSON — the digest and fingerprint input."""
        return json.dumps(
            self._canonical, sort_keys=True, separators=(",", ":")
        )

    @property
    def digest(self):
        """sha256 of the canonical JSON; the spec's stable identity."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    def __eq__(self, other):
        return (
            isinstance(other, OperatorSpec)
            and self._canonical == other._canonical
        )

    def __hash__(self):
        return hash(self.canonical_json())

    def __repr__(self):
        role = "replaces" if self.replaces else "defines"
        return (
            f"<OperatorSpec {role} {self.fault_type_name} "
            f"{self.digest[:12]}>"
        )
