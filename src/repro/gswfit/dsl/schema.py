"""Validation of operator specs, with path-precise errors.

The validator turns an untrusted dict into the *canonical* spec form —
defaults filled, key order fixed — or raises
:class:`SpecValidationError` whose message pins the offending value to
a JSONPath-style location (``$.pattern.node_types[0]: unknown AST node
type 'Assgn'``).  Canonicalization is what makes the spec digest stable:
two spellings of the same spec (defaults omitted vs written out)
canonicalize identically, so they share a digest, a cache fingerprint
and a campaign key.

The vocabulary being validated against lives next door: predicate kinds
and their parameter schemas in :mod:`~repro.gswfit.dsl.predicates`,
mutation kinds in :mod:`~repro.gswfit.dsl.mutations`.  ``source``
parameters (injected code) are syntax-checked here, at validation time,
so apply-time parse failures cannot happen for a validated spec.
"""

import ast
import re
import string

from repro.faults.types import ConstructNature, FaultType, ODCType
from repro.gswfit.dsl.mutations import MUTATIONS
from repro.gswfit.dsl.predicates import PREDICATES

__all__ = ["SpecValidationError", "validate_spec"]

_BUILTIN_NAMES = frozenset(member.value for member in FaultType)

_FAULT_TYPE_RE = re.compile(r"^[A-Z][A-Z0-9_]{1,15}$")
_FIELD_PATH_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")

#: Placeholders available to every description template (computed from
#: the anchor node when present); rules add their own on top.
BASE_PLACEHOLDERS = frozenset({
    "test", "body_count", "name", "value", "target", "call", "func",
})

_TOP_LEVEL_KEYS = frozenset({
    "fault_type", "replaces", "description", "nature", "odc_type",
    "field_coverage_percent", "pattern", "preconditions", "mutation",
})


class SpecValidationError(ValueError):
    """An operator spec failed validation.

    ``path`` is the JSONPath-style location of the problem inside the
    spec document; ``source`` names the file (or other origin) when
    known.  ``str(exc)`` is the user-facing message the CLI prints
    before exiting rc-2.
    """

    def __init__(self, path, message, source=None):
        self.path = path
        self.message = message
        self.source = source
        prefix = f"{source}: " if source else ""
        super().__init__(f"{prefix}{path}: {message}")


def _require(condition, path, message, source):
    if not condition:
        raise SpecValidationError(path, message, source)


def _check_type(value, kind, path, source):
    checks = {
        "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "number": lambda v: isinstance(v, (int, float))
        and not isinstance(v, bool),
        "string": lambda v: isinstance(v, str),
        "bool": lambda v: isinstance(v, bool),
    }
    _require(
        checks[kind](value), path,
        f"expected {kind}, got {type(value).__name__}", source,
    )


def _validate_params(entry, schema, kind, path, source):
    """Validate one predicate/mutation entry's parameters against ``schema``.

    Returns the canonical params dict: every declared parameter present,
    defaults filled, in schema order.
    """
    reserved = {"kind", "description"}
    accepted = ", ".join(schema) if schema else "none"
    for key in entry:
        if key in reserved:
            continue
        _require(
            key in schema, f"{path}.{key}",
            f"{kind!r} accepts no parameter {key!r} "
            f"(accepts: {accepted})", source,
        )
    params = {}
    for name, spec in schema.items():
        if name in entry:
            _check_type(entry[name], spec.kind, f"{path}.{name}", source)
            params[name] = entry[name]
        else:
            _require(
                not spec.required, path,
                f"{kind!r} requires parameter {name!r}", source,
            )
            params[name] = spec.default
    return params


def _validate_pattern(pattern, source):
    _require(
        isinstance(pattern, dict), "$.pattern",
        f"expected object, got {type(pattern).__name__}", source,
    )
    for key in pattern:
        _require(
            key in ("node_types", "scans_blocks"), f"$.pattern.{key}",
            "unknown key (pattern has: node_types, scans_blocks)", source,
        )
    node_types = pattern.get("node_types")
    _require(
        isinstance(node_types, list) and node_types,
        "$.pattern.node_types",
        "a non-empty list of AST node type names is required", source,
    )
    for position, name in enumerate(node_types):
        path = f"$.pattern.node_types[{position}]"
        _require(isinstance(name, str), path,
                 f"expected string, got {type(name).__name__}", source)
        resolved = getattr(ast, name, None)
        _require(
            isinstance(resolved, type) and issubclass(resolved, ast.AST),
            path, f"unknown AST node type {name!r}", source,
        )
    scans_blocks = pattern.get("scans_blocks", False)
    _check_type(scans_blocks, "bool", "$.pattern.scans_blocks", source)
    _require(
        not scans_blocks, "$.pattern.scans_blocks",
        "block-scanning specs are not supported; anchor the pattern "
        "on node_types instead", source,
    )
    return {"node_types": list(node_types), "scans_blocks": False}


def _validate_preconditions(preconditions, source):
    _require(
        isinstance(preconditions, list), "$.preconditions",
        f"expected list, got {type(preconditions).__name__}", source,
    )
    canonical = []
    for position, entry in enumerate(preconditions):
        path = f"$.preconditions[{position}]"
        _require(isinstance(entry, dict), path,
                 f"expected object, got {type(entry).__name__}", source)
        kind = entry.get("kind")
        _require(isinstance(kind, str) and kind, f"{path}.kind",
                 "a predicate kind string is required", source)
        _require(
            kind in PREDICATES, f"{path}.kind",
            f"unknown predicate {kind!r} "
            f"(known: {', '.join(sorted(PREDICATES))})", source,
        )
        _require("description" not in entry, f"{path}.description",
                 "predicates take no description", source)
        _, schema = PREDICATES[kind]
        params = _validate_params(entry, schema, kind, path, source)
        canonical.append({"kind": kind, **params})
    return canonical


def _template_placeholders(template, path, source):
    try:
        parsed = list(string.Formatter().parse(template))
    except ValueError as exc:
        raise SpecValidationError(path, f"bad template: {exc}", source)
    names = set()
    for _literal, field, format_spec, conversion in parsed:
        if field is None:
            continue
        _require(
            field and field.isidentifier(), path,
            f"template placeholders must be plain names, got {field!r}",
            source,
        )
        _require(
            not format_spec and not conversion, path,
            f"placeholder {{{field}}} may not use format specs or "
            "conversions", source,
        )
        names.add(field)
    return names


def _validate_mutation(mutation, source):
    _require(
        isinstance(mutation, dict), "$.mutation",
        f"expected object, got {type(mutation).__name__}", source,
    )
    kind = mutation.get("kind")
    _require(isinstance(kind, str) and kind, "$.mutation.kind",
             "a mutation kind string is required", source)
    _require(
        kind in MUTATIONS, "$.mutation.kind",
        f"unknown mutation {kind!r} "
        f"(known: {', '.join(sorted(MUTATIONS))})", source,
    )
    cls, schema, source_mode = MUTATIONS[kind]
    params = _validate_params(mutation, schema, kind, "$.mutation", source)
    if "field" in params and params["field"] is not None:
        _require(
            _FIELD_PATH_RE.match(params["field"]) is not None,
            "$.mutation.field",
            f"not a dotted attribute path: {params['field']!r}", source,
        )
    if source_mode is not None and params.get("source") is not None:
        try:
            ast.parse(params["source"], mode=source_mode)
        except SyntaxError as exc:
            raise SpecValidationError(
                "$.mutation.source",
                f"not valid Python ({source_mode} mode): {exc.msg}",
                source,
            )
    template = mutation.get("description", "")
    _check_type(template, "string", "$.mutation.description", source)
    allowed = BASE_PLACEHOLDERS | cls.context_keys
    for name in sorted(_template_placeholders(
            template, "$.mutation.description", source)):
        _require(
            name in allowed, "$.mutation.description",
            f"unknown placeholder {{{name}}} (available for "
            f"{kind!r}: {', '.join(sorted(allowed))})", source,
        )
    return {"kind": kind, "description": template, **params}


def validate_spec(data, source=None):
    """Validate ``data`` and return the canonical spec dict.

    Raises :class:`SpecValidationError` with a ``$.path``-precise
    message on the first problem found.
    """
    _require(isinstance(data, dict), "$",
             f"expected object, got {type(data).__name__}", source)
    for key in data:
        _require(key in _TOP_LEVEL_KEYS, f"$.{key}",
                 "unknown key", source)

    fault_type = data.get("fault_type")
    _require(isinstance(fault_type, str) and fault_type, "$.fault_type",
             "a fault type id string is required", source)
    _require(
        _FAULT_TYPE_RE.match(fault_type) is not None, "$.fault_type",
        f"{fault_type!r} is not a valid id (2-16 chars, uppercase "
        "letters/digits/underscore, starting with a letter)", source,
    )

    replaces = data.get("replaces", False)
    _check_type(replaces, "bool", "$.replaces", source)
    if fault_type in _BUILTIN_NAMES:
        _require(
            replaces, "$.fault_type",
            f"{fault_type!r} collides with a built-in fault type; set "
            '"replaces": true to re-express the built-in, or pick a '
            "new id", source,
        )
    else:
        _require(
            not replaces, "$.replaces",
            f"replaces is true but {fault_type!r} is not a built-in "
            "fault type", source,
        )

    canonical = {"fault_type": fault_type, "replaces": replaces}

    metadata_keys = (
        "description", "nature", "odc_type", "field_coverage_percent"
    )
    if replaces:
        for key in metadata_keys:
            _require(
                key not in data, f"$.{key}",
                "a re-expression inherits the built-in type's metadata; "
                "drop this key", source,
            )
    else:
        description = data.get("description")
        _require(
            isinstance(description, str) and description.strip(),
            "$.description",
            "a new fault type requires a description", source,
        )
        nature = data.get("nature")
        natures = [member.value for member in ConstructNature]
        _require(
            nature in natures, "$.nature",
            f"a new fault type requires a nature, one of: "
            f"{', '.join(natures)}", source,
        )
        odc_type = data.get("odc_type")
        odc_types = [member.value for member in ODCType]
        _require(
            odc_type in odc_types, "$.odc_type",
            f"a new fault type requires an odc_type, one of: "
            f"{', '.join(odc_types)}", source,
        )
        coverage = data.get("field_coverage_percent", 0.0)
        _check_type(coverage, "number", "$.field_coverage_percent", source)
        _require(coverage >= 0, "$.field_coverage_percent",
                 "must be non-negative", source)
        canonical.update({
            "description": description,
            "nature": nature,
            "odc_type": odc_type,
            "field_coverage_percent": float(coverage),
        })

    _require("pattern" in data, "$.pattern", "a pattern is required",
             source)
    canonical["pattern"] = _validate_pattern(data["pattern"], source)
    canonical["preconditions"] = _validate_preconditions(
        data.get("preconditions", []), source
    )
    _require("mutation" in data, "$.mutation",
             "a mutation rule is required", source)
    canonical["mutation"] = _validate_mutation(data["mutation"], source)
    return canonical
