"""The precondition vocabulary of the operator-spec DSL.

Each predicate is a small, composable test over the anchor node and the
:class:`~repro.gswfit.astutils.FunctionImage` index.  A spec lists
predicates under ``preconditions``; they are evaluated in listed order
with short-circuit AND, so cheap structural checks should come first
and predicates that assume a shape (e.g. ``name-read-later`` assumes a
single-``Name``-target assignment) should follow the predicate that
establishes it (``simple-constant-assign``).  Predicates are defensive
regardless: on a node without the assumed shape they return False
rather than raise.

A predicate may declare parameters; :data:`PREDICATES` carries a params
schema per kind (name → :class:`Param`), which the spec validator uses
to reject unknown parameters, type mismatches and missing required
values with a path-precise error before anything is compiled.

State-carrying predicates implement :meth:`Predicate.prepare`, the DSL
analogue of ``MutationOperator.begin_scan``: one precomputation per
function, shared by every candidate node.
"""

import ast

from repro.gswfit.astutils import (
    is_infra_call,
    is_simple_constant_assign,
    node_contains,
)
from repro.gswfit.operators.assignment import _is_interesting_constant

__all__ = ["PREDICATES", "Param", "Predicate", "build_predicate"]


class Param:
    """One declared predicate/mutation parameter (for validation)."""

    def __init__(self, kind, required=False, default=None):
        self.kind = kind          # "int" | "number" | "string" | "bool"
        self.required = required
        self.default = default


class Predicate:
    """Base class: a named test over (image, node) with optional state."""

    def __init__(self, params):
        self.params = params

    def prepare(self, image):
        """Per-function precomputation; the result is passed to check."""
        return None

    def check(self, image, node, state):
        """True when ``node`` satisfies the precondition."""
        raise NotImplementedError


class _SimpleConstantAssign(Predicate):
    """``name = <constant>`` with a single plain-name target."""

    def check(self, image, node, state):
        return is_simple_constant_assign(node)


class _InInitBlock(Predicate):
    """The statement sits in the C89-style initialization prefix."""

    def prepare(self, image):
        return image.init_block_length(), image.body_positions()

    def check(self, image, node, state):
        prefix, positions = state
        position = positions.get(id(node))
        return position is not None and position < prefix


class _NotInInitBlock(Predicate):
    """The statement is past the initialization prefix (or nested)."""

    def prepare(self, image):
        return image.init_block_length(), image.body_positions()

    def check(self, image, node, state):
        prefix, positions = state
        position = positions.get(id(node))
        return position is None or position >= prefix


class _NameReadLater(Predicate):
    """The assigned name is ``Load``-read after this top-level statement."""

    def prepare(self, image):
        body = image.fdef.body
        suffix = [set()] * (len(body) + 1)
        for position in range(len(body) - 1, -1, -1):
            loads = set(suffix[position + 1])
            for sub in ast.walk(body[position]):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    loads.add(sub.id)
            suffix[position] = loads
        return image.body_positions(), suffix

    def check(self, image, node, state):
        positions, suffix = state
        position = positions.get(id(node))
        if position is None:
            return False
        targets = getattr(node, "targets", None)
        if not targets or not isinstance(targets[0], ast.Name):
            return False
        return targets[0].id in suffix[position + 1]


class _InterestingConstant(Predicate):
    """The assigned constant is a flag, non-zero number, non-empty text."""

    def check(self, image, node, state):
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Constant):
            return False
        return _is_interesting_constant(value.value)


class _DistinguishableConstant(Predicate):
    """Interesting constant, booleans excluded (MVAV's store filter)."""

    def check(self, image, node, state):
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Constant):
            return False
        if isinstance(value.value, bool):
            return False
        return _is_interesting_constant(value.value)


class _ValueNotConstant(Predicate):
    """The right-hand side is a computed expression, not a literal."""

    def check(self, image, node, state):
        value = getattr(node, "value", None)
        return value is not None and not isinstance(value, ast.Constant)


class _SingleNameTarget(Predicate):
    """Exactly one assignment target and it is a plain name."""

    def check(self, image, node, state):
        targets = getattr(node, "targets", None)
        return (
            isinstance(targets, list)
            and len(targets) == 1
            and isinstance(targets[0], ast.Name)
        )


class _ValueHasNoCall(Predicate):
    """No function call anywhere in the right-hand side."""

    def check(self, image, node, state):
        value = getattr(node, "value", None)
        return value is not None and not node_contains(value, ast.Call)


class _NoElse(Predicate):
    """The node has no else/orelse arm."""

    def check(self, image, node, state):
        return not getattr(node, "orelse", None)


class _HasElse(Predicate):
    """The node has an else/orelse arm."""

    def check(self, image, node, state):
        return bool(getattr(node, "orelse", None))


class _HasBody(Predicate):
    """The node has a non-empty body."""

    def check(self, image, node, state):
        return bool(getattr(node, "body", None))


class _BodySize(Predicate):
    """The node's body length is within [min, max] statements."""

    def check(self, image, node, state):
        body = getattr(node, "body", None)
        if not isinstance(body, list):
            return False
        minimum = self.params["min"]
        maximum = self.params["max"]
        if len(body) < minimum:
            return False
        return maximum is None or len(body) <= maximum


class _NoControlTransfer(Predicate):
    """No return/raise/break/continue anywhere under the node."""

    def check(self, image, node, state):
        return not image.subtree_has_transfer(node)


class _IsCallStatement(Predicate):
    """A function call used as a statement (return value unused)."""

    def check(self, image, node, state):
        return isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Call
        )


class _FitBoundary(Predicate):
    """The call is emulated OS logic, not simulation instrumentation.

    G-SWFIT operates inside the FIT boundary: accounting calls such as
    ``ctx.charge`` are the harness talking to itself and must never be
    mutated.  Non-call nodes pass trivially.
    """

    def check(self, image, node, state):
        call = None
        if isinstance(node, ast.Call):
            call = node
        elif isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Call
        ):
            call = node.value
        if call is None:
            return True
        return not is_infra_call(call)


class _TestIsAndChain(Predicate):
    """The node's test is a top-level ``and`` chain."""

    def check(self, image, node, state):
        test = getattr(node, "test", None)
        return isinstance(test, ast.BoolOp) and isinstance(
            test.op, ast.And
        )


class _TestIsBoolChain(Predicate):
    """The node's test is a boolean chain (``and`` or ``or``)."""

    def check(self, image, node, state):
        return isinstance(getattr(node, "test", None), ast.BoolOp)


class _NotFirstInBlock(Predicate):
    """The statement is not the first of any statement block."""

    def prepare(self, image):
        return {
            id(block[0])
            for block in image.statement_blocks()
            if block
        }

    def check(self, image, node, state):
        return id(node) not in state


class _LocalsAvailable(Predicate):
    """The function binds at least ``min`` local names."""

    def prepare(self, image):
        return len(image.local_names())

    def check(self, image, node, state):
        return state >= self.params["min"]


#: kind → (predicate class, params schema).  The validator walks the
#: schema; the compiler instantiates the class with resolved params.
PREDICATES = {
    "simple-constant-assign": (_SimpleConstantAssign, {}),
    "in-init-block": (_InInitBlock, {}),
    "not-in-init-block": (_NotInInitBlock, {}),
    "name-read-later": (_NameReadLater, {}),
    "interesting-constant": (_InterestingConstant, {}),
    "distinguishable-constant": (_DistinguishableConstant, {}),
    "value-not-constant": (_ValueNotConstant, {}),
    "single-name-target": (_SingleNameTarget, {}),
    "value-has-no-call": (_ValueHasNoCall, {}),
    "no-else": (_NoElse, {}),
    "has-else": (_HasElse, {}),
    "has-body": (_HasBody, {}),
    "body-size": (_BodySize, {
        "min": Param("int", default=1),
        "max": Param("int", required=True),
    }),
    "no-control-transfer": (_NoControlTransfer, {}),
    "is-call-statement": (_IsCallStatement, {}),
    "fit-boundary": (_FitBoundary, {}),
    "not-infra-call": (_FitBoundary, {}),
    "test-is-and-chain": (_TestIsAndChain, {}),
    "test-is-bool-chain": (_TestIsBoolChain, {}),
    "not-first-in-block": (_NotFirstInBlock, {}),
    "locals-available": (_LocalsAvailable, {
        "min": Param("int", default=1),
    }),
}


def build_predicate(kind, params):
    """Instantiate the predicate ``kind`` with validated ``params``."""
    cls, schema = PREDICATES[kind]
    resolved = {
        name: params.get(name, spec.default)
        for name, spec in schema.items()
    }
    return cls(resolved)
