"""DSL re-expressions of the built-in Table 1 operators.

Eight of the twelve built-in operator classes restated as declarative
specs — the fidelity corpus.  The equivalence tests assert that each
compiles to the same site set (keys, payloads, descriptions, line
numbers) and byte-identical mutant bytecode as its class twin on both
OS builds, and the ``dsl-gate`` CI job runs a campaign with them and
``cmp``-s the ``metrics_digest`` against a built-in run.

The remaining four (MLPC, WLEC, WAEP, WPFV) stay class-only: MLPC scans
statement *blocks* for maximal runs and WLEC/WAEP/WPFV walk sub-trees
with seen-sets or name tables — search logic beyond what a declarative
pattern + predicate list can state, and deliberately out of the DSL's
scope (DESIGN.md §16).
"""

import json
import pathlib

__all__ = [
    "BUILTIN_SPECS",
    "builtin_spec",
    "builtin_spec_names",
    "write_builtin_specs",
]

#: fault type name → raw spec dict (validated on first use).
BUILTIN_SPECS = {
    "MVI": {
        "fault_type": "MVI",
        "replaces": True,
        "pattern": {"node_types": ["Assign"]},
        "preconditions": [
            {"kind": "in-init-block"},
            {"kind": "simple-constant-assign"},
            {"kind": "name-read-later"},
        ],
        "mutation": {
            "kind": "delete-node",
            "description": "remove initialization '{name} = {value}'",
        },
    },
    "MVAV": {
        "fault_type": "MVAV",
        "replaces": True,
        "pattern": {"node_types": ["Assign"]},
        "preconditions": [
            {"kind": "simple-constant-assign"},
            {"kind": "not-in-init-block"},
            {"kind": "distinguishable-constant"},
        ],
        "mutation": {
            "kind": "delete-node",
            "description": "remove assignment '{name} = {value}'",
        },
    },
    "MVAE": {
        "fault_type": "MVAE",
        "replaces": True,
        "pattern": {"node_types": ["Assign"]},
        "preconditions": [
            {"kind": "value-not-constant"},
            {"kind": "single-name-target"},
            {"kind": "value-has-no-call"},
        ],
        "mutation": {
            "kind": "delete-node",
            "description": "remove assignment to '{target}'",
        },
    },
    "MIA": {
        "fault_type": "MIA",
        "replaces": True,
        "pattern": {"node_types": ["If"]},
        "preconditions": [
            {"kind": "no-else"},
            {"kind": "has-body"},
        ],
        "mutation": {
            "kind": "replace-with-body",
            "description":
                "remove condition 'if {test}:' (keep body)",
        },
    },
    "MLAC": {
        "fault_type": "MLAC",
        "replaces": True,
        "pattern": {"node_types": ["If"]},
        "preconditions": [
            {"kind": "test-is-and-chain"},
        ],
        "mutation": {
            "kind": "remove-bool-operand",
            "field": "test",
            "description":
                "remove 'and {clause}' from branch condition",
        },
    },
    "MFC": {
        "fault_type": "MFC",
        "replaces": True,
        "pattern": {"node_types": ["Expr"]},
        "preconditions": [
            {"kind": "is-call-statement"},
            {"kind": "fit-boundary"},
        ],
        "mutation": {
            "kind": "delete-node",
            "description": "remove call '{call}'",
        },
    },
    "MIFS": {
        "fault_type": "MIFS",
        "replaces": True,
        "pattern": {"node_types": ["If"]},
        "preconditions": [
            {"kind": "no-else"},
            {"kind": "body-size", "min": 1, "max": 5},
            {"kind": "no-control-transfer"},
        ],
        "mutation": {
            "kind": "delete-node",
            "description":
                "remove 'if {test}:' and its {body_count} statement(s)",
        },
    },
    "WVAV": {
        "fault_type": "WVAV",
        "replaces": True,
        "pattern": {"node_types": ["Assign"]},
        "preconditions": [
            {"kind": "simple-constant-assign"},
            {"kind": "interesting-constant"},
        ],
        "mutation": {
            "kind": "perturb-constant",
            "field": "value",
            "description":
                "'{name} = {old}' becomes '{name} = {new}'",
        },
    },
}


def builtin_spec_names():
    """The fault types re-expressed as specs, in Table 1 order."""
    return list(BUILTIN_SPECS)


def builtin_spec(name):
    """A deep copy of the raw spec dict for ``name`` (e.g. ``"MVI"``)."""
    return json.loads(json.dumps(BUILTIN_SPECS[name]))


def write_builtin_specs(directory):
    """Write each re-expression to ``directory`` as ``<name>.json``.

    Returns the written paths — the ``dsl-gate`` CI job uses this to
    materialize spec files for ``--operator-spec`` without keeping a
    second, driftable copy of the corpus in the repository.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, spec in BUILTIN_SPECS.items():
        path = directory / f"{name}.json"
        path.write_text(
            json.dumps(spec, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths.append(path)
    return paths
