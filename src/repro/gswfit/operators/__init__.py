"""Mutation operator library.

One operator per fault type of the paper's Table 1.  Each operator is a
search pattern (:meth:`~repro.gswfit.operators.base.MutationOperator.find_sites`)
plus a mutation rule
(:meth:`~repro.gswfit.operators.base.MutationOperator.mutate`) with the
preconditions that keep the emulation representative (e.g. MIFS never
removes an ``if`` whose body returns, MVI only removes initializations of
variables that are used later).
"""

from repro.faults.types import FaultType
from repro.gswfit.operators.base import (
    MutationOperator,
    Site,
    collect_sites,
)
from repro.gswfit.operators.assignment import (
    MissingVariableInitialization,
    MissingAssignmentWithValue,
    MissingAssignmentWithExpression,
    WrongValueAssigned,
)
from repro.gswfit.operators.checking import (
    MissingIfAroundStatements,
    MissingAndClause,
    WrongLogicalExpression,
)
from repro.gswfit.operators.algorithm import (
    MissingFunctionCall,
    MissingIfPlusStatements,
    MissingLocalPartOfAlgorithm,
)
from repro.gswfit.operators.interface import (
    WrongArithmeticExpressionInParameter,
    WrongVariableInParameter,
)

__all__ = [
    "MutationOperator",
    "Site",
    "collect_sites",
    "operator_for",
    "operator_library",
]

_LIBRARY = {
    FaultType.MVI: MissingVariableInitialization(),
    FaultType.MVAV: MissingAssignmentWithValue(),
    FaultType.MVAE: MissingAssignmentWithExpression(),
    FaultType.MIA: MissingIfAroundStatements(),
    FaultType.MLAC: MissingAndClause(),
    FaultType.MFC: MissingFunctionCall(),
    FaultType.MIFS: MissingIfPlusStatements(),
    FaultType.MLPC: MissingLocalPartOfAlgorithm(),
    FaultType.WVAV: WrongValueAssigned(),
    FaultType.WLEC: WrongLogicalExpression(),
    FaultType.WAEP: WrongArithmeticExpressionInParameter(),
    FaultType.WPFV: WrongVariableInParameter(),
}


def operator_library():
    """The full operator library, keyed by fault type (Table 1 order)."""
    return dict(_LIBRARY)


def operator_for(fault_type):
    """The operator implementing ``fault_type`` (accepts the enum or name)."""
    if isinstance(fault_type, str):
        fault_type = FaultType(fault_type)
    return _LIBRARY[fault_type]
