"""Mutation operator library.

One operator per fault type of the paper's Table 1.  Each operator is a
search pattern (:meth:`~repro.gswfit.operators.base.MutationOperator.find_sites`)
plus a mutation rule
(:meth:`~repro.gswfit.operators.base.MutationOperator.mutate`) with the
preconditions that keep the emulation representative (e.g. MIFS never
removes an ``if`` whose body returns, MVI only removes initializations of
variables that are used later).

The library is extensible at runtime: :func:`register_operator` overlays
dynamic operators — compiled from declarative specs (DESIGN.md §16) —
on top of the Table 1 classes, either *replacing* a built-in (a DSL
re-expression keeps its fault type, fault ids and digests) or *adding*
a new dynamic fault type.  :func:`registry_generation` is a counter the
cache layer folds into its memo keys so fingerprints never go stale
across registrations.
"""

from repro.faults.types import FaultType, lookup_fault_type
from repro.gswfit.operators.base import (
    MutationOperator,
    Site,
    collect_sites,
)
from repro.gswfit.operators.assignment import (
    MissingVariableInitialization,
    MissingAssignmentWithValue,
    MissingAssignmentWithExpression,
    WrongValueAssigned,
)
from repro.gswfit.operators.checking import (
    MissingIfAroundStatements,
    MissingAndClause,
    WrongLogicalExpression,
)
from repro.gswfit.operators.algorithm import (
    MissingFunctionCall,
    MissingIfPlusStatements,
    MissingLocalPartOfAlgorithm,
)
from repro.gswfit.operators.interface import (
    WrongArithmeticExpressionInParameter,
    WrongVariableInParameter,
)

__all__ = [
    "MutationOperator",
    "Site",
    "collect_sites",
    "operator_for",
    "operator_library",
    "operator_provenance",
    "register_operator",
    "registry_generation",
    "reset_dynamic_operators",
    "unregister_operator",
]

_LIBRARY = {
    FaultType.MVI: MissingVariableInitialization(),
    FaultType.MVAV: MissingAssignmentWithValue(),
    FaultType.MVAE: MissingAssignmentWithExpression(),
    FaultType.MIA: MissingIfAroundStatements(),
    FaultType.MLAC: MissingAndClause(),
    FaultType.MFC: MissingFunctionCall(),
    FaultType.MIFS: MissingIfPlusStatements(),
    FaultType.MLPC: MissingLocalPartOfAlgorithm(),
    FaultType.WVAV: WrongValueAssigned(),
    FaultType.WLEC: WrongLogicalExpression(),
    FaultType.WAEP: WrongArithmeticExpressionInParameter(),
    FaultType.WPFV: WrongVariableInParameter(),
}


#: Dynamic overlay: spec-compiled operators, keyed by fault type.  A key
#: also present in ``_LIBRARY`` is a re-expression of that built-in; a
#: key absent from it is a new dynamic fault type (appended after the
#: Table 1 twelve in library order).
_DYNAMIC = {}

#: Bumped on every overlay change; cache memo keys include it.
_generation = 0


def registry_generation():
    """Monotonic counter that changes whenever the overlay changes."""
    return _generation


def operator_library():
    """The full operator library, keyed by fault type.

    Table 1 order first (built-ins, with any DSL re-expression applied
    in place), then dynamic fault types in registration order.
    """
    library = dict(_LIBRARY)
    library.update(_DYNAMIC)
    return library


def operator_for(fault_type):
    """The operator implementing ``fault_type`` (accepts the enum or name)."""
    if isinstance(fault_type, str):
        fault_type = lookup_fault_type(fault_type)
    if fault_type in _DYNAMIC:
        return _DYNAMIC[fault_type]
    return _LIBRARY[fault_type]


def operator_provenance(fault_type):
    """``"builtin"`` or ``"dsl"`` for the operator behind ``fault_type``."""
    try:
        operator = operator_for(fault_type)
    except (KeyError, ValueError):
        return "unknown"
    return getattr(operator, "provenance", "builtin")


def register_operator(operator, replace=False):
    """Overlay ``operator`` onto the library under its fault type.

    ``replace=True`` is required to shadow a built-in Table 1 operator
    (the deliberate act of a ``"replaces": true`` spec); without it a
    built-in collision raises ``ValueError``.  Registering a dynamic
    fault type again simply updates the overlay.  Every change bumps
    :func:`registry_generation`, invalidating fingerprint memos.
    """
    global _generation
    fault_type = operator.fault_type
    if fault_type in _LIBRARY and not replace:
        raise ValueError(
            f"operator for {fault_type.value} would shadow the built-in "
            "Table 1 operator; pass replace=True (spec: \"replaces\": "
            "true) to re-express it"
        )
    _DYNAMIC[fault_type] = operator
    _generation += 1
    return operator


def unregister_operator(fault_type):
    """Remove one dynamic overlay entry (no-op if absent)."""
    global _generation
    if isinstance(fault_type, str):
        fault_type = lookup_fault_type(fault_type)
    if _DYNAMIC.pop(fault_type, None) is not None:
        _generation += 1


def reset_dynamic_operators():
    """Drop the whole dynamic overlay (test isolation)."""
    global _generation
    if _DYNAMIC:
        _DYNAMIC.clear()
        _generation += 1
