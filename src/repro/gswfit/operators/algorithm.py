"""Algorithm-class operators: MFC, MIFS, MLPC."""

import ast

from repro.faults.types import FaultType
from repro.gswfit.astutils import is_infra_call
from repro.gswfit.operators.base import (
    MutationOperator,
    Site,
    remove_statements,
    replace_statement,
)

__all__ = [
    "MissingFunctionCall",
    "MissingIfPlusStatements",
    "MissingLocalPartOfAlgorithm",
]

MLPC_MAX_REMOVED = 3


def _is_call_statement(stmt):
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)


class MissingFunctionCall(MutationOperator):
    """MFC: remove a statement-level function call.

    Search pattern: ``f(...)`` used as a statement (return value unused —
    the G-SWFIT precondition, since a used return value would make this a
    different fault type).  Simulation-accounting calls (``ctx.charge``)
    are excluded: they are instrumentation, not emulated OS logic.
    """

    fault_type = FaultType.MFC
    node_types = (ast.Expr,)

    def visit_node(self, image, node, state):
        if not isinstance(node.value, ast.Call):
            return ()
        if is_infra_call(node.value):
            return ()
        call_text = ast.unparse(node.value)
        return [Site(
            node_index=image.index_of(node),
            description=f"remove call '{call_text}'",
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        replace_statement(tree, node_list[site.node_index], [])


class MissingIfPlusStatements(MutationOperator):
    """MIFS: remove an ``if`` together with its guarded statements.

    Search pattern: an ``if`` with no else arm whose body is small (1 to 5
    statements, per the original operator's constraint) and contains no
    control-flow transfer — removing a returning guard is MIA territory,
    and counting it twice would skew the faultload mix.
    """

    fault_type = FaultType.MIFS
    node_types = (ast.If,)

    MAX_BODY = 5

    def visit_node(self, image, node, state):
        if node.orelse:
            return ()
        if not 1 <= len(node.body) <= self.MAX_BODY:
            return ()
        if image.subtree_has_transfer(node):
            return ()
        condition = ast.unparse(node.test)
        return [Site(
            node_index=image.index_of(node),
            description=(
                f"remove 'if {condition}:' and its "
                f"{len(node.body)} statement(s)"
            ),
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        replace_statement(tree, node_list[site.node_index], [])


_SIMPLE_STATEMENTS = (ast.Assign, ast.AugAssign, ast.Expr)


def _is_simple(stmt):
    if isinstance(stmt, ast.Expr):
        return isinstance(stmt.value, ast.Call)
    return isinstance(stmt, _SIMPLE_STATEMENTS)


def _is_meaningful(stmt):
    """A run member that makes the run worth removing (non-infra)."""
    if isinstance(stmt, ast.Expr):
        return not is_infra_call(stmt.value)
    return True


class MissingLocalPartOfAlgorithm(MutationOperator):
    """MLPC: remove a small, localized sequence of the algorithm.

    Search pattern: a maximal run of two or more consecutive simple
    statements (assignments and call statements) in one block, past the
    initialization prefix for the top-level body.  One site per run; the
    mutation removes the first ``min(len, 3)`` statements, emulating a
    programmer who skipped a short step of the algorithm.
    """

    fault_type = FaultType.MLPC
    scans_blocks = True

    def begin_scan(self, image):
        return image.init_block_length()

    def visit_block(self, image, block, prefix):
        start = prefix if block is image.fdef.body else 0
        sites = []
        run = []
        for stmt in block[start:] + [None]:
            if stmt is not None and _is_simple(stmt):
                run.append(stmt)
                continue
            if len(run) >= 2 and any(_is_meaningful(s) for s in run):
                count = min(len(run), MLPC_MAX_REMOVED)
                sites.append(Site(
                    node_index=image.index_of(run[0]),
                    payload=str(count),
                    description=(
                        f"remove {count} consecutive statement(s) "
                        f"starting with '{ast.unparse(run[0])}'"
                    ),
                    lineno=image.absolute_lineno(run[0]),
                ))
            run = []
        return sites

    def apply(self, tree, node_list, site):
        count = int(site.payload)
        remove_statements(tree, node_list[site.node_index], count)
