"""Operator framework: sites, search patterns, tree surgery helpers."""

import ast
from dataclasses import dataclass

__all__ = [
    "MutationOperator",
    "Site",
    "replace_statement",
    "remove_statements",
]


@dataclass(frozen=True)
class Site:
    """One place where an operator can emulate its fault type.

    ``node_index`` addresses the anchor node in the deterministic walk of
    the function's AST; ``payload`` carries operator-specific detail (an
    operand position, a statement count, a replacement name).  Together
    they form the stable ``site_key``.
    """

    node_index: int
    payload: str = ""
    description: str = ""
    lineno: int = 0

    @property
    def key(self):
        if self.payload:
            return f"{self.node_index}#{self.payload}"
        return str(self.node_index)

    @classmethod
    def parse_key(cls, key):
        """Split a site key back into (node_index, payload)."""
        if "#" in key:
            index_text, payload = key.split("#", 1)
        else:
            index_text, payload = key, ""
        return int(index_text), payload


class MutationOperator:
    """Base class: a search pattern plus a mutation rule.

    Subclasses set :attr:`fault_type` and implement :meth:`find_sites`
    (scan a :class:`~repro.gswfit.astutils.FunctionImage`, return sites in
    deterministic order) and :meth:`apply` (mutate a *fresh copy* of the
    tree in place, given the re-indexed node list).
    """

    fault_type = None

    def find_sites(self, image):
        raise NotImplementedError

    def apply(self, tree, node_list, site):
        """Mutate ``tree`` (already a fresh copy) at ``site``.

        ``node_list`` is the walk index of ``tree``; the anchor node is
        ``node_list[site.node_index]``.
        """
        raise NotImplementedError

    def mutate(self, image, site):
        """Return a mutated copy of the image's tree."""
        tree, node_list = image.fresh_copy()
        self.apply(tree, node_list, site)
        ast.fix_missing_locations(tree)
        return tree

    def __repr__(self):
        name = self.fault_type.value if self.fault_type else "?"
        return f"<{type(self).__name__} ({name})>"


_BODY_FIELDS = ("body", "orelse", "finalbody")


def _iter_statement_lists(tree):
    """Yield every statement list in ``tree`` (bodies, else/finally arms)."""
    for node in ast.walk(tree):
        for field in _BODY_FIELDS:
            block = getattr(node, field, None)
            if isinstance(block, list):
                yield node, field, block


def replace_statement(tree, target, replacement):
    """Replace statement ``target`` (by identity) with ``replacement`` list.

    An emptied block gets a ``pass`` so the function still compiles —
    the machine-code analogue is NOP-ing the instruction range.
    """
    for _owner, _field, block in _iter_statement_lists(tree):
        for position, stmt in enumerate(block):
            if stmt is target:
                block[position:position + 1] = list(replacement)
                if not block:
                    block.append(ast.Pass())
                return True
    raise ValueError("target statement not found in tree")


def remove_statements(tree, first, count):
    """Remove ``count`` consecutive statements starting at ``first``."""
    for _owner, _field, block in _iter_statement_lists(tree):
        for position, stmt in enumerate(block):
            if stmt is first:
                del block[position:position + count]
                if not block:
                    block.append(ast.Pass())
                return True
    raise ValueError("first statement not found in tree")
