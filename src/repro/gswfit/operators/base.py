"""Operator framework: sites, search patterns, tree surgery helpers.

Operators are written against a **visitor protocol**: each declares the
AST node classes its search pattern anchors on (:attr:`node_types`), or
that it scans statement blocks (:attr:`scans_blocks`), and implements
:meth:`visit_node` / :meth:`visit_block` plus an optional per-function
:meth:`begin_scan` that precomputes shared state.  Two drivers consume
the protocol:

* :meth:`MutationOperator.find_sites` — the per-operator reference pass:
  one full tree traversal dispatching to this operator only.  This is
  the historical 12-pass scan shape; the equivalence tests and the
  hot-path bench use it as the baseline.
* :func:`collect_sites` — the single-pass driver: one indexed walk per
  function (already paid for at :class:`FunctionImage` construction),
  dispatching every node to all interested operators at once.  The
  per-operator site order is identical to :meth:`find_sites` by
  construction, because both deliver candidates in walk order to the
  same visit methods.
"""

import ast
import inspect
from dataclasses import dataclass

from repro.gswfit.astutils import STATEMENT_BLOCK_FIELDS

__all__ = [
    "MutationOperator",
    "Site",
    "collect_sites",
    "replace_statement",
    "remove_statements",
]


@dataclass(frozen=True)
class Site:
    """One place where an operator can emulate its fault type.

    ``node_index`` addresses the anchor node in the deterministic walk of
    the function's AST; ``payload`` carries operator-specific detail (an
    operand position, a statement count, a replacement name).  Together
    they form the stable ``site_key``.
    """

    node_index: int
    payload: str = ""
    description: str = ""
    lineno: int = 0

    @property
    def key(self):
        if self.payload:
            return f"{self.node_index}#{self.payload}"
        return str(self.node_index)

    @classmethod
    def parse_key(cls, key):
        """Split a site key back into (node_index, payload)."""
        if "#" in key:
            index_text, payload = key.split("#", 1)
        else:
            index_text, payload = key, ""
        return int(index_text), payload


class MutationOperator:
    """Base class: a search pattern plus a mutation rule.

    Subclasses set :attr:`fault_type`, declare what the search pattern
    anchors on (:attr:`node_types` and/or :attr:`scans_blocks`), and
    implement :meth:`visit_node` / :meth:`visit_block` (emit sites for
    one candidate, in deterministic order) and :meth:`apply` (mutate a
    *fresh copy* of the tree in place, given the re-indexed node list).
    """

    fault_type = None
    #: Concrete AST classes whose instances :meth:`visit_node` receives.
    #: Exact classes, not bases — dispatch is by ``type(node)`` (AST
    #: trees produced by :func:`ast.parse` never contain subclasses).
    node_types = ()
    #: When True, :meth:`visit_block` receives every statement list of
    #: the function (bodies, else/finally arms) in walk order.
    scans_blocks = False
    #: Where the operator came from: ``"builtin"`` for the Table 1
    #: classes, ``"dsl"`` for operators compiled from declarative specs.
    provenance = "builtin"

    def begin_scan(self, image):
        """Per-function precomputation; its result is passed to visits."""
        return None

    def visit_node(self, image, node, state):
        """Sites anchored on ``node`` (an instance of :attr:`node_types`)."""
        return ()

    def visit_block(self, image, block, state):
        """Sites anchored on the statement list ``block``."""
        return ()

    def find_sites(self, image):
        """Scan ``image`` with this operator alone (reference pass).

        Performs one full tree traversal — the historical per-operator
        scan shape.  :func:`collect_sites` produces the same sites for
        the whole library in a single shared pass; use that on hot
        paths.
        """
        state = self.begin_scan(image)
        sites = []
        if self.node_types:
            for node in ast.walk(image.fdef):
                if isinstance(node, self.node_types):
                    sites.extend(self.visit_node(image, node, state))
        if self.scans_blocks:
            for _owner, _field, block in _iter_statement_lists(image.fdef):
                sites.extend(self.visit_block(image, block, state))
        return sites

    def apply(self, tree, node_list, site):
        """Mutate ``tree`` (already a fresh copy) at ``site``.

        ``node_list`` is the walk index of ``tree``; the anchor node is
        ``node_list[site.node_index]``.
        """
        raise NotImplementedError

    def mutate(self, image, site):
        """Return a mutated copy of the image's tree."""
        tree, node_list = image.fresh_copy()
        self.apply(tree, node_list, site)
        ast.fix_missing_locations(tree)
        return tree

    def fingerprint_payload(self):
        """Text that captures this operator's behaviour for cache keys.

        Class operators fingerprint their source code, so editing an
        operator invalidates scan and mutant caches.  Spec-compiled
        operators override this with the canonical spec JSON — many
        share one class, so class source alone would under-key them.
        """
        return inspect.getsource(type(self))

    def __repr__(self):
        name = self.fault_type.value if self.fault_type else "?"
        return f"<{type(self).__name__} ({name})>"


def collect_sites(image, operators):
    """One shared pass over ``image`` for every operator at once.

    Returns ``{operator: [sites]}`` where each list is identical —
    contents and order — to what ``operator.find_sites(image)`` returns,
    at the cost of zero tree traversals: candidates come from the typed
    node buckets the image indexed at construction, and statement blocks
    from its cached block list.
    """
    buckets = {}
    dispatch = {}
    block_ops = []
    for operator in operators:
        state = operator.begin_scan(image)
        sites = buckets[operator] = []
        for node_type in operator.node_types:
            dispatch.setdefault(node_type, []).append(
                (operator, sites, state)
            )
        if operator.scans_blocks:
            block_ops.append((operator, sites, state))
    for node_type, interested in dispatch.items():
        if len(interested) == 1:
            operator, sites, state = interested[0]
            for node in image.nodes_of_type(node_type):
                sites.extend(operator.visit_node(image, node, state))
        else:
            for node in image.nodes_of_type(node_type):
                for operator, sites, state in interested:
                    sites.extend(operator.visit_node(image, node, state))
    if block_ops:
        for block in image.statement_blocks():
            for operator, sites, state in block_ops:
                sites.extend(operator.visit_block(image, block, state))
    return buckets


def _iter_statement_lists(tree):
    """Yield every statement list in ``tree`` (bodies, else/finally arms)."""
    for node in ast.walk(tree):
        for field in STATEMENT_BLOCK_FIELDS:
            block = getattr(node, field, None)
            if isinstance(block, list):
                yield node, field, block


def replace_statement(tree, target, replacement):
    """Replace statement ``target`` (by identity) with ``replacement`` list.

    An emptied block gets a ``pass`` so the function still compiles —
    the machine-code analogue is NOP-ing the instruction range.
    """
    for _owner, _field, block in _iter_statement_lists(tree):
        for position, stmt in enumerate(block):
            if stmt is target:
                block[position:position + 1] = list(replacement)
                if not block:
                    block.append(ast.Pass())
                return True
    raise ValueError("target statement not found in tree")


def remove_statements(tree, first, count):
    """Remove ``count`` consecutive statements starting at ``first``."""
    for _owner, _field, block in _iter_statement_lists(tree):
        for position, stmt in enumerate(block):
            if stmt is first:
                del block[position:position + count]
                if not block:
                    block.append(ast.Pass())
                return True
    raise ValueError("first statement not found in tree")
