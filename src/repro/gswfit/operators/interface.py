"""Interface-class operators: WAEP, WPFV."""

import ast

from repro.faults.types import FaultType
from repro.gswfit.astutils import is_infra_call, local_names
from repro.gswfit.operators.base import MutationOperator, Site

__all__ = [
    "WrongArithmeticExpressionInParameter",
    "WrongVariableInParameter",
]

_ARITH_SWAP = {
    ast.Add: ast.Sub,
    ast.Sub: ast.Add,
    ast.Mult: ast.Add,
    ast.FloorDiv: ast.Mult,
    ast.Mod: ast.FloorDiv,
}

# Parameters WPFV never rewrites: the process context is plumbing, not a
# data parameter a programmer would confuse with another variable.
_WPFV_EXCLUDED_NAMES = frozenset({"ctx", "self"})


class WrongArithmeticExpressionInParameter(MutationOperator):
    """WAEP: perturb an arithmetic expression passed as a call argument.

    Search pattern: a positional argument of a (non-infrastructure) call
    whose top-level node is a binary arithmetic expression.  Mutation:
    swap the operator (``+`` ↔ ``-``, ``*`` → ``+``, ...), the classic
    wrong-formula interface error.
    """

    fault_type = FaultType.WAEP

    def find_sites(self, image):
        sites = []
        for node in ast.walk(image.fdef):
            if not isinstance(node, ast.Call) or is_infra_call(node):
                continue
            for position, arg in enumerate(node.args):
                if not isinstance(arg, ast.BinOp):
                    continue
                if type(arg.op) not in _ARITH_SWAP:
                    continue
                sites.append(Site(
                    node_index=image.index_of(node),
                    payload=str(position),
                    description=(
                        f"perturb argument '{ast.unparse(arg)}' of "
                        f"'{ast.unparse(node.func)}(...)'"
                    ),
                    lineno=image.absolute_lineno(node),
                ))
        return sites

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        position = int(site.payload)
        arg = node.args[position]
        arg.op = _ARITH_SWAP[type(arg.op)]()


class WrongVariableInParameter(MutationOperator):
    """WPFV: pass the wrong local variable to a call.

    Search pattern: the first positional argument of a (non-infra) call
    with at least two arguments that is a plain local-variable name.  The
    replacement is chosen deterministically at scan time — the
    alphabetically next local — and recorded in the site payload, so the
    faultload fully describes the mutant.
    """

    fault_type = FaultType.WPFV

    MIN_CALL_ARGS = 2

    def find_sites(self, image):
        sites = []
        names = sorted(
            name for name in local_names(image.fdef)
            if name not in _WPFV_EXCLUDED_NAMES
        )
        if len(names) < 2:
            return sites
        for node in ast.walk(image.fdef):
            if not isinstance(node, ast.Call) or is_infra_call(node):
                continue
            if len(node.args) < self.MIN_CALL_ARGS:
                continue
            for position, arg in enumerate(node.args):
                if not isinstance(arg, ast.Name):
                    continue
                if arg.id in _WPFV_EXCLUDED_NAMES or arg.id not in names:
                    continue
                replacement = self._replacement_for(arg.id, names)
                if replacement is None:
                    continue
                sites.append(Site(
                    node_index=image.index_of(node),
                    payload=f"{position}:{replacement}",
                    description=(
                        f"argument '{arg.id}' of "
                        f"'{ast.unparse(node.func)}(...)' becomes "
                        f"'{replacement}'"
                    ),
                    lineno=image.absolute_lineno(node),
                ))
                break  # one site per call keeps the WPFV share realistic
        return sites

    @staticmethod
    def _replacement_for(current, names):
        """Alphabetically next local after ``current`` (wrapping)."""
        if current not in names:
            return None
        index = names.index(current)
        replacement = names[(index + 1) % len(names)]
        if replacement == current:
            return None
        return replacement

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        position_text, replacement = site.payload.split(":", 1)
        node.args[int(position_text)].id = replacement
