"""Interface-class operators: WAEP, WPFV."""

import ast

from repro.faults.types import FaultType
from repro.gswfit.astutils import is_infra_call
from repro.gswfit.operators.base import MutationOperator, Site

__all__ = [
    "WrongArithmeticExpressionInParameter",
    "WrongVariableInParameter",
]

_ARITH_SWAP = {
    ast.Add: ast.Sub,
    ast.Sub: ast.Add,
    ast.Mult: ast.Add,
    ast.FloorDiv: ast.Mult,
    ast.Mod: ast.FloorDiv,
}

# Parameters WPFV never rewrites: the process context is plumbing, not a
# data parameter a programmer would confuse with another variable.
_WPFV_EXCLUDED_NAMES = frozenset({"ctx", "self"})


class WrongArithmeticExpressionInParameter(MutationOperator):
    """WAEP: perturb an arithmetic expression passed as a call argument.

    Search pattern: a positional argument of a (non-infrastructure) call
    whose top-level node is a binary arithmetic expression.  Mutation:
    swap the operator (``+`` ↔ ``-``, ``*`` → ``+``, ...), the classic
    wrong-formula interface error.
    """

    fault_type = FaultType.WAEP
    node_types = (ast.Call,)

    def visit_node(self, image, node, state):
        if is_infra_call(node):
            return ()
        sites = []
        for position, arg in enumerate(node.args):
            if not isinstance(arg, ast.BinOp):
                continue
            if type(arg.op) not in _ARITH_SWAP:
                continue
            sites.append(Site(
                node_index=image.index_of(node),
                payload=str(position),
                description=(
                    f"perturb argument '{ast.unparse(arg)}' of "
                    f"'{ast.unparse(node.func)}(...)'"
                ),
                lineno=image.absolute_lineno(node),
            ))
        return sites

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        position = int(site.payload)
        arg = node.args[position]
        arg.op = _ARITH_SWAP[type(arg.op)]()


class WrongVariableInParameter(MutationOperator):
    """WPFV: pass the wrong local variable to a call.

    Search pattern: the first positional argument of a (non-infra) call
    with at least two arguments that is a plain local-variable name.  The
    replacement is chosen deterministically at scan time — the
    alphabetically next local — and recorded in the site payload, so the
    faultload fully describes the mutant.
    """

    fault_type = FaultType.WPFV
    node_types = (ast.Call,)

    MIN_CALL_ARGS = 2

    def begin_scan(self, image):
        names = sorted(
            name for name in image.local_names()
            if name not in _WPFV_EXCLUDED_NAMES
        )
        if len(names) < 2:
            return None
        return names

    def visit_node(self, image, node, names):
        if names is None:
            return ()
        if is_infra_call(node):
            return ()
        if len(node.args) < self.MIN_CALL_ARGS:
            return ()
        for position, arg in enumerate(node.args):
            if not isinstance(arg, ast.Name):
                continue
            if arg.id in _WPFV_EXCLUDED_NAMES or arg.id not in names:
                continue
            replacement = self._replacement_for(arg.id, names)
            if replacement is None:
                continue
            # One site per call keeps the WPFV share realistic.
            return [Site(
                node_index=image.index_of(node),
                payload=f"{position}:{replacement}",
                description=(
                    f"argument '{arg.id}' of "
                    f"'{ast.unparse(node.func)}(...)' becomes "
                    f"'{replacement}'"
                ),
                lineno=image.absolute_lineno(node),
            )]
        return ()

    @staticmethod
    def _replacement_for(current, names):
        """Alphabetically next local after ``current`` (wrapping)."""
        if current not in names:
            return None
        index = names.index(current)
        replacement = names[(index + 1) % len(names)]
        if replacement == current:
            return None
        return replacement

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        position_text, replacement = site.payload.split(":", 1)
        node.args[int(position_text)].id = replacement
