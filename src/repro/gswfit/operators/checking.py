"""Checking-class operators: MIA, MLAC, WLEC."""

import ast

from repro.faults.types import FaultType
from repro.gswfit.operators.base import (
    MutationOperator,
    Site,
    replace_statement,
)

__all__ = [
    "MissingIfAroundStatements",
    "MissingAndClause",
    "WrongLogicalExpression",
]


class MissingIfAroundStatements(MutationOperator):
    """MIA: drop the condition, keep the guarded statements.

    Search pattern: an ``if`` with no else arm.  The mutant executes the
    body unconditionally — the programmer forgot the check.  For the
    pervasive ``if bad: return error`` validation idiom this produces a
    function that always fails, one of the loudest fault modes in the
    paper's experiments.
    """

    fault_type = FaultType.MIA
    node_types = (ast.If,)

    def visit_node(self, image, node, state):
        if node.orelse or not node.body:
            return ()
        condition = ast.unparse(node.test)
        return [Site(
            node_index=image.index_of(node),
            description=f"remove condition 'if {condition}:' (keep body)",
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        replace_statement(tree, node, node.body)


class MissingAndClause(MutationOperator):
    """MLAC: remove one operand from an ``and`` branch condition.

    Search pattern: an ``if`` whose test is a top-level ``and`` chain; one
    site per removable operand.  The mutant checks less than it should —
    a missing guard clause.
    """

    fault_type = FaultType.MLAC
    node_types = (ast.If,)

    def visit_node(self, image, node, state):
        test = node.test
        if not (isinstance(test, ast.BoolOp)
                and isinstance(test.op, ast.And)):
            return ()
        sites = []
        for position, operand in enumerate(test.values):
            clause = ast.unparse(operand)
            sites.append(Site(
                node_index=image.index_of(node),
                payload=str(position),
                description=f"remove 'and {clause}' from branch condition",
                lineno=image.absolute_lineno(node),
            ))
        return sites

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        position = int(site.payload)
        values = node.test.values
        del values[position]
        if len(values) == 1:
            node.test = values[0]


_SWAP = {
    ast.Lt: ast.LtE,
    ast.LtE: ast.Lt,
    ast.Gt: ast.GtE,
    ast.GtE: ast.Gt,
}


class WrongLogicalExpression(MutationOperator):
    """WLEC: boundary error in a branch condition.

    Search pattern: an ordering comparison (``<``, ``<=``, ``>``, ``>=``)
    inside an ``if`` test.  Mutation: the classic off-by-one boundary swap
    (``<`` ↔ ``<=``, ``>`` ↔ ``>=``).  Equality tests are excluded: at
    machine level they compile to a different pattern family and the field
    data attributes them to other fault types.
    """

    fault_type = FaultType.WLEC
    node_types = (ast.If,)

    def begin_scan(self, image):
        # Comparisons already claimed by an earlier ``if`` test, so a
        # construct shared between tests yields exactly one site.
        return set()

    def visit_node(self, image, if_node, seen):
        sites = []
        for node in ast.walk(if_node.test):
            if not isinstance(node, ast.Compare):
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            if len(node.ops) != 1:
                continue
            if type(node.ops[0]) not in _SWAP:
                continue
            old_text = ast.unparse(node)
            sites.append(Site(
                node_index=image.index_of(node),
                description=f"boundary swap in '{old_text}'",
                lineno=image.absolute_lineno(if_node),
            ))
        return sites

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        node.ops[0] = _SWAP[type(node.ops[0])]()
