"""Assignment-class operators: MVI, MVAV, MVAE, WVAV."""

import ast

from repro.faults.types import FaultType
from repro.gswfit.astutils import (
    is_simple_constant_assign,
    node_contains,
)
from repro.gswfit.operators.base import (
    MutationOperator,
    Site,
    replace_statement,
)

__all__ = [
    "MissingVariableInitialization",
    "MissingAssignmentWithValue",
    "MissingAssignmentWithExpression",
    "WrongValueAssigned",
]


def _constant_repr(value):
    return repr(value)


class MissingVariableInitialization(MutationOperator):
    """MVI: remove one initialization from the function's init block.

    Search pattern: a ``name = <constant>`` statement inside the C89-style
    initialization prefix of the body.  Precondition: the variable is read
    later in the function (otherwise the mutant is equivalent code, which
    G-SWFIT's constraints exclude).  The emulated error is using a variable
    that was never set up — in the Python substrate this surfaces as an
    ``UnboundLocalError`` (≈ reading uninitialized stack memory) or as a
    stale value when another path assigned the name earlier.
    """

    fault_type = FaultType.MVI
    node_types = (ast.Assign,)

    def begin_scan(self, image):
        """Precompute, per top-level statement, the names read after it.

        ``suffix[i]`` is the set of names ``Load``-read anywhere in body
        statements ``i`` and later, so the "read later" precondition is a
        set lookup instead of a walk per candidate.
        """
        body = image.fdef.body
        suffix = [set()] * (len(body) + 1)
        for position in range(len(body) - 1, -1, -1):
            loads = set(suffix[position + 1])
            for node in ast.walk(body[position]):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    loads.add(node.id)
            suffix[position] = loads
        positions = {id(stmt): i for i, stmt in enumerate(body)}
        return image.init_block_length(), positions, suffix

    def visit_node(self, image, node, state):
        prefix, positions, suffix = state
        position = positions.get(id(node))
        if position is None or position >= prefix:
            return ()
        if not is_simple_constant_assign(node):
            return ()
        name = node.targets[0].id
        if name not in suffix[position + 1]:
            return ()
        return [Site(
            node_index=image.index_of(node),
            description=(
                f"remove initialization '{name} = "
                f"{_constant_repr(node.value.value)}'"
            ),
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        replace_statement(tree, node_list[site.node_index], [])


class MissingAssignmentWithValue(MutationOperator):
    """MVAV: remove a constant assignment outside the init block.

    Search pattern: ``name = <constant>`` past the initialization prefix,
    where the constant is a distinguishable immediate value (non-zero
    number or non-empty text).  Zero stores and boolean flag stores are
    excluded — at machine level those compile to register-clearing and
    flag idioms whose patterns belong to other operators — which keeps the
    MVAV share as small as in the paper's Table 3.
    """

    fault_type = FaultType.MVAV
    node_types = (ast.Assign,)

    def begin_scan(self, image):
        prefix = image.init_block_length()
        return {
            id(stmt) for stmt in image.fdef.body[:prefix]
        }

    def visit_node(self, image, node, state):
        if not is_simple_constant_assign(node):
            return ()
        if id(node) in state:
            return ()
        value = node.value.value
        if isinstance(value, bool) or not _is_interesting_constant(value):
            return ()
        name = node.targets[0].id
        return [Site(
            node_index=image.index_of(node),
            description=(
                f"remove assignment '{name} = "
                f"{_constant_repr(node.value.value)}'"
            ),
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        replace_statement(tree, node_list[site.node_index], [])


class MissingAssignmentWithExpression(MutationOperator):
    """MVAE: remove an assignment whose right-hand side is an expression.

    Search pattern: ``name = <computed expression>`` where the expression
    contains no function call (an assignment that loses a call belongs to
    the MFC family in the field data) and the target is a single plain
    name.  The mutant keeps whatever the variable held before, which in
    init-block style means the neutral value the initialization assigned.
    """

    fault_type = FaultType.MVAE
    node_types = (ast.Assign,)

    def visit_node(self, image, node, state):
        if isinstance(node.value, ast.Constant):
            return ()
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return ()
        if node_contains(node.value, ast.Call):
            return ()
        target_text = ast.unparse(node.targets[0])
        return [Site(
            node_index=image.index_of(node),
            description=f"remove assignment to '{target_text}'",
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        replace_statement(tree, node_list[site.node_index], [])


def _is_interesting_constant(value):
    """Constants WVAV perturbs: flags, non-zero numbers, non-empty text.

    Zero/None/empty initializations are excluded — at machine level those
    are register-clearing idioms, not immediate-operand stores, so the
    original operator never matches them.
    """
    if isinstance(value, bool):
        return True
    if isinstance(value, int):
        return value != 0
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return len(value) > 0
    return False


def perturb_constant(value):
    """The replacement WVAV writes for ``value`` (deterministic)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value * 2.0 + 1.0
    if isinstance(value, str):
        if len(value) > 1:
            return value[:-1]
        return value + "x"
    raise TypeError(f"not a perturbable constant: {value!r}")


class WrongValueAssigned(MutationOperator):
    """WVAV: replace the constant in an assignment with a wrong one.

    Search pattern: ``name = <interesting constant>`` anywhere in the
    function.  Mutation: off-by-one for integers, flipped booleans,
    truncated strings — the classic wrong-immediate programming errors.
    """

    fault_type = FaultType.WVAV
    node_types = (ast.Assign,)

    def visit_node(self, image, node, state):
        if not is_simple_constant_assign(node):
            return ()
        if not _is_interesting_constant(node.value.value):
            return ()
        name = node.targets[0].id
        old = node.value.value
        new = perturb_constant(old)
        return [Site(
            node_index=image.index_of(node),
            description=(
                f"'{name} = {_constant_repr(old)}' becomes "
                f"'{name} = {_constant_repr(new)}'"
            ),
            lineno=image.absolute_lineno(node),
        )]

    def apply(self, tree, node_list, site):
        node = node_list[site.node_index]
        node.value.value = perturb_constant(node.value.value)
