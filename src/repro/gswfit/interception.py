"""Error-interception injector — the ablation baseline.

Before G-SWFIT, most software-implemented fault injection intercepted API
calls and *substituted their effects*: return an error code, or raise an
exception, without changing any code.  The paper's accuracy argument is
that such interception emulates only a fault's immediate *symptom*, while
mutation emulates the fault itself, whose symptoms are then free to be
wrong values, leaks, hangs, corruption, or nothing at all.

:class:`InterceptionInjector` implements the old style against the same
FIT functions so the ablation bench can compare the diversity of failure
modes the two approaches induce.  Mechanically it reuses the ``__code__``
swap: the "mutant" is a stub with the original signature that fails in one
of two fixed ways.
"""

import ast
from contextlib import contextmanager

from repro.gswfit.astutils import FunctionImage
from repro.gswfit.injector import DEFAULT_FIT_PREFIXES, check_fit_boundary
from repro.gswfit.mutator import resolve_function

__all__ = ["InterceptionFault", "InterceptionInjector"]

MODES = ("error", "exception")

# What "return an error" means per function, mirroring each contract.
# Functions not listed fall back to exception mode.
_ERROR_STUBS = {
    "RtlAllocateHeap": "return 0",
    "RtlFreeHeap": "return False",
    "RtlSizeHeap": "return -1",
    "NtClose": "return NtStatus.INVALID_HANDLE",
    "NtCreateFile": "return (NtStatus.ACCESS_DENIED, 0)",
    "NtOpenFile": "return (NtStatus.ACCESS_DENIED, 0)",
    "NtReadFile": "return (NtStatus.ACCESS_DENIED, None, 0)",
    "NtWriteFile": "return (NtStatus.ACCESS_DENIED, 0)",
    "NtQueryInformationFile": "return (NtStatus.INVALID_HANDLE, None)",
    "NtSetInformationFile": "return NtStatus.INVALID_HANDLE",
    "NtProtectVirtualMemory": "return (NtStatus.ACCESS_VIOLATION, 0)",
    "NtQueryVirtualMemory": "return (NtStatus.INVALID_PARAMETER, None)",
    "RtlEnterCriticalSection": "return NtStatus.INVALID_PARAMETER",
    "RtlLeaveCriticalSection": "return NtStatus.INVALID_PARAMETER",
    "RtlInitUnicodeString": "return NtStatus.INVALID_PARAMETER",
    "RtlInitAnsiString": "return NtStatus.INVALID_PARAMETER",
    "RtlFreeUnicodeString": "return NtStatus.INVALID_PARAMETER",
    "RtlUnicodeToMultiByteN":
        "return (NtStatus.INVALID_PARAMETER, None, 0)",
    "RtlMultiByteToUnicodeN":
        "return (NtStatus.INVALID_PARAMETER, None, 0)",
    "RtlDosPathNameToNtPathName_U":
        "return (NtStatus.OBJECT_NAME_NOT_FOUND, None)",
    "RtlGetFullPathName_U": "return (0, '')",
    "CloseHandle": "return False",
    "CreateFileW": "return 0",
    "ReadFile": "return (False, None, 0)",
    "WriteFile": "return (False, 0)",
    "SetFilePointer": "return -1",
    "GetFileSize": "return -1",
    "GetLongPathNameW": "return (0, '')",
    "DeleteFileW": "return False",
}

_EXCEPTION_STUB = (
    "raise SimSegfault('interception fault in {name}')"
)


class InterceptionFault:
    """One interception: a target function plus a failure mode."""

    def __init__(self, module, function, mode="error"):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.module = module
        self.function = function
        self.mode = mode

    @property
    def fault_id(self):
        return f"intercept:{self.module}:{self.function}:{self.mode}"

    def __repr__(self):
        return f"InterceptionFault({self.function}, mode={self.mode})"


class InterceptionInjector:
    """Applies and removes interception stubs on live FIT functions."""

    def __init__(self, fit_prefixes=DEFAULT_FIT_PREFIXES, os_instances=()):
        self.fit_prefixes = tuple(fit_prefixes)
        self.os_instances = list(os_instances)
        self._originals = {}

    def _check_boundary(self, fault):
        check_fit_boundary(fault.module, self.fit_prefixes)

    def _stub_code(self, fault, function):
        image = FunctionImage(function, module_name=fault.module)
        fdef = image.fdef
        if fault.mode == "error" and fault.function in _ERROR_STUBS:
            body_source = _ERROR_STUBS[fault.function]
        else:
            body_source = _EXCEPTION_STUB.format(name=fault.function)
        stub_body = ast.parse(body_source).body
        fdef.body = stub_body
        ast.fix_missing_locations(image.tree)
        # The swapped code runs with the FIT module's globals, so the
        # exception type must be resolvable there.
        from repro.sim.errors import SimSegfault

        function.__globals__.setdefault("SimSegfault", SimSegfault)
        namespace = dict(function.__globals__)
        code = compile(image.tree, f"<{fault.fault_id}>", "exec")
        exec(code, namespace)  # noqa: S102 - compiling our own stub
        return namespace[function.__name__].__code__

    def inject(self, fault):
        """Swap the target for its interception stub."""
        self._check_boundary(fault)
        function = resolve_function(_Location(fault))
        key = (fault.module, fault.function)
        if key not in self._originals:
            self._originals[key] = function.__code__
        function.__code__ = self._stub_code(fault, function)
        for os_instance in self.os_instances:
            os_instance.fault_mode = True

    def restore(self, fault):
        key = (fault.module, fault.function)
        original = self._originals.pop(key, None)
        if original is not None:
            function = resolve_function(_Location(fault))
            function.__code__ = original
        if not self._originals:
            for os_instance in self.os_instances:
                os_instance.fault_mode = False

    def restore_all(self):
        for (module, function_name), original in list(
            self._originals.items()
        ):
            fault = InterceptionFault(module, function_name)
            function = resolve_function(_Location(fault))
            function.__code__ = original
        self._originals.clear()
        for os_instance in self.os_instances:
            os_instance.fault_mode = False

    @contextmanager
    def injected(self, fault):
        self.inject(fault)
        try:
            yield self
        finally:
            self.restore(fault)


class _Location:
    """Adapter giving :func:`resolve_function` what it expects."""

    def __init__(self, fault):
        self.module = fault.module
        self.function = fault.function
