"""Fault-activation tracking (the probe behind the ACT% column).

The paper's fine-tuning step (Table 2) exists to *maximize the
probability that an injected fault is activated* — that its mutated code
actually executes during the slot.  Historically the harness could not
observe activation at all: every slot ran its full window whether or not
the faulty code was ever reached, and the fine-tuning ablation had to
infer activation from API-call traces.

This module provides direct observation.  When an
:class:`ActivationTracker` is attached, mutants are compiled with a
one-statement entry probe::

    __gswfit_activation__("<fault_id>")

as the first statement of the mutated function
(:func:`~repro.gswfit.mutator.build_mutant` with ``probed=True``).  The
hook name resolves through the FIT module's globals — the injector
installs :meth:`ActivationTracker.record` there for exactly the lifetime
of the injection — so the probe fires on every execution of the faulty
code, whoever the caller is (API dispatch or an intra-module call).

Cost model:

* **Untracked** runs compile the mutant *without* the probe statement —
  the swapped code is byte-identical to what the harness always
  produced, so disabling activation tracking costs literally nothing.
* **Tracked** runs pay one global lookup, one call and one dict lookup
  per execution of a *mutated* function — pristine functions are never
  instrumented, so the workload's steady state is untouched.

The tracker's clock is the simulated time source of the machine under
benchmark, so first-hit timestamps are deterministic and may flow into
``metrics_digest``.
"""

__all__ = ["ACTIVATION_HOOK", "ActivationRecord", "ActivationTracker"]

# The global name probed mutants call; the injector publishes the
# tracker's record method under this name in the FIT module for the
# lifetime of the injection.
ACTIVATION_HOOK = "__gswfit_activation__"


class ActivationRecord:
    """Hit count + first-hit sim-timestamp for one injected fault."""

    __slots__ = ("fault_id", "hits", "first_hit")

    def __init__(self, fault_id):
        self.fault_id = fault_id
        self.hits = 0
        self.first_hit = None

    def __repr__(self):
        return (
            f"ActivationRecord({self.fault_id!r}, hits={self.hits}, "
            f"first_hit={self.first_hit})"
        )


class ActivationTracker:
    """Per-machine activation observer.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time
        (e.g. ``machine.sim``'s ``now``).  Activation timestamps must be
        sim-time so they are pure functions of ``(config, seed,
        faultload)`` and can participate in the deterministic metrics
        digest.
    """

    __slots__ = ("clock", "records")

    def __init__(self, clock):
        self.clock = clock
        self.records = {}

    def begin(self, fault_id):
        """Open a record for a fault about to be injected."""
        if fault_id not in self.records:
            self.records[fault_id] = ActivationRecord(fault_id)

    def record(self, fault_id):
        """The probe target: called on every execution of a mutant.

        Must never raise — an exception here would surface inside the
        faulty function and be misattributed to the injected fault.
        """
        entry = self.records.get(fault_id)
        if entry is None:
            # A probe fired for a fault the harness did not open
            # (defensive: e.g. a stale swap); record it anyway.
            entry = self.records[fault_id] = ActivationRecord(fault_id)
        entry.hits += 1
        if entry.first_hit is None:
            entry.first_hit = self.clock()

    def hits(self, fault_id):
        """Hit count so far for ``fault_id`` (0 when never activated)."""
        entry = self.records.get(fault_id)
        return entry.hits if entry is not None else 0

    def take(self, fault_id):
        """Remove and return the record for ``fault_id`` (or None).

        The harness harvests each slot's record after the fault is
        restored, so a tracker never grows beyond the faults currently
        in flight.
        """
        return self.records.pop(fault_id, None)

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return f"ActivationTracker(open={len(self.records)})"
