"""G-SWFIT: Generic Software Fault Injection Technique (AST-level port).

The original technique scans *machine code* for instruction patterns that
betray specific high-level constructs and mutates them in place so the
binary looks as if the programmer had made the corresponding mistake.  The
port here works one level up, on the Python AST of the simulated OS's API
modules, but keeps the same two-step architecture:

1. **Scan** (:mod:`repro.gswfit.scanner`): a library of mutation operators
   (:mod:`repro.gswfit.operators`) — each a *search pattern* plus a
   *mutation rule* with preconditions — walks every FIT function and emits
   a map of fault locations (a :class:`~repro.faults.faultload.Faultload`).
2. **Inject** (:mod:`repro.gswfit.injector`): at experiment time the
   injector compiles the mutant for one location and hot-swaps it into the
   *running* target via ``__code__`` replacement, then restores the
   original afterwards — no process restart, matching the paper's
   low-intrusiveness requirement.

:mod:`repro.gswfit.interception` provides the classic error-interception
injector as an ablation baseline for the accuracy discussion.
"""

from repro.gswfit.scanner import scan_build, scan_function, scan_module
from repro.gswfit.mutator import build_mutant, mutated_source
from repro.gswfit.injector import FaultInjector, FitBoundaryError
from repro.gswfit.operators import operator_for, operator_library
from repro.gswfit.activation import (
    ACTIVATION_HOOK,
    ActivationRecord,
    ActivationTracker,
)
from repro.gswfit.cache import (
    build_mutant_cached,
    clear_mutant_cache,
    clear_scan_cache,
    library_fingerprint,
    scan_build_cached,
    warm_mutant_cache,
)

__all__ = [
    "ACTIVATION_HOOK",
    "ActivationRecord",
    "ActivationTracker",
    "FaultInjector",
    "FitBoundaryError",
    "build_mutant",
    "build_mutant_cached",
    "clear_mutant_cache",
    "clear_scan_cache",
    "library_fingerprint",
    "mutated_source",
    "operator_for",
    "operator_library",
    "scan_build",
    "scan_build_cached",
    "scan_function",
    "scan_module",
    "warm_mutant_cache",
]
