"""Step 1 of G-SWFIT: scan the target and emit the fault-location map.

Scanning is pure analysis — the target is not modified.  The output is a
:class:`~repro.faults.faultload.Faultload` whose order is deterministic:
modules in link order, functions in export order (internal helpers after
the exports, since their code belongs to the services that call them),
fault types in Table 1 order, sites in source order.

The scan is **single-pass**: each function's AST is walked once (at
:class:`~repro.gswfit.astutils.FunctionImage` construction) and every
node is dispatched to all operators whose search pattern anchors on its
class, instead of one full traversal per Table-1 operator.  The emitted
faultload is identical — same locations, same order, same ``site_key``
values — to the per-operator scan, which remains available as
:func:`scan_function_per_operator` (the reference implementation the
equivalence tests and the hot-path bench compare against).
"""

from repro.faults.faultload import Faultload
from repro.faults.location import FaultLocation
from repro.gswfit.astutils import FunctionImage
from repro.gswfit.operators import collect_sites, operator_library

__all__ = [
    "scan_function",
    "scan_function_per_operator",
    "scan_module",
    "scan_build",
]


def _locations_from_sites(image, function, display_module, sites_by_type):
    """Render per-type site lists as FaultLocations, library order.

    ``sites_by_type`` is built from :func:`operator_library`, so its
    iteration order is Table 1 first, then dynamic (spec-defined) fault
    types in registration order.
    """
    locations = []
    for fault_type, sites in sites_by_type.items():
        for site in sites:
            locations.append(FaultLocation(
                module=image.module_name,
                display_module=display_module,
                function=function.__name__,
                fault_type=fault_type,
                site_key=site.key,
                lineno=site.lineno,
                description=site.description,
            ))
    return locations


def scan_function(function, module_name=None, display_module=""):
    """Scan one function with the full operator library in one pass.

    Returns a list of :class:`FaultLocation` in deterministic order.
    """
    image = FunctionImage(function, module_name=module_name)
    library = operator_library()
    buckets = collect_sites(image, library.values())
    sites_by_type = {
        fault_type: buckets[operator]
        for fault_type, operator in library.items()
    }
    return _locations_from_sites(
        image, function, display_module, sites_by_type
    )


def scan_function_per_operator(function, module_name=None,
                               display_module=""):
    """Scan one function with one full traversal per operator.

    The historical 12-pass scan shape, kept as the reference the
    single-pass scanner is verified against (and benchmarked against in
    ``benchmarks/test_hot_path.py``).  Output is identical to
    :func:`scan_function`.
    """
    image = FunctionImage(function, module_name=module_name)
    library = operator_library()
    sites_by_type = {
        fault_type: operator.find_sites(image)
        for fault_type, operator in library.items()
    }
    return _locations_from_sites(
        image, function, display_module, sites_by_type
    )


def scan_module(module, display_module=None, include_internal=True):
    """Scan every export (and optionally internal helper) of a FIT module."""
    if display_module is None:
        display_module = getattr(module, "__module_name__", module.__name__)
    names = list(module.__exports__)
    if include_internal:
        names.extend(getattr(module, "__internal__", []))
    locations = []
    for name in names:
        function = getattr(module, name)
        locations.extend(scan_function(
            function,
            module_name=module.__name__,
            display_module=display_module,
        ))
    return locations


def scan_build(build, include_internal=True):
    """Scan a whole OS build; returns the build's raw faultload.

    This is the un-tuned faultload: the profiling phase later restricts it
    to the API functions the benchmark targets actually exercise.
    """
    locations = []
    for display_name, module in build.modules:
        locations.extend(scan_module(
            module,
            display_module=display_name,
            include_internal=include_internal,
        ))
    return Faultload(build.codename, locations,
                     name=f"gswfit-{build.codename}")
