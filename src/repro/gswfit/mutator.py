"""Mutant construction: from a fault location to a swappable code object.

A mutant is compiled from the *current source* of the target function by
re-running the operator's search pattern and applying its mutation rule at
the recorded site.  The resulting code object is validated to be
shape-compatible with the original (same signature, no closure cells) so a
``__code__`` swap is always safe.

``probed=True`` additionally plants a one-statement activation probe at
the top of the mutated function (see :mod:`repro.gswfit.activation`):
the probe records that the faulty code actually executed.  Unprobed
mutants are byte-identical to what the harness always produced, so
activation tracking is zero-cost when disabled.
"""

import ast
import importlib
import sys

from repro.gswfit.activation import ACTIVATION_HOOK
from repro.gswfit.astutils import FunctionImage
from repro.gswfit.operators import operator_for

__all__ = [
    "MutantError",
    "build_image",
    "build_mutant",
    "mutated_source",
    "resolve_function",
    "resolve_module",
]


class MutantError(Exception):
    """The fault location does not resolve to a buildable mutant."""


def resolve_module(module_name):
    """The live module object for ``module_name``.

    ``sys.modules`` first: the FIT modules are always already imported
    by the time anything injects into them, and the full import
    machinery (finders, spec resolution, lock) is pure overhead on the
    inject/restore hot path.  Falls back to a real import for a module
    seen for the first time.
    """
    module = sys.modules.get(module_name)
    if module is None:
        module = importlib.import_module(module_name)
    return module


def resolve_function(location):
    """Return the live function object for ``location``."""
    module = resolve_module(location.module)
    function = getattr(module, location.function, None)
    if function is None:
        raise MutantError(
            f"{location.module} has no function {location.function!r}"
        )
    return function


def build_image(location):
    """Parse the current source of the target function."""
    function = resolve_function(location)
    return FunctionImage(function, module_name=location.module)


def _find_site(image, location):
    operator = operator_for(location.fault_type)
    for site in operator.find_sites(image):
        if site.key == location.site_key:
            return operator, site
    raise MutantError(
        f"site {location.site_key!r} for {location.fault_type.value} "
        f"not found in {location.module}.{location.function} — "
        f"was the FIT source modified since the scan?"
    )


def _mutated_tree(location):
    image = build_image(location)
    operator, site = _find_site(image, location)
    return image, operator.mutate(image, site)


def mutated_source(location):
    """Source text of the mutant (documentation and debugging aid)."""
    _image, tree = _mutated_tree(location)
    return ast.unparse(tree)


def _plant_probe(tree, fault_id):
    """Insert the activation probe as the mutant's first statement.

    The hook name resolves through the live FIT module's globals at call
    time; the injector installs/removes the hook there so the probe is
    only ever reachable while its fault is applied.
    """
    probe = ast.Expr(
        value=ast.Call(
            func=ast.Name(id=ACTIVATION_HOOK, ctx=ast.Load()),
            args=[ast.Constant(value=fault_id)],
            keywords=[],
        )
    )
    tree.body[0].body.insert(0, probe)
    ast.fix_missing_locations(tree)


def build_mutant(location, probed=False):
    """Compile the mutant; returns ``(original_function, mutant_code)``."""
    image, tree = _mutated_tree(location)
    if probed:
        _plant_probe(tree, location.fault_id)
    function = image.function
    filename = f"<gswfit:{location.fault_id}>"
    code = compile(tree, filename, "exec")
    namespace = dict(function.__globals__)
    exec(code, namespace)  # noqa: S102 - compiling our own mutant
    mutant_function = namespace[function.__name__]
    mutant_code = mutant_function.__code__
    original_code = function.__code__
    if mutant_code.co_freevars or original_code.co_freevars:
        raise MutantError(
            f"{location.function} uses closure cells; FIT functions must "
            f"be closure-free for code swapping"
        )
    if mutant_code.co_argcount != original_code.co_argcount:
        raise MutantError(
            f"mutation changed the signature of {location.function}"
        )
    return function, mutant_code
