"""Step 2 of G-SWFIT: runtime injection into the live target.

The injector swaps a target function's ``__code__`` for the mutant's and
back, without restarting anything — the running web server's next OS call
simply executes the faulty code.  Two guarantees are enforced:

* **FIT boundary**: faults may only be injected into modules on the FIT
  allowlist.  Mutating the benchmark target itself would invalidate the
  experiment (the paper's BT/FIT separation), so such attempts raise
  :class:`FitBoundaryError` instead of proceeding.
* **Restorability**: the original code object of every mutated function is
  retained; :meth:`FaultInjector.restore_all` returns the OS to pristine
  state and is idempotent.

``profile_mode`` performs every step of an injection except the final code
swap — the mechanism behind the paper's intrusiveness measurements
(Table 4).
"""

from contextlib import contextmanager

from repro.gswfit.mutator import build_mutant

__all__ = ["FaultInjector", "FitBoundaryError"]

DEFAULT_FIT_PREFIXES = ("repro.ossim.modules",)


class FitBoundaryError(Exception):
    """Attempt to inject a fault outside the fault injection target."""


class FaultInjector:
    """Applies and removes mutations on live FIT functions.

    Parameters
    ----------
    fit_prefixes:
        Module-path prefixes that constitute the fault injection target.
    os_instances:
        :class:`~repro.ossim.dispatch.OsInstance` objects whose
        ``fault_mode`` flag should track whether any fault is active.
    profile_mode:
        When True, injections do all the work (mutant compilation
        included) but never swap code — used to measure intrusiveness.
    """

    def __init__(self, fit_prefixes=DEFAULT_FIT_PREFIXES,
                 os_instances=(), profile_mode=False):
        self.fit_prefixes = tuple(fit_prefixes)
        self.os_instances = list(os_instances)
        self.profile_mode = profile_mode
        self._originals = {}
        self._active = {}
        self.injection_count = 0

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _check_boundary(self, location):
        for prefix in self.fit_prefixes:
            if location.module == prefix or location.module.startswith(
                prefix + "."
            ):
                return
        raise FitBoundaryError(
            f"refusing to inject into {location.module!r}: outside the "
            f"fault injection target {self.fit_prefixes!r} — injecting "
            f"into the benchmark target would invalidate the experiment"
        )

    def _sync_fault_mode(self):
        active = bool(self._active)
        for os_instance in self.os_instances:
            os_instance.fault_mode = active

    # ------------------------------------------------------------------
    # Injection / restoration
    # ------------------------------------------------------------------
    @property
    def active_locations(self):
        """Fault locations currently applied."""
        return list(self._active.values())

    def inject(self, location):
        """Apply ``location``'s mutation to the running target."""
        self._check_boundary(location)
        if location.fault_id in self._active:
            raise ValueError(f"fault already active: {location.fault_id}")
        function, mutant_code = build_mutant(location)
        self.injection_count += 1
        if self.profile_mode:
            return
        key = (location.module, location.function)
        if key not in self._originals:
            self._originals[key] = function.__code__
        function.__code__ = mutant_code
        self._active[location.fault_id] = location
        self._sync_fault_mode()

    def restore(self, location):
        """Remove ``location``'s mutation (no-op in profile mode)."""
        if self.profile_mode:
            return
        if location.fault_id not in self._active:
            return
        del self._active[location.fault_id]
        key = (location.module, location.function)
        still_mutated = any(
            (loc.module, loc.function) == key
            for loc in self._active.values()
        )
        if not still_mutated:
            function, _ = _resolve(key)
            function.__code__ = self._originals.pop(key)
        self._sync_fault_mode()

    def restore_all(self):
        """Return every mutated function to its original code."""
        for key, original in list(self._originals.items()):
            function, _ = _resolve(key)
            function.__code__ = original
        self._originals.clear()
        self._active.clear()
        self._sync_fault_mode()

    @contextmanager
    def injected(self, location):
        """Context manager: inject on entry, restore on exit."""
        self.inject(location)
        try:
            yield self
        finally:
            self.restore(location)

    def __repr__(self):
        mode = "profile" if self.profile_mode else "live"
        return (
            f"FaultInjector(mode={mode}, active={len(self._active)}, "
            f"injected={self.injection_count})"
        )


def _resolve(key):
    import importlib

    module_name, function_name = key
    module = importlib.import_module(module_name)
    return getattr(module, function_name), module
