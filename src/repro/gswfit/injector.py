"""Step 2 of G-SWFIT: runtime injection into the live target.

The injector swaps a target function's ``__code__`` for the mutant's and
back, without restarting anything — the running web server's next OS call
simply executes the faulty code.  Two guarantees are enforced:

* **FIT boundary**: faults may only be injected into modules on the FIT
  allowlist.  Mutating the benchmark target itself would invalidate the
  experiment (the paper's BT/FIT separation), so such attempts raise
  :class:`FitBoundaryError` instead of proceeding.
* **Restorability**: the original code object of every mutated function is
  retained; :meth:`FaultInjector.restore_all` returns the OS to pristine
  state and is idempotent.

Mutants come precompiled from the
:mod:`~repro.gswfit.cache` mutant cache: a campaign compiles each fault
location once (optionally warmed up-front and shared with worker
processes), and every subsequent inject of the same location is a pair of
dictionary lookups plus the code swap.

``profile_mode`` performs every step of an injection except the final code
swap — the mechanism behind the paper's intrusiveness measurements
(Table 4).
"""

from contextlib import contextmanager

from repro.gswfit import cache as _cache
from repro.gswfit.activation import ACTIVATION_HOOK
from repro.gswfit.mutator import resolve_module

__all__ = ["FaultInjector", "FitBoundaryError", "check_fit_boundary"]

DEFAULT_FIT_PREFIXES = ("repro.ossim.modules",)


class FitBoundaryError(Exception):
    """Attempt to inject a fault outside the fault injection target."""


def check_fit_boundary(module_name, fit_prefixes):
    """Raise :class:`FitBoundaryError` unless ``module_name`` is FIT.

    Shared by every injector flavour: the BT/FIT separation is the same
    contract whether faults arrive as code swaps or intercepted returns.
    """
    for prefix in fit_prefixes:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return
    raise FitBoundaryError(
        f"refusing to inject into {module_name!r}: outside the "
        f"fault injection target {tuple(fit_prefixes)!r} — injecting "
        f"into the benchmark target would invalidate the experiment"
    )


class FaultInjector:
    """Applies and removes mutations on live FIT functions.

    Parameters
    ----------
    fit_prefixes:
        Module-path prefixes that constitute the fault injection target.
    os_instances:
        :class:`~repro.ossim.dispatch.OsInstance` objects whose
        ``fault_mode`` flag should track whether any fault is active.
    profile_mode:
        When True, injections do all the work (mutant compilation
        included) but never swap code — used to measure intrusiveness.
    mutant_cache_dir:
        Optional directory for the on-disk mutant cache tier; the
        in-process memo is always used.
    activation_tracker:
        Optional :class:`~repro.gswfit.activation.ActivationTracker`.
        When attached, mutants are compiled with the activation probe and
        the tracker's ``record`` method is published under
        ``__gswfit_activation__`` in the FIT module for exactly the
        lifetime of each injection, so the probe resolves iff its fault
        is applied.  Without a tracker the injected bytecode is identical
        to the untracked harness.
    """

    def __init__(self, fit_prefixes=DEFAULT_FIT_PREFIXES,
                 os_instances=(), profile_mode=False,
                 mutant_cache_dir=None, activation_tracker=None):
        self.fit_prefixes = tuple(fit_prefixes)
        self.os_instances = list(os_instances)
        self.profile_mode = profile_mode
        self.mutant_cache_dir = mutant_cache_dir
        self.activation_tracker = activation_tracker
        self._originals = {}
        self._active = {}
        # (module, function) -> the fault_id currently holding that
        # function.  At most one fault per function at a time: mutants
        # are always built from pristine source, so a second swap would
        # trample the first mutant and a later restore would resurrect
        # the *other* fault's code while the bookkeeping says pristine.
        self._function_faults = {}
        # module name -> number of active probed faults in that module;
        # the activation hook lives in the module dict while > 0.
        self._hooked_modules = {}
        self.injection_count = 0

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _check_boundary(self, location):
        check_fit_boundary(location.module, self.fit_prefixes)

    def _sync_fault_mode(self):
        active = bool(self._active)
        for os_instance in self.os_instances:
            os_instance.fault_mode = active

    # ------------------------------------------------------------------
    # Injection / restoration
    # ------------------------------------------------------------------
    @property
    def active_locations(self):
        """Fault locations currently applied."""
        return list(self._active.values())

    def _install_hook(self, module_name):
        count = self._hooked_modules.get(module_name, 0)
        if count == 0:
            module = resolve_module(module_name)
            setattr(module, ACTIVATION_HOOK, self.activation_tracker.record)
        self._hooked_modules[module_name] = count + 1

    def _remove_hook(self, module_name):
        count = self._hooked_modules.get(module_name, 0)
        if count <= 1:
            self._hooked_modules.pop(module_name, None)
            module = resolve_module(module_name)
            if hasattr(module, ACTIVATION_HOOK):
                delattr(module, ACTIVATION_HOOK)
        else:
            self._hooked_modules[module_name] = count - 1

    def inject(self, location):
        """Apply ``location``'s mutation to the running target.

        One fault per function at a time: injecting into a function
        that already carries an active fault raises :class:`ValueError`
        (before any counter moves), because the new mutant — built from
        pristine source — would silently erase the active one and leave
        restore bookkeeping pointing at dead state.
        """
        self._check_boundary(location)
        if location.fault_id in self._active:
            raise ValueError(f"fault already active: {location.fault_id}")
        key = (location.module, location.function)
        if not self.profile_mode:
            holder = self._function_faults.get(key)
            if holder is not None:
                raise ValueError(
                    f"cannot inject {location.fault_id}: function "
                    f"{location.function!r} in {location.module!r} "
                    f"already carries active fault {holder!r} — one "
                    f"fault per function at a time"
                )
        probed = self.activation_tracker is not None
        function, mutant_code = _cache.build_mutant_cached(
            location, cache_dir=self.mutant_cache_dir, probed=probed
        )
        self.injection_count += 1
        if self.profile_mode:
            return
        if probed:
            # The hook must be resolvable before the probed code can run.
            self._install_hook(location.module)
            self.activation_tracker.begin(location.fault_id)
        self._originals[key] = function.__code__
        function.__code__ = mutant_code
        self._active[location.fault_id] = location
        self._function_faults[key] = location.fault_id
        self._sync_fault_mode()

    def restore(self, location):
        """Remove ``location``'s mutation (no-op in profile mode)."""
        if self.profile_mode:
            return
        if location.fault_id not in self._active:
            return
        del self._active[location.fault_id]
        key = (location.module, location.function)
        del self._function_faults[key]
        function = getattr(resolve_module(key[0]), key[1])
        function.__code__ = self._originals.pop(key)
        if self.activation_tracker is not None:
            # Only after the swap-back: the probe must never fire without
            # its hook in place.
            self._remove_hook(location.module)
        self._sync_fault_mode()

    def restore_all(self):
        """Return every mutated function to its original code."""
        for key, original in list(self._originals.items()):
            function = getattr(resolve_module(key[0]), key[1])
            function.__code__ = original
        for module_name in list(self._hooked_modules):
            module = resolve_module(module_name)
            if hasattr(module, ACTIVATION_HOOK):
                delattr(module, ACTIVATION_HOOK)
        self._hooked_modules.clear()
        self._originals.clear()
        self._active.clear()
        self._function_faults.clear()
        self._sync_fault_mode()

    @contextmanager
    def injected(self, location):
        """Context manager: inject on entry, restore on exit."""
        self.inject(location)
        try:
            yield self
        finally:
            self.restore(location)

    def __repr__(self):
        mode = "profile" if self.profile_mode else "live"
        return (
            f"FaultInjector(mode={mode}, active={len(self._active)}, "
            f"injected={self.injection_count})"
        )
