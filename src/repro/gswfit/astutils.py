"""AST plumbing shared by the scanner and the mutator.

The central object is :class:`FunctionImage`: the parsed, indexed source of
one FIT function.  Nodes are addressed by their position in a deterministic
walk of the tree, so a site found during scanning can be relocated in a
fresh deep copy during mutation, and — because the walk only depends on the
source text — the same ``site_key`` resolves to the same construct across
processes and runs.

The image is built with a single breadth-first walk (byte-for-byte the
order of :func:`ast.walk`) that records, per node: its walk position, its
parent, and its class.  Everything the operator library repeatedly needs
during a scan — position lookup, "all ``If`` nodes", "all statement
blocks", "does this subtree transfer control", the function's local
names — is answered from those side tables in O(1)/O(result) instead of
re-walking the tree, which is what makes the single-pass scanner one
traversal per function instead of one per operator.
"""

import ast
import copy
import inspect
import textwrap
from collections import deque

__all__ = [
    "FunctionImage",
    "index_nodes",
    "init_block_length",
    "is_simple_constant_assign",
    "local_names",
    "node_contains",
    "CONTROL_TRANSFER_TYPES",
    "INFRA_CALL_NAMES",
    "STATEMENT_BLOCK_FIELDS",
]

# Calls that belong to the simulation's accounting machinery rather than to
# the OS logic being emulated; operators never target them (removing a CPU
# charge is not a representative software fault).
INFRA_CALL_NAMES = frozenset({"charge"})

# Statements that transfer control out of the enclosing block; operators
# use this to keep removal-style mutations within their fault class.
CONTROL_TRANSFER_TYPES = (ast.Return, ast.Raise, ast.Break, ast.Continue)

# AST fields that hold statement lists (bodies, else/finally arms).
STATEMENT_BLOCK_FIELDS = ("body", "orelse", "finalbody")


class FunctionImage:
    """Parsed source of one module-level function.

    Attributes
    ----------
    function:
        The live function object (whose ``__code__`` injection will swap).
    module_name:
        Importable module path the function was taken from.
    source:
        Dedented source text of the function definition.
    tree:
        ``ast.Module`` containing exactly the function definition.
    fdef:
        The ``ast.FunctionDef`` node inside :attr:`tree`.
    first_lineno:
        Absolute line number of the ``def`` line in the original file.
    """

    def __init__(self, function, module_name=None):
        self.function = function
        self.module_name = module_name or function.__module__
        raw = inspect.getsource(function)
        self.source = textwrap.dedent(raw)
        self.tree = ast.parse(self.source)
        if not self.tree.body or not isinstance(
            self.tree.body[0], ast.FunctionDef
        ):
            raise ValueError(
                f"{function!r} does not parse to a single function def"
            )
        self.fdef = self.tree.body[0]
        self.first_lineno = function.__code__.co_firstlineno
        # One walk fills every index the scan needs: the position list
        # (identical to ast.walk order), the O(1) position map, per-class
        # buckets, and the parent map.
        index = []
        positions = {}
        by_type = {}
        parents = {}
        todo = deque([self.tree])
        while todo:
            node = todo.popleft()
            positions[id(node)] = len(index)
            index.append(node)
            try:
                by_type[type(node)].append(node)
            except KeyError:
                by_type[type(node)] = [node]
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
                todo.append(child)
        self._index = index
        self._positions = positions
        self._by_type = by_type
        self._parents = parents
        # Lazy caches (filled on first use; a mutant build never needs them).
        self._blocks = None
        self._transfer_marks = None
        self._local_names = None
        self._init_block_length = None
        self._body_positions = None

    def node_at(self, index):
        """Node at walk position ``index`` (scanner-time tree)."""
        return self._index[index]

    def index_of(self, node):
        """Walk position of ``node`` (identity comparison, O(1))."""
        position = self._positions.get(id(node))
        if position is None or self._index[position] is not node:
            raise ValueError("node not part of this image")
        return position

    def nodes_of_type(self, node_type):
        """Every node of exactly ``node_type``, in walk order."""
        return self._by_type.get(node_type, ())

    def parent_of(self, node):
        """Parent of ``node`` in the tree (None for the Module root)."""
        return self._parents.get(id(node))

    def statement_blocks(self):
        """Every ``(block,)`` statement list of the function, walk order.

        The first entry is always ``fdef.body``; blocks of the ``Module``
        wrapper are excluded so the sequence matches a walk of the
        function definition itself.
        """
        if self._blocks is None:
            blocks = []
            for node in self._index[1:]:
                for field in STATEMENT_BLOCK_FIELDS:
                    block = getattr(node, field, None)
                    if isinstance(block, list):
                        blocks.append(block)
            self._blocks = blocks
        return self._blocks

    def subtree_has_transfer(self, node):
        """True when ``node``'s subtree contains a control transfer.

        Equivalent to walking the subtree looking for
        :data:`CONTROL_TRANSFER_TYPES`, but answered from a one-time
        ancestor marking of every transfer statement, so repeated queries
        (one per ``if`` candidate) cost O(1).
        """
        if self._transfer_marks is None:
            marked = set()
            parents = self._parents
            for candidate in self._index:
                if isinstance(candidate, CONTROL_TRANSFER_TYPES):
                    cursor = candidate
                    while cursor is not None and id(cursor) not in marked:
                        marked.add(id(cursor))
                        cursor = parents.get(id(cursor))
            self._transfer_marks = marked
        return id(node) in self._transfer_marks

    def local_names(self):
        """Names bound inside the function (cached; see :func:`local_names`)."""
        if self._local_names is None:
            self._local_names = local_names(self.fdef)
        return self._local_names

    def init_block_length(self):
        """Cached :func:`init_block_length` of the function body."""
        if self._init_block_length is None:
            self._init_block_length = init_block_length(self.fdef)
        return self._init_block_length

    def body_positions(self):
        """``{id(stmt): index}`` over the top-level body (cached).

        Several scan preconditions key on a statement's position in
        ``fdef.body``; sharing one map keeps each per-function
        precomputation a dict lookup instead of a fresh dict build.
        """
        if self._body_positions is None:
            self._body_positions = {
                id(stmt): i for i, stmt in enumerate(self.fdef.body)
            }
        return self._body_positions

    def absolute_lineno(self, node):
        """Absolute source line of ``node`` in the original file."""
        lineno = getattr(node, "lineno", 1)
        return self.first_lineno + lineno - 1

    def fresh_copy(self):
        """Deep copy of the tree plus its node index, for mutation."""
        tree = copy.deepcopy(self.tree)
        return tree, index_nodes(tree)


def index_nodes(tree):
    """Deterministic list of every node in ``tree`` (``ast.walk`` order)."""
    return list(ast.walk(tree))


def is_simple_constant_assign(stmt):
    """True for ``name = <constant>`` statements."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Constant)
    )


def init_block_length(fdef):
    """Length of the C89-style initialization prefix of a function body.

    The FIT coding style initializes every local in a block of constant
    assignments right after the docstring; this returns how many body
    statements belong to that block (docstring excluded from the count
    semantics: it is skipped, not counted).
    """
    body = fdef.body
    start = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        start = 1
    length = 0
    for stmt in body[start:]:
        if is_simple_constant_assign(stmt):
            length += 1
        else:
            break
    return start + length


def local_names(fdef):
    """Names bound inside the function: parameters plus assigned names."""
    names = [arg.arg for arg in fdef.args.args]
    seen = set(names)
    for node in ast.walk(fdef):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id not in seen:
                seen.add(node.id)
                names.append(node.id)
        elif isinstance(node, (ast.For,)) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id not in seen:
                seen.add(node.target.id)
                names.append(node.target.id)
    return names


def node_contains(node, node_types):
    """True when ``node``'s subtree contains any of ``node_types``."""
    for child in ast.walk(node):
        if isinstance(child, node_types):
            return True
    return False


def call_target_name(call):
    """Best-effort name of the function a ``Call`` node invokes."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_infra_call(call):
    """Calls operators must never touch (simulation accounting)."""
    name = call_target_name(call)
    return name in INFRA_CALL_NAMES
