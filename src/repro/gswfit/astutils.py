"""AST plumbing shared by the scanner and the mutator.

The central object is :class:`FunctionImage`: the parsed, indexed source of
one FIT function.  Nodes are addressed by their position in a deterministic
walk of the tree, so a site found during scanning can be relocated in a
fresh deep copy during mutation, and — because the walk only depends on the
source text — the same ``site_key`` resolves to the same construct across
processes and runs.
"""

import ast
import copy
import inspect
import textwrap

__all__ = [
    "FunctionImage",
    "index_nodes",
    "init_block_length",
    "is_simple_constant_assign",
    "local_names",
    "node_contains",
    "INFRA_CALL_NAMES",
]

# Calls that belong to the simulation's accounting machinery rather than to
# the OS logic being emulated; operators never target them (removing a CPU
# charge is not a representative software fault).
INFRA_CALL_NAMES = frozenset({"charge"})


class FunctionImage:
    """Parsed source of one module-level function.

    Attributes
    ----------
    function:
        The live function object (whose ``__code__`` injection will swap).
    module_name:
        Importable module path the function was taken from.
    source:
        Dedented source text of the function definition.
    tree:
        ``ast.Module`` containing exactly the function definition.
    fdef:
        The ``ast.FunctionDef`` node inside :attr:`tree`.
    first_lineno:
        Absolute line number of the ``def`` line in the original file.
    """

    def __init__(self, function, module_name=None):
        self.function = function
        self.module_name = module_name or function.__module__
        raw = inspect.getsource(function)
        self.source = textwrap.dedent(raw)
        self.tree = ast.parse(self.source)
        if not self.tree.body or not isinstance(
            self.tree.body[0], ast.FunctionDef
        ):
            raise ValueError(
                f"{function!r} does not parse to a single function def"
            )
        self.fdef = self.tree.body[0]
        self.first_lineno = function.__code__.co_firstlineno
        self._index = index_nodes(self.tree)

    def node_at(self, index):
        """Node at walk position ``index`` (scanner-time tree)."""
        return self._index[index]

    def index_of(self, node):
        """Walk position of ``node`` (identity comparison)."""
        for position, candidate in enumerate(self._index):
            if candidate is node:
                return position
        raise ValueError("node not part of this image")

    def absolute_lineno(self, node):
        """Absolute source line of ``node`` in the original file."""
        lineno = getattr(node, "lineno", 1)
        return self.first_lineno + lineno - 1

    def fresh_copy(self):
        """Deep copy of the tree plus its node index, for mutation."""
        tree = copy.deepcopy(self.tree)
        return tree, index_nodes(tree)


def index_nodes(tree):
    """Deterministic list of every node in ``tree`` (``ast.walk`` order)."""
    return list(ast.walk(tree))


def is_simple_constant_assign(stmt):
    """True for ``name = <constant>`` statements."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Constant)
    )


def init_block_length(fdef):
    """Length of the C89-style initialization prefix of a function body.

    The FIT coding style initializes every local in a block of constant
    assignments right after the docstring; this returns how many body
    statements belong to that block (docstring excluded from the count
    semantics: it is skipped, not counted).
    """
    body = fdef.body
    start = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        start = 1
    length = 0
    for stmt in body[start:]:
        if is_simple_constant_assign(stmt):
            length += 1
        else:
            break
    return start + length


def local_names(fdef):
    """Names bound inside the function: parameters plus assigned names."""
    names = [arg.arg for arg in fdef.args.args]
    seen = set(names)
    for node in ast.walk(fdef):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id not in seen:
                seen.add(node.id)
                names.append(node.id)
        elif isinstance(node, (ast.For,)) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id not in seen:
                seen.add(node.target.id)
                names.append(node.target.id)
    return names


def node_contains(node, node_types):
    """True when ``node``'s subtree contains any of ``node_types``."""
    for child in ast.walk(node):
        if isinstance(child, node_types):
            return True
    return False


def call_target_name(call):
    """Best-effort name of the function a ``Call`` node invokes."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_infra_call(call):
    """Calls operators must never touch (simulation accounting)."""
    name = call_target_name(call)
    return name in INFRA_CALL_NAMES
