"""SPECWeb99 fileset.

The workload fileset follows SPECWeb99's structure: a number of directories,
each holding four *classes* of files with nine files per class.  Class 0
files are hundreds of bytes, class 1 single-digit kilobytes, class 2 tens
of kilobytes, class 3 hundreds of kilobytes; with the standard class mix
(35/50/14/1) the mean transfer is ≈15 KB, which against the ~400 kbit/s
per-connection throttle yields the ~350 ms response times of the paper's
baseline rows.

The fileset also records each file's size and content identity so the
client can verify responses end-to-end (size *and* content fingerprint).
"""

from dataclasses import dataclass

__all__ = ["FilesetEntry", "SpecWebFileset"]

CLASS_COUNT = 4
FILES_PER_CLASS = 9

# Byte size of file ``index`` in class ``c`` is (index+1) * _CLASS_BASE[c].
_CLASS_BASE = (100, 1_000, 10_000, 100_000)

# SPECWeb99 class access mix (fraction of requests per class).
CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)

# Within-class access skew: files in the middle of the class are the most
# popular, as in SPECWeb99's access distribution.
WITHIN_CLASS_WEIGHTS = (2, 3, 4, 5, 6, 5, 4, 3, 2)


@dataclass(frozen=True)
class FilesetEntry:
    """Ground truth about one fileset file (used for validation)."""

    path: str
    size: int
    content_id: int


class SpecWebFileset:
    """The document tree one benchmark run serves.

    Parameters
    ----------
    directories:
        Number of ``dirNNNNN`` directories; SPECWeb99 scales this with the
        offered load, our scaled experiments keep it moderate.
    root:
        Document root inside the simulated file system.
    """

    def __init__(self, directories=8, root="/site"):
        if directories < 1:
            raise ValueError("directories must be >= 1")
        self.directories = directories
        self.root = root
        self.entries = {}
        self.post_target = "/postlog/form"

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    @staticmethod
    def file_name(class_index, file_index):
        return f"class{class_index}_{file_index}"

    def dir_name(self, dir_index):
        return f"dir{dir_index:05d}"

    def url_path(self, dir_index, class_index, file_index):
        return (
            f"/{self.dir_name(dir_index)}/"
            f"{self.file_name(class_index, file_index)}"
        )

    @staticmethod
    def file_size(class_index, file_index):
        return (file_index + 1) * _CLASS_BASE[class_index]

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def populate(self, vfs):
        """Create the full tree inside ``vfs`` and record ground truth."""
        self.entries = {}
        vfs.mkdir(self.root, parents=True)
        for dir_index in range(self.directories):
            dir_path = f"{self.root}/{self.dir_name(dir_index)}"
            vfs.mkdir(dir_path, parents=True)
            for class_index in range(CLASS_COUNT):
                for file_index in range(FILES_PER_CLASS):
                    name = self.file_name(class_index, file_index)
                    size = self.file_size(class_index, file_index)
                    node = vfs.create_file(f"{dir_path}/{name}", size=size)
                    if node is None:
                        raise RuntimeError(
                            f"could not create {dir_path}/{name}"
                        )
                    url = self.url_path(dir_index, class_index, file_index)
                    self.entries[url] = FilesetEntry(
                        path=url, size=size, content_id=node.content_id
                    )
        return self.entries

    def entry(self, url_path):
        """Ground truth for a URL path, or None."""
        return self.entries.get(url_path)

    def total_files(self):
        return self.directories * CLASS_COUNT * FILES_PER_CLASS

    def total_bytes(self):
        per_dir = sum(
            self.file_size(c, i)
            for c in range(CLASS_COUNT)
            for i in range(FILES_PER_CLASS)
        )
        return per_dir * self.directories

    def mean_transfer_bytes(self):
        """Expected response size under the class/file access mix."""
        within_total = sum(WITHIN_CLASS_WEIGHTS)
        mean = 0.0
        for class_index, class_weight in enumerate(CLASS_WEIGHTS):
            class_mean = sum(
                weight * self.file_size(class_index, file_index)
                for file_index, weight in enumerate(WITHIN_CLASS_WEIGHTS)
            ) / within_total
            mean += class_weight * class_mean
        return mean

    def __repr__(self):
        return (
            f"SpecWebFileset(dirs={self.directories}, "
            f"files={self.total_files()}, "
            f"mean={self.mean_transfer_bytes():.0f}B)"
        )
