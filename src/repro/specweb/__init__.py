"""SPECWeb99-like workload: fileset, client, conformance, metrics.

A faithful-in-shape port of the SPECWeb99 benchmark the paper extends:

* the fileset's directory/class structure and access skew
  (:mod:`repro.specweb.fileset`);
* the operation mix of static GETs, dynamic GETs and POSTs
  (:mod:`repro.specweb.workload`);
* N simultaneous connections, each throttled to last-mile speed, driving
  the server as fast as their bandwidth allows
  (:mod:`repro.specweb.client`);
* the conforming-connection rule — at least 320 kbit/s average bit rate
  and under 1% errors (:mod:`repro.specweb.conformance`);
* the reported measures SPC, CC%, THR, RTM and ER%
  (:mod:`repro.specweb.metrics`) and the run rules (warmup, ramp-up,
  three iterations — :mod:`repro.specweb.rules`).
"""

from repro.specweb.fileset import FilesetEntry, SpecWebFileset
from repro.specweb.workload import OperationKind, WorkloadGenerator
from repro.specweb.client import SpecWebClient
from repro.specweb.conformance import (
    CONFORMING_BITRATE_BPS,
    CONFORMING_MAX_ERROR_FRACTION,
    connection_conforms,
)
from repro.specweb.metrics import MetricsCollector, SpecWebMetrics
from repro.specweb.rules import RunRules

__all__ = [
    "CONFORMING_BITRATE_BPS",
    "CONFORMING_MAX_ERROR_FRACTION",
    "FilesetEntry",
    "MetricsCollector",
    "OperationKind",
    "RunRules",
    "SpecWebClient",
    "SpecWebFileset",
    "SpecWebMetrics",
    "WorkloadGenerator",
    "connection_conforms",
]
