"""The SPECWeb99-style client.

Drives ``connections`` simultaneous connections against one server.  Each
connection runs flat out — issue, wait for the (validated) response, think
a few milliseconds, issue again — but its transfers are throttled to a
last-mile rate drawn once per connection, so the *number of connections
the server can keep conforming* is the quantity under test, exactly as in
SPECWeb99.

Validation is end-to-end: a static GET must return the right status, the
right content length *and* the right content fingerprint; wrong bytes from
a mutated OS read are counted as errors even though the server said 200.
"""

from dataclasses import dataclass

from repro.ossim.vfs import SimBuffer
from repro.specweb.metrics import MetricsCollector, OpRecord
from repro.specweb.workload import OperationKind, WorkloadGenerator

__all__ = ["ClientConfig", "SpecWebClient"]


@dataclass
class ClientConfig:
    """Client-side knobs (paper testbed analogues)."""

    connections: int = 40
    # Long enough for the largest class-3 file at modem rates (~21 s).
    op_timeout: float = 30.0
    link_latency: float = 0.0002
    # Last-mile rate band: SPECWeb99 models connection speeds around
    # 400 kbit/s; the band straddles the 320 kbit/s conformance threshold
    # so server efficiency decides how many connections conform.
    min_rate_bps: int = 330_000
    max_rate_bps: int = 430_000
    think_min: float = 0.002
    think_max: float = 0.008
    refused_backoff: float = 0.55
    # After any failed operation the client closes and re-establishes the
    # connection (as the SPECWeb99 client does): TCP setup plus slow-start
    # before the next request.  Without this, tiny error pages let a
    # failing server absorb requests far faster than a healthy one serves
    # them, inflating both THR and ER%.
    error_backoff: float = 0.42


class _Responder:
    """Completion callback for one in-flight request.

    A class rather than a closure so that an in-flight request survives a
    machine snapshot: ``copy.deepcopy`` copies instances (re-aiming
    ``client``/``connection`` at the copied machine via the memo) but
    treats closures as atomic, which would leak the original machine into
    the copy's event queue.
    """

    __slots__ = ("client", "connection", "seq")

    def __init__(self, client, connection, seq):
        self.client = client
        self.connection = connection
        self.seq = seq

    def __call__(self, response):
        self.client._on_response(self.connection, self.seq, response)


class _Connection:
    __slots__ = ("index", "rate_bps", "generator", "op_seq", "pending",
                 "issued_at", "timeout_event", "idle", "ops", "errors")

    def __init__(self, index, rate_bps, generator):
        self.index = index
        self.rate_bps = rate_bps
        self.generator = generator
        self.op_seq = 0
        self.pending = None
        self.issued_at = 0.0
        self.timeout_event = None
        self.idle = True
        self.ops = 0
        self.errors = 0


class SpecWebClient:
    """N simultaneous connections against one transport."""

    def __init__(self, sim, transport, fileset, config=None, rng=None):
        self.sim = sim
        self.transport = transport
        self.fileset = fileset
        self.config = config or ClientConfig()
        self.rng = rng or sim.rng_for("specweb-client")
        self.collector = MetricsCollector(self.config.connections)
        self.running = False
        base_generator = WorkloadGenerator(
            fileset, self.rng.substream("workload")
        )
        self.connections = []
        for index in range(self.config.connections):
            rate = self.rng.substream("rate", index).uniform(
                self.config.min_rate_bps, self.config.max_rate_bps
            )
            self.connections.append(_Connection(
                index, rate, base_generator.for_connection(index)
            ))

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self):
        """Begin issuing requests (staggered to avoid a same-instant burst)."""
        self.running = True
        for connection in self.connections:
            if connection.idle:
                offset = 0.001 + 0.002 * connection.index
                connection.idle = False
                self.sim.schedule(offset, self._issue, connection)

    def pause(self):
        """Stop issuing new operations; in-flight ones finish or time out."""
        self.running = False

    def resume(self):
        """Continue after :meth:`pause`."""
        self.running = True
        for connection in self.connections:
            if connection.idle:
                connection.idle = False
                self.sim.schedule(0.001, self._issue, connection)

    # ------------------------------------------------------------------
    # Operation lifecycle
    # ------------------------------------------------------------------
    def _issue(self, connection):
        if not self.running:
            connection.idle = True
            return
        connection.op_seq += 1
        seq = connection.op_seq
        operation = connection.generator.next_operation(
            connection_id=connection.index, request_id=seq
        )
        connection.pending = operation
        connection.issued_at = self.sim.now
        request = operation.request
        request.issued_at = self.sim.now
        request_delay = (
            self.config.link_latency
            + request.wire_size() * 8.0 / connection.rate_bps
        )
        self.sim.schedule(
            request_delay, self.transport, request,
            _Responder(self, connection, seq),
        )
        connection.timeout_event = self.sim.schedule(
            self.config.op_timeout, self._on_timeout, connection, seq
        )

    def _on_response(self, connection, seq, response):
        if connection.op_seq != seq or connection.pending is None:
            return  # stale completion after a timeout
        if response is None:
            # Connection refused or reset by a dying server.
            self._finish(connection, seq, None, refused=True)
            return
        transfer = (
            self.config.link_latency
            + response.wire_size() * 8.0 / connection.rate_bps
        )
        self.sim.schedule(transfer, self._finish, connection, seq, response)

    def _finish(self, connection, seq, response, refused=False):
        if connection.op_seq != seq or connection.pending is None:
            return
        operation = connection.pending
        connection.pending = None
        if connection.timeout_event is not None:
            self.sim.cancel(connection.timeout_event)
            connection.timeout_event = None
        latency = self.sim.now - connection.issued_at
        if refused:
            self._record(connection, False, latency, 0, "refused")
            self.sim.schedule(
                self.config.refused_backoff, self._issue, connection
            )
            return
        ok, error_kind = self._validate(operation, response)
        nbytes = response.wire_size() if response is not None else 0
        self._record(connection, ok, latency, nbytes, error_kind)
        if ok:
            delay = self.rng.uniform(self.config.think_min,
                                     self.config.think_max)
        else:
            delay = self.config.error_backoff
        self.sim.schedule(delay, self._issue, connection)

    def _on_timeout(self, connection, seq):
        if connection.op_seq != seq or connection.pending is None:
            return
        connection.pending = None
        connection.timeout_event = None
        latency = self.sim.now - connection.issued_at
        self._record(connection, False, latency, 0, "timeout")
        self.sim.schedule(0.001, self._issue, connection)

    # ------------------------------------------------------------------
    # Validation and recording
    # ------------------------------------------------------------------
    def _validate(self, operation, response):
        if response is None:
            return False, "reset"
        if not response.ok:
            return False, f"status_{response.status_code}"
        if operation.kind == OperationKind.POST:
            return True, ""
        if response.content_length != operation.expected_size:
            return False, "length"
        if operation.kind == OperationKind.STATIC_GET:
            expected = SimBuffer.for_content(
                operation.expected_content_id, 0, operation.expected_size
            )
            if response.buffer is None or response.buffer != expected:
                return False, "content"
        return True, ""

    def _record(self, connection, ok, latency, nbytes, error_kind):
        connection.ops += 1
        if not ok:
            connection.errors += 1
        self.collector.record(OpRecord(
            completed_at=self.sim.now,
            connection_id=connection.index,
            ok=ok,
            latency=latency,
            bytes_received=nbytes,
            error_kind=error_kind,
        ))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_ops(self):
        """Operations completed (or failed) across all connections."""
        return sum(connection.ops for connection in self.connections)

    def total_errors(self):
        """Failed operations across all connections."""
        return sum(connection.errors for connection in self.connections)

    def __repr__(self):
        return (
            f"SpecWebClient(connections={len(self.connections)}, "
            f"ops={self.total_ops()}, errors={self.total_errors()})"
        )
