"""Benchmark run rules.

SPECWeb99 mandates a 1200 s warm-up, ramp-up/ramp-down intervals of 300 s
and at least three measured iterations of at least 1200 s each; the paper
keeps those rules and slices the measured time into fault-injection slots.
Running at full paper scale takes minutes of host CPU per iteration, so
:class:`RunRules` exposes the durations as data with two presets:
``paper()`` (the durations above) and ``scaled()`` (the default used by
tests and benches — same structure, compressed time).
"""

from dataclasses import dataclass

__all__ = ["RunRules"]


@dataclass(frozen=True)
class RunRules:
    """Timing structure of one benchmark run."""

    warmup_seconds: float = 20.0
    rampup_seconds: float = 5.0
    rampdown_seconds: float = 5.0
    iterations: int = 3
    # Fault-slot structure (Fig. 4 of the paper): each fault is active for
    # ``slot_seconds`` of exercised workload; between slots there is a
    # short injection-free, workload-free gap used for cleanup checks.
    slot_seconds: float = 10.0
    slot_gap_seconds: float = 2.0
    # Baseline/profile runs measure this much workload time per iteration.
    baseline_seconds: float = 120.0

    @classmethod
    def paper(cls):
        """The durations mandated by SPECWeb99 / used in the paper."""
        return cls(
            warmup_seconds=1200.0,
            rampup_seconds=300.0,
            rampdown_seconds=300.0,
            iterations=3,
            slot_seconds=10.0,
            slot_gap_seconds=2.0,
            baseline_seconds=1200.0,
        )

    @classmethod
    def scaled(cls, factor=1.0):
        """Compressed rules for laptop-scale runs (structure preserved)."""
        return cls(
            warmup_seconds=20.0 * factor,
            rampup_seconds=5.0 * factor,
            rampdown_seconds=5.0 * factor,
            iterations=3,
            slot_seconds=10.0,
            slot_gap_seconds=2.0,
            baseline_seconds=120.0 * factor,
        )
