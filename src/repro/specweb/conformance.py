"""The SPECWeb99 conforming-connection rule.

A simultaneous connection *conforms* during a measurement window when its
average bit rate is at least 320 kbit/s and less than 1% of its operations
errored.  The benchmark's headline number (SPC) is how many simultaneous
connections conform.
"""

__all__ = [
    "CONFORMING_BITRATE_BPS",
    "CONFORMING_MAX_ERROR_FRACTION",
    "connection_conforms",
]

CONFORMING_BITRATE_BPS = 320_000
CONFORMING_MAX_ERROR_FRACTION = 0.01


def connection_conforms(bytes_received, window_seconds, ops, errors,
                        bitrate_threshold=CONFORMING_BITRATE_BPS,
                        max_error_fraction=CONFORMING_MAX_ERROR_FRACTION):
    """Apply the conformance rule to one connection's window totals.

    A connection that performed no operations in the window cannot conform
    (it delivered no conforming service).
    """
    if ops <= 0 or window_seconds <= 0:
        return False
    if errors / ops >= max_error_fraction:
        return False
    bitrate = bytes_received * 8.0 / window_seconds
    return bitrate >= bitrate_threshold
