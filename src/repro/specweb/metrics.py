"""Measurement collection and the SPECWeb99-style measures.

Every completed (or timed-out) operation is recorded as one
:class:`OpRecord`; at the end of a run the records are sliced into the
measurement windows the harness defines (the injection slots, or fixed
windows for baseline runs) and reduced to the paper's measures:

* **SPC** — mean number of simultaneous conforming connections per window
  (the main SPECWeb99 figure);
* **CC%** — SPC as a percentage of the offered connections;
* **THR** — operations per second (every operation that completed, error
  responses included — an error page is still an HTTP operation);
* **RTM** — mean response time of successful operations, in milliseconds;
* **ER%** — percentage of operations that failed (bad status, bad
  content, connection refused/reset, or timeout).
"""

import bisect
from dataclasses import dataclass

from repro.specweb.conformance import connection_conforms

__all__ = [
    "MetricsCollector",
    "MetricsPartial",
    "OpRecord",
    "SpecWebMetrics",
]


@dataclass(frozen=True)
class OpRecord:
    """One finished operation as the client saw it."""

    completed_at: float
    connection_id: int
    ok: bool
    latency: float
    bytes_received: int
    error_kind: str = ""


@dataclass(frozen=True)
class SpecWebMetrics:
    """The reduced measures for one run."""

    spc: float
    cc_percent: float
    thr: float
    rtm_ms: float
    er_percent: float
    total_ops: int
    total_errors: int
    measured_seconds: float

    def as_dict(self):
        return {
            "SPC": self.spc,
            "CC%": self.cc_percent,
            "THR": self.thr,
            "RTM": self.rtm_ms,
            "ER%": self.er_percent,
            "ops": self.total_ops,
            "errors": self.total_errors,
            "seconds": self.measured_seconds,
        }

    def __str__(self):
        return (
            f"SPC={self.spc:.1f} CC%={self.cc_percent:.1f} "
            f"THR={self.thr:.1f} RTM={self.rtm_ms:.1f}ms "
            f"ER%={self.er_percent:.2f}"
        )


@dataclass(frozen=True)
class MetricsPartial:
    """Mergeable partial sums behind :class:`SpecWebMetrics`.

    A campaign shard reduces its own windows to one partial; summing the
    partials of all shards (in slot order) and converting the result is
    how a parallel campaign reproduces the measures of a serial one.
    Merging is associative over shard boundaries, so the worker count
    never changes the merged numbers — only the shard plan does.
    """

    total_ops: int = 0
    total_errors: int = 0
    latency_sum: float = 0.0
    latency_count: int = 0
    conforming_sum: float = 0.0
    group_count: int = 0
    measured_seconds: float = 0.0

    @classmethod
    def merge(cls, partials):
        """Sum partials (callers must pass them in slot order)."""
        total_ops = total_errors = latency_count = group_count = 0
        latency_sum = conforming_sum = measured_seconds = 0.0
        for partial in partials:
            total_ops += partial.total_ops
            total_errors += partial.total_errors
            latency_sum += partial.latency_sum
            latency_count += partial.latency_count
            conforming_sum += partial.conforming_sum
            group_count += partial.group_count
            measured_seconds += partial.measured_seconds
        return cls(
            total_ops=total_ops,
            total_errors=total_errors,
            latency_sum=latency_sum,
            latency_count=latency_count,
            conforming_sum=conforming_sum,
            group_count=group_count,
            measured_seconds=measured_seconds,
        )

    def to_metrics(self, num_connections):
        """Reduce the sums to :class:`SpecWebMetrics`."""
        spc = (
            self.conforming_sum / self.group_count if self.group_count
            else 0.0
        )
        thr = (
            self.total_ops / self.measured_seconds
            if self.measured_seconds > 0 else 0.0
        )
        rtm_ms = (
            1000.0 * self.latency_sum / self.latency_count
            if self.latency_count else 0.0
        )
        er_percent = (
            100.0 * self.total_errors / self.total_ops
            if self.total_ops else 0.0
        )
        cc_percent = 100.0 * spc / num_connections if num_connections else 0.0
        return SpecWebMetrics(
            spc=spc,
            cc_percent=cc_percent,
            thr=thr,
            rtm_ms=rtm_ms,
            er_percent=er_percent,
            total_ops=self.total_ops,
            total_errors=self.total_errors,
            measured_seconds=self.measured_seconds,
        )

    def to_dict(self):
        return {
            "total_ops": self.total_ops,
            "total_errors": self.total_errors,
            "latency_sum": self.latency_sum,
            "latency_count": self.latency_count,
            "conforming_sum": self.conforming_sum,
            "group_count": self.group_count,
            "measured_seconds": self.measured_seconds,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class MetricsCollector:
    """Accumulates operation records in completion order."""

    def __init__(self, num_connections):
        self.num_connections = num_connections
        self._times = []
        self._records = []
        self.error_kinds = {}

    def record(self, record):
        self._times.append(record.completed_at)
        self._records.append(record)
        if not record.ok:
            self.error_kinds[record.error_kind] = (
                self.error_kinds.get(record.error_kind, 0) + 1
            )

    def __len__(self):
        return len(self._records)

    def records_between(self, start, end):
        """Records with ``start < completed_at <= end`` (time-ordered)."""
        low = bisect.bisect_right(self._times, start)
        high = bisect.bisect_right(self._times, end)
        return self._records[low:high]

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def _window_bytes(self, windows):
        """Bytes per (window index, connection), spread over op spans.

        An operation's bytes flowed over its whole duration, not at the
        instant it completed; attributing them proportionally to each
        overlapped window keeps short measurement windows (the 10 s
        injection slots) from starving connections that were mid-transfer
        on a large class-3 file.
        """
        if not windows:
            return {}
        starts = [start for start, _end in windows]
        result = {}
        for record in self._records:
            if record.bytes_received <= 0:
                continue
            span_start = record.completed_at - record.latency
            span_end = record.completed_at
            duration = span_end - span_start
            if duration <= 1e-9:
                # Degenerate (instantaneous) op: all bytes land in the
                # window containing its completion instant.
                for window_index, (w_start, w_end) in enumerate(windows):
                    if w_start < record.completed_at <= w_end:
                        key = (window_index, record.connection_id)
                        result[key] = (
                            result.get(key, 0.0) + record.bytes_received
                        )
                        break
                continue
            # Windows are sorted; find the first that could overlap.
            index = bisect.bisect_right(starts, span_start) - 1
            index = max(0, index)
            for window_index in range(index, len(windows)):
                w_start, w_end = windows[window_index]
                if w_start >= span_end:
                    break
                overlap = min(w_end, span_end) - max(w_start, span_start)
                if overlap <= 0:
                    continue
                key = (window_index, record.connection_id)
                share = record.bytes_received * overlap / duration
                result[key] = result.get(key, 0.0) + share
        return result

    def compute(self, windows, conformance_group=1):
        """Reduce to :class:`SpecWebMetrics` over the given windows.

        ``windows`` is a list of ``(start, end)`` pairs in increasing
        order.  THR/RTM/ER% are computed over all windows; conformance
        (SPC) is evaluated per *group* of ``conformance_group``
        consecutive windows — SPECWeb99 judges conformance over whole
        measurement batches, so a single bad 10 s slot disqualifies the
        connections it hit for the batch it belongs to, as in the paper's
        collapsed SPCf numbers.  Gaps between windows never count toward
        a group's duration.  Groups without any completed operation are
        skipped (nothing was being measured there).
        """
        partial = self.compute_partial(
            windows, conformance_group=conformance_group
        )
        return partial.to_metrics(self.num_connections)

    def compute_partial(self, windows, conformance_group=1):
        """The mergeable sums behind :meth:`compute`.

        Campaign shard workers call this instead of :meth:`compute` so a
        parent process can merge shards before the final reduction.
        """
        total_ops = 0
        total_errors = 0
        latency_sum = 0.0
        latency_count = 0
        conforming_sum = 0.0
        group_count = 0
        measured_seconds = 0.0
        window_bytes = self._window_bytes(windows)
        group = max(1, int(conformance_group))
        for group_start in range(0, len(windows), group):
            group_windows = windows[group_start:group_start + group]
            group_seconds = 0.0
            per_connection = {}
            group_has_records = False
            for start, end in group_windows:
                group_seconds += end - start
                measured_seconds += end - start
                records = self.records_between(start, end)
                if records:
                    group_has_records = True
                for record in records:
                    total_ops += 1
                    if record.ok:
                        latency_sum += record.latency
                        latency_count += 1
                    else:
                        total_errors += 1
                    stats = per_connection.setdefault(
                        record.connection_id, [0, 0, 0.0]
                    )
                    stats[0] += 1
                    stats[1] += 0 if record.ok else 1
            # Fold the per-window byte shares into the group totals.
            for (w_index, connection_id), nbytes in window_bytes.items():
                if group_start <= w_index < group_start + len(group_windows):
                    stats = per_connection.setdefault(
                        connection_id, [0, 0, 0.0]
                    )
                    stats[2] += nbytes
            if not group_has_records:
                continue
            group_count += 1
            conforming = 0
            for ops, errors, nbytes in per_connection.values():
                if connection_conforms(nbytes, group_seconds, ops, errors):
                    conforming += 1
            conforming_sum += conforming
        return MetricsPartial(
            total_ops=total_ops,
            total_errors=total_errors,
            latency_sum=latency_sum,
            latency_count=latency_count,
            conforming_sum=conforming_sum,
            group_count=group_count,
            measured_seconds=measured_seconds,
        )
