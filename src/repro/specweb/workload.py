"""Operation mix and request generation.

SPECWeb99's workload is dominated by static GETs, with a quarter of the
operations fetching dynamically generated content and a small share of
POSTs (the "on-line registration" traffic).  Each generated request carries
its ground-truth expectation so the client can validate the response.
"""

import enum
from dataclasses import dataclass

from repro.specweb.fileset import (
    CLASS_COUNT,
    CLASS_WEIGHTS,
    FILES_PER_CLASS,
    WITHIN_CLASS_WEIGHTS,
)
from repro.webservers.http import HttpRequest

__all__ = ["OperationKind", "PlannedOperation", "WorkloadGenerator"]


class OperationKind(enum.Enum):
    """The three SPECWeb99 operation families."""

    STATIC_GET = "static_get"
    DYNAMIC_GET = "dynamic_get"
    POST = "post"


# Operation mix (SPECWeb99: 70% static, 25.1% dynamic GET variants, 4.9%
# POST — we fold the dynamic variants together).
OPERATION_MIX = (
    (OperationKind.STATIC_GET, 0.70),
    (OperationKind.DYNAMIC_GET, 0.25),
    (OperationKind.POST, 0.05),
)

POST_BODY_BYTES = 320
DYNAMIC_WRAPPER_BYTES = 128


@dataclass
class PlannedOperation:
    """A request plus what a correct response must look like."""

    request: HttpRequest
    kind: OperationKind
    expected_size: int
    expected_content_id: int  # 0 when content is not checkable (dynamic)


class WorkloadGenerator:
    """Draws operations according to the SPECWeb99 mix.

    Deterministic per (seed, connection): each connection owns a substream
    so the sequence of operations it issues never depends on other
    connections' progress.
    """

    def __init__(self, fileset, rng):
        self.fileset = fileset
        self.rng = rng
        self._kinds = [kind for kind, _weight in OPERATION_MIX]
        self._kind_weights = [weight for _kind, weight in OPERATION_MIX]
        self._class_indices = list(range(CLASS_COUNT))
        self._file_indices = list(range(FILES_PER_CLASS))

    def for_connection(self, connection_id):
        """A generator bound to one connection's random substream."""
        return WorkloadGenerator(
            self.fileset, self.rng.substream("connection", connection_id)
        )

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def _draw_file(self):
        class_index = self.rng.choices(
            self._class_indices, weights=CLASS_WEIGHTS
        )[0]
        file_index = self.rng.choices(
            self._file_indices, weights=WITHIN_CLASS_WEIGHTS
        )[0]
        dir_index = self.rng.randint(0, self.fileset.directories - 1)
        return self.fileset.url_path(dir_index, class_index, file_index)

    def next_operation(self, connection_id=0, request_id=0):
        """Generate the next :class:`PlannedOperation`."""
        kind = self.rng.choices(self._kinds,
                                weights=self._kind_weights)[0]
        if kind == OperationKind.POST:
            request = HttpRequest(
                "POST",
                self.fileset.post_target,
                body_size=POST_BODY_BYTES,
                connection_id=connection_id,
                request_id=request_id,
            )
            return PlannedOperation(
                request=request, kind=kind,
                expected_size=-1, expected_content_id=0,
            )
        path = self._draw_file()
        entry = self.fileset.entry(path)
        dynamic = kind == OperationKind.DYNAMIC_GET
        request = HttpRequest(
            "GET",
            path,
            query="gen=1" if dynamic else "",
            dynamic=dynamic,
            connection_id=connection_id,
            request_id=request_id,
        )
        if dynamic:
            expected = entry.size + DYNAMIC_WRAPPER_BYTES
            return PlannedOperation(
                request=request, kind=kind,
                expected_size=expected, expected_content_id=0,
            )
        return PlannedOperation(
            request=request, kind=kind,
            expected_size=entry.size,
            expected_content_id=entry.content_id,
        )
