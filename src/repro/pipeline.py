"""The end-to-end faultload-definition pipeline (the paper's methodology).

``build_tuned_faultload`` chains the three steps of Section 2:

1. scan the OS build with the G-SWFIT operator library (fault locations);
2. profile every benchmark target of the category under the benchmark
   workload and select the API functions all of them rely on;
3. restrict the faultload to those functions.

The result is the generic, domain-specific faultload the dependability
benchmark consumes — one per OS build, shared by every benchmark target.
"""

from repro.gswfit.scanner import scan_build
from repro.harness.experiment import profile_servers
from repro.ossim.builds import get_build
from repro.profiling.finetune import FineTuner
from repro.profiling.usage import UsageTable
from repro.webservers.registry import PROFILING_SERVERS

__all__ = ["FaultloadPipeline", "build_tuned_faultload"]


class FaultloadPipeline:
    """Stepwise faultload definition with inspectable intermediates."""

    def __init__(self, config, servers=PROFILING_SERVERS,
                 profile_seconds=None):
        self.config = config
        self.servers = list(servers)
        self.profile_seconds = profile_seconds
        self.build = get_build(config.os_codename)
        self.raw_faultload = None
        self.tracers = None
        self.usage_table = None
        self.tuner = None
        self.tuned = None

    def scan(self):
        """Step 1: G-SWFIT scanning of the OS build."""
        self.raw_faultload = scan_build(
            self.build,
            include_internal=self.config.include_internal_functions,
        )
        return self.raw_faultload

    def profile(self):
        """Step 2: trace API usage of every target under the workload."""
        self.tracers = profile_servers(
            self.config, self.servers, seconds=self.profile_seconds
        )
        self.usage_table = UsageTable.from_tracers(self.tracers)
        return self.usage_table

    def tune(self):
        """Step 3: restrict the faultload to the selected function set."""
        if self.raw_faultload is None:
            self.scan()
        if self.usage_table is None:
            self.profile()
        self.tuner = FineTuner(self.build)
        self.tuner.usage_table = self.usage_table
        self.tuned = self.tuner.tune(self.raw_faultload)
        return self.tuned

    def run(self):
        """All three steps; returns the tuned faultload."""
        return self.tune()


def build_tuned_faultload(config, servers=PROFILING_SERVERS,
                          profile_seconds=None):
    """One-call version of the methodology; returns the tuned faultload."""
    pipeline = FaultloadPipeline(
        config, servers=servers, profile_seconds=profile_seconds
    )
    return pipeline.run()
