"""repro — generic faultloads based on software faults (DSN 2004).

A full reproduction of Durães & Madeira's dependability-benchmarking
methodology: a G-SWFIT-style mutation engine over a simulated operating
system, four web servers as benchmark targets, a SPECWeb99-like workload,
and the harness that regenerates every table and figure of the paper.

Quickstart::

    from repro import ExperimentConfig, WebServerExperiment

    config = ExperimentConfig.scaled(server_name="apache",
                                     os_codename="nt50")
    experiment = WebServerExperiment(config)
    result = experiment.run_campaign()
    print(result.average_row())

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro._version import __version__
from repro.faults import (
    FaultLocation,
    FaultType,
    Faultload,
    fault_type_info,
    iter_fault_types,
)
from repro.gswfit import (
    FaultInjector,
    FitBoundaryError,
    scan_build,
    scan_function,
    scan_module,
)
from repro.harness import (
    BenchmarkResult,
    DependabilityMetrics,
    ExperimentConfig,
    ServerMachine,
    Watchdog,
    WebServerExperiment,
)
from repro.harness.experiment import profile_servers
from repro.ossim import NT50, NT51, get_build
from repro.pipeline import FaultloadPipeline, build_tuned_faultload
from repro.profiling import ApiCallTracer, FineTuner, UsageTable
from repro.specweb import RunRules, SpecWebFileset
from repro.webservers import (
    BENCHMARKED_SERVERS,
    PROFILING_SERVERS,
    create_server,
)

__all__ = [
    "ApiCallTracer",
    "BENCHMARKED_SERVERS",
    "BenchmarkResult",
    "DependabilityMetrics",
    "ExperimentConfig",
    "FaultInjector",
    "FaultLocation",
    "FaultType",
    "Faultload",
    "FaultloadPipeline",
    "FineTuner",
    "FitBoundaryError",
    "NT50",
    "NT51",
    "PROFILING_SERVERS",
    "RunRules",
    "ServerMachine",
    "SpecWebFileset",
    "UsageTable",
    "Watchdog",
    "WebServerExperiment",
    "__version__",
    "build_tuned_faultload",
    "create_server",
    "fault_type_info",
    "get_build",
    "iter_fault_types",
    "profile_servers",
    "scan_build",
    "scan_function",
    "scan_module",
]
