"""Plain-text table rendering for benchmark reports."""

__all__ = ["TableBuilder", "format_table"]


def _cell(value):
    if value is None:
        return "-"  # not measured (e.g. RES with auditing off)
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    table_rows = [[_cell(value) for value in row] for row in rows]
    header_cells = [str(header) for header in headers]
    widths = [len(cell) for cell in header_cells]
    for row in table_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(
        cell.ljust(width) for cell, width in zip(header_cells, widths)
    ))
    lines.append(separator)
    for row in table_rows:
        lines.append(" | ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


class TableBuilder:
    """Incremental table construction with a fluent interface."""

    def __init__(self, headers, title=None):
        self.headers = list(headers)
        self.title = title
        self.rows = []

    def add_row(self, *values):
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(values)}"
            )
        self.rows.append(list(values))
        return self

    def add_separator_row(self, fill=""):
        self.rows.append([fill] * len(self.headers))
        return self

    def render(self):
        return format_table(self.headers, self.rows, title=self.title)

    def to_csv(self):
        lines = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(_cell(value) for value in row))
        return "\n".join(lines)

    def __str__(self):
        return self.render()
