"""Result export: one benchmark campaign → a results directory.

Dependability benchmarks live or die by their reporting discipline: the
paper's Section 2 requires that results be reproducible by other teams,
which in practice means machine-readable artifacts, not terminal
scrollback.  ``export_campaign`` writes everything one run produced —
configuration, per-iteration rows, averages, derived dependability
metrics — as JSON and CSV into a directory another team can diff.
"""

import dataclasses
import json
import shutil
from pathlib import Path

from repro.harness.metrics import DependabilityMetrics
from repro.reporting.tables import TableBuilder

__all__ = [
    "export_campaign",
    "export_faultload_summary",
    "load_campaign_report",
]


def _metrics_dict(metrics):
    if metrics is None:
        return None
    if dataclasses.is_dataclass(metrics):
        return dataclasses.asdict(metrics)
    return dict(metrics)


def export_campaign(result, directory, config=None, manifest=None,
                    telemetry_path=None):
    """Write one :class:`~repro.harness.results.BenchmarkResult`.

    Produces in ``directory``:

    * ``campaign.json`` — everything, machine readable;
    * ``iterations.csv`` — the Table 5 rows;
    * ``summary.txt`` — the human-readable table;
    * ``run_manifest.json`` — when a
      :class:`~repro.harness.telemetry.RunManifest` is passed;
    * ``telemetry.jsonl`` — a copy of the supervision event stream,
      when ``telemetry_path`` names an existing file.

    Returns the list of written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    payload = {
        "server": result.server_name,
        "os": result.os_codename,
        "os_display": result.os_display,
        "baseline": _metrics_dict(result.baseline),
        "profile_mode": _metrics_dict(result.profile_mode),
        "iterations": [
            {
                "iteration": iteration.iteration,
                "row": iteration.as_row(),
                "faults_injected": iteration.faults_injected,
                "runtime_stats": iteration.runtime_stats,
                "incidents": iteration.incidents,
                "contaminated_slots": iteration.contaminated_slots,
                "reboots": iteration.reboots,
                "integrity_enabled": iteration.integrity_enabled,
                "activations": iteration.activations,
                "faults_activated": iteration.faults_activated,
                "slots_truncated": iteration.slots_truncated,
                "truncated_seconds": iteration.truncated_seconds,
                "activation_enabled": iteration.activation_enabled,
            }
            for iteration in result.iterations
        ],
        "average": result.average_row(),
        "degraded": result.degraded,
        "quarantine": result.quarantine,
        "sequential": result.sequential or {"enabled": False},
        "dependability": (
            DependabilityMetrics.from_results(result).as_dict()
            if (result.profile_mode or result.baseline)
            and result.iterations else None
        ),
    }
    if config is not None:
        payload["config"] = {
            "seed": config.seed,
            "connections": config.client.connections,
            "fault_sample": config.fault_sample,
            "slot_seconds": config.rules.slot_seconds,
            "iterations": config.rules.iterations,
        }
    json_path = directory / "campaign.json"
    json_path.write_text(json.dumps(payload, indent=2))
    written.append(json_path)

    table = TableBuilder(
        ["iteration", "SPC", "THR", "RTM", "ER%", "MIS", "KCP", "KNS",
         "RES", "ACT%"]
    )
    for iteration in result.iterations:
        row = iteration.as_row()
        act = row.get("ACT%")
        table.add_row(
            iteration.iteration, f"{row['SPC']:.2f}",
            f"{row['THR']:.2f}", f"{row['RTM']:.2f}",
            f"{row['ER%']:.2f}", row["MIS"], row["KCP"], row["KNS"],
            row["RES"], None if act is None else f"{act:.2f}",
        )
    csv_path = directory / "iterations.csv"
    csv_path.write_text(table.to_csv())
    written.append(csv_path)

    summary_path = directory / "summary.txt"
    summary_lines = [
        f"{result.server_name} on {result.os_display}",
        table.render(),
    ]
    average = result.average_row()
    if average:
        summary_lines.append(
            "average: " + ", ".join(
                f"{key}={value:.2f}" if value is not None
                else f"{key}=-"
                for key, value in average.items()
            )
        )
    sequential = result.sequential or {}
    if sequential.get("enabled"):
        saved = sequential.get("slots_saved_percent")
        saved_text = "n/a" if saved is None else f"{saved:.1f}%"
        summary_lines.append(
            f"slots saved: {sequential['slots_skipped']} of "
            f"{sequential['planned_slots']} planned slot(s) skipped "
            f"({saved_text}) — sequential sampling at ci-target "
            f"{sequential['ci_target']}, confidence "
            f"{sequential['ci_confidence']}"
        )
        from repro.reporting.report import sequential_strata_table
        summary_lines.append(sequential_strata_table(sequential).render())
    if result.degraded:
        summary_lines.append(
            f"DEGRADED: {len(result.quarantine)} shard(s) quarantined "
            "— metrics cover the surviving slots only"
        )
    summary_path.write_text("\n".join(summary_lines) + "\n")
    written.append(summary_path)

    if manifest is not None:
        written.append(manifest.write(directory / "run_manifest.json"))
    if telemetry_path is not None and Path(telemetry_path).exists():
        telemetry_copy = directory / "telemetry.jsonl"
        shutil.copyfile(telemetry_path, telemetry_copy)
        written.append(telemetry_copy)
    return written


def load_campaign_report(directory):
    """Read an :func:`export_campaign` directory back as one document.

    Combines ``campaign.json`` with the run manifest (when present), so
    a consumer — the service daemon's ``/report`` endpoint, a results
    dashboard — gets the metrics *and* the identity that certifies them
    (campaign key, metrics digest) in a single JSON object.  Raises
    :class:`FileNotFoundError` when the directory holds no export.
    """
    directory = Path(directory)
    campaign_path = directory / "campaign.json"
    if not campaign_path.exists():
        raise FileNotFoundError(f"no campaign export in {directory}")
    report = json.loads(campaign_path.read_text(encoding="utf-8"))
    manifest_path = directory / "run_manifest.json"
    if manifest_path.exists():
        report["manifest"] = json.loads(
            manifest_path.read_text(encoding="utf-8")
        )
    return report


def export_faultload_summary(faultload, directory):
    """Write a faultload's JSON plus a per-type/per-function summary."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    faultload_path = directory / "faultload.json"
    faultload.save(faultload_path)
    written.append(faultload_path)

    from repro.gswfit.operators import operator_provenance

    counts = faultload.counts_by_type()
    summary = {
        "name": faultload.name,
        "os": faultload.os_codename,
        "total": len(faultload),
        "by_type": {
            fault_type.value: count
            for fault_type, count in counts.items()
        },
        "operator_provenance": {
            fault_type.value: operator_provenance(fault_type)
            for fault_type in counts
        },
        "by_function": {
            f"{module}!{function}": count
            for (module, function), count
            in sorted(faultload.counts_by_function().items())
        },
    }
    summary_path = directory / "faultload_summary.json"
    summary_path.write_text(json.dumps(summary, indent=2))
    written.append(summary_path)
    return written
