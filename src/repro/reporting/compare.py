"""Shape comparison against the paper's claims.

The reproduction runs on a simulator, so absolute numbers differ from the
paper's testbed; what must hold is the *shape* — who wins, in which
direction, and roughly by what kind of factor.  Each claim is encoded as a
:class:`ShapeCheck`; the benches print and assert them.
"""

from dataclasses import dataclass

from repro.faults.types import FaultType

__all__ = [
    "ShapeCheck",
    "compare_shape",
    "table3_shape_checks",
    "table4_shape_checks",
    "table5_shape_checks",
]


@dataclass(frozen=True)
class ShapeCheck:
    """One claim from the paper and whether the reproduction satisfies it."""

    name: str
    passed: bool
    detail: str

    def __str__(self):
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def compare_shape(checks):
    """Summarize checks; returns (all_passed, rendered_report)."""
    lines = [str(check) for check in checks]
    passed = all(check.passed for check in checks)
    lines.append(
        f"=> {sum(c.passed for c in checks)}/{len(checks)} shape claims hold"
    )
    return passed, "\n".join(lines)


# ----------------------------------------------------------------------
# Table 3 — faultload shape
# ----------------------------------------------------------------------

def table3_shape_checks(counts_w2k, counts_xp, total_w2k, total_xp):
    """Shape claims of Table 3.

    * the XP-analogue faultload is substantially larger (paper: 1.71x);
    * MIA is the most frequent type on both builds;
    * MVAV and WAEP are among the rarest types on both builds.
    """
    checks = []
    ratio = total_xp / total_w2k if total_w2k else 0.0
    checks.append(ShapeCheck(
        "XP faultload larger than Win2000",
        1.2 <= ratio,
        f"ratio {ratio:.2f} (paper: 1.71)",
    ))
    for label, counts in (("Win2000", counts_w2k), ("WinXP", counts_xp)):
        top = max(counts, key=counts.get)
        checks.append(ShapeCheck(
            f"MIA most frequent on {label}",
            top == FaultType.MIA,
            f"top type {top.value} ({counts[top]})",
        ))
        bottom3 = sorted(counts, key=counts.get)[:3]
        rare_ok = (FaultType.MVAV in bottom3) and (FaultType.WAEP in bottom3)
        checks.append(ShapeCheck(
            f"MVAV and WAEP among rarest on {label}",
            rare_ok,
            f"bottom 3: {[ft.value for ft in bottom3]}",
        ))
    return checks


# ----------------------------------------------------------------------
# Table 4 — intrusiveness shape
# ----------------------------------------------------------------------

def table4_shape_checks(degradations_percent, limit=5.0):
    """All profile-mode degradations stay small (paper: worst 1.96%)."""
    checks = []
    for combo, degradation in degradations_percent.items():
        checks.append(ShapeCheck(
            f"low intrusiveness for {combo}",
            abs(degradation) <= limit,
            f"degradation {degradation:.2f}% (paper worst case: 1.96%)",
        ))
    return checks


# ----------------------------------------------------------------------
# Table 5 / Figure 5 — the headline comparison
# ----------------------------------------------------------------------

def table5_shape_checks(metrics_by_combo):
    """The paper's comparison claims.

    ``metrics_by_combo`` maps (os_codename, server_name) to a
    :class:`~repro.harness.metrics.DependabilityMetrics`.  Checked per OS:

    * Apache's error rate under faults is lower than Abyss's;
    * Apache keeps a larger fraction of its baseline SPC;
    * Abyss dies without self-restart more often (MIS);
    * Apache needs no more administrator interventions than Abyss;
    * throughput under faults stays within ~25% of baseline for both;
    * and the Apache-over-Abyss ordering is the same on both OSes
      (the portability argument).
    """
    checks = []
    oses = sorted({os_name for os_name, _server in metrics_by_combo})
    winners = {}
    for os_name in oses:
        apache = metrics_by_combo[(os_name, "apache")]
        abyss = metrics_by_combo[(os_name, "abyss")]
        checks.append(ShapeCheck(
            f"[{os_name}] Apache ER%f < Abyss ER%f",
            apache.erf_percent < abyss.erf_percent,
            f"{apache.erf_percent:.2f} vs {abyss.erf_percent:.2f} "
            f"(paper: 7.7 vs 21.9 on W2k)",
        ))
        checks.append(ShapeCheck(
            f"[{os_name}] Apache keeps more of its SPC",
            apache.spc_relative > abyss.spc_relative,
            f"{apache.spc_relative:.2f} vs {abyss.spc_relative:.2f} "
            f"(paper: 0.36 vs 0.27 on W2k)",
        ))
        checks.append(ShapeCheck(
            f"[{os_name}] Abyss MIS > Apache MIS",
            abyss.mis > apache.mis,
            f"{abyss.mis:.1f} vs {apache.mis:.1f} "
            f"(paper: 130.3 vs 60 on W2k)",
        ))
        checks.append(ShapeCheck(
            f"[{os_name}] Apache ADMf <= Abyss ADMf",
            apache.admf <= abyss.admf,
            f"{apache.admf:.1f} vs {abyss.admf:.1f} "
            f"(paper: 130 vs 169 on W2k)",
        ))
        for server, metrics in (("apache", apache), ("abyss", abyss)):
            checks.append(ShapeCheck(
                f"[{os_name}] {server} THR under faults stays high",
                metrics.thr_relative >= 0.75,
                f"THRf/THR = {metrics.thr_relative:.2f} "
                f"(paper: ~0.95)",
            ))
        winners[os_name] = (
            "apache" if apache.erf_percent < abyss.erf_percent else "abyss"
        )
    if len(oses) >= 2:
        stable = len(set(winners.values())) == 1
        checks.append(ShapeCheck(
            "winner stable across OS builds (portability)",
            stable,
            f"winner per OS: {winners}",
        ))
    return checks
