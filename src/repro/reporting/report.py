"""Builders that turn measured data into the paper's tables and figure.

Each function mirrors one exhibit of the paper; the benches print these
next to the published values recorded in :mod:`repro.reporting.paper`.
"""

from repro.faults.fielddata import total_field_coverage
from repro.faults.types import fault_type_info, iter_fault_types
from repro.reporting.tables import TableBuilder

__all__ = [
    "figure5_series",
    "sequential_strata_table",
    "table1_fault_types",
    "table2_api_usage",
    "table3_faultload_details",
    "table4_intrusiveness",
    "table5_results",
]


def table1_fault_types():
    """Table 1: fault types, descriptions, field coverage, ODC types.

    A Provenance column records whether each type's operator is a
    built-in Table 1 class or a DSL spec (a re-expression or a new
    dynamic fault type) — dynamic types appear after the twelve.
    """
    from repro.gswfit.operators import operator_provenance

    table = TableBuilder(
        ["Fault type", "Description", "Fault coverage", "ODC type",
         "Provenance"],
        title="Table 1 - Representativity of the fault types",
    )
    for fault_type in iter_fault_types():
        info = fault_type_info(fault_type)
        table.add_row(
            fault_type.value,
            info.description,
            f"{info.field_coverage_percent:.2f} %",
            info.odc_type.value,
            operator_provenance(fault_type),
        )
    table.add_row("", "Total faults coverage",
                  f"{total_field_coverage():.2f} %", "", "")
    return table


def table2_api_usage(usage_table, negligible_percent=0.1):
    """Table 2: relevant API calls with per-server usage percentages."""
    targets = usage_table.target_names
    headers = ["Function name", "Module"] + list(targets) + ["Average"]
    table = TableBuilder(headers, title="Table 2 - Relevant API calls")
    for row in usage_table.select_relevant(negligible_percent):
        cells = [row.function, row.module]
        cells.extend(
            f"{row.per_target.get(target, 0.0):.2f}" for target in targets
        )
        cells.append(f"{row.average():.2f}")
        table.add_row(*cells)
    coverage = usage_table.total_call_coverage(negligible_percent)
    table.add_row("Total call coverage", "", *([""] * len(targets)),
                  f"{coverage:.2f}")
    return table


def table3_faultload_details(faultloads_by_os):
    """Table 3: number of faults per fault type per OS build.

    ``faultloads_by_os`` maps an OS display name to its (fine-tuned)
    faultload.
    """
    headers = ["OS"] + [ft.value for ft in iter_fault_types()] + ["Total"]
    table = TableBuilder(headers, title="Table 3 - Faultload details")
    for os_name, faultload in faultloads_by_os.items():
        counts = faultload.counts_by_type()
        cells = [os_name]
        cells.extend(counts[ft] for ft in iter_fault_types())
        cells.append(len(faultload))
        table.add_row(*cells)
    return table


def _degradation_percent(reference, value, inverted=False):
    if reference == 0:
        return 0.0
    change = 100.0 * (reference - value) / reference
    return -change if inverted else change


def table4_intrusiveness(results_by_combo):
    """Table 4: max performance vs profile mode, with degradation.

    ``results_by_combo`` maps (os_display, server_name) to a pair of
    :class:`~repro.specweb.metrics.SpecWebMetrics` — (max_perf, profile).
    """
    table = TableBuilder(
        ["OS", "Server", "Row", "SPC", "CC%", "THR", "RTM"],
        title="Table 4 - Performance degradation and intrusion evaluation",
    )
    for (os_name, server), (max_perf, profile) in results_by_combo.items():
        table.add_row(os_name, server, "Max. Perf.",
                      f"{max_perf.spc:.1f}", f"{max_perf.cc_percent:.1f}",
                      f"{max_perf.thr:.1f}", f"{max_perf.rtm_ms:.1f}")
        table.add_row(os_name, server, "Profile mode",
                      f"{profile.spc:.1f}", f"{profile.cc_percent:.1f}",
                      f"{profile.thr:.1f}", f"{profile.rtm_ms:.1f}")
        table.add_row(
            os_name, server, "Degradation (%)",
            f"{_degradation_percent(max_perf.spc, profile.spc):.2f}",
            f"{_degradation_percent(max_perf.cc_percent, profile.cc_percent):.2f}",
            f"{_degradation_percent(max_perf.thr, profile.thr):.2f}",
            f"{_degradation_percent(max_perf.rtm_ms, profile.rtm_ms, inverted=True):.2f}",
        )
    return table


def table5_results(results_by_combo):
    """Table 5: per-iteration and averaged injection results.

    ``results_by_combo`` maps (os_display, server_name) to a
    :class:`~repro.harness.results.BenchmarkResult`.
    """
    table = TableBuilder(
        ["OS", "Server", "Row", "SPC", "THR", "RTM", "ER%",
         "MIS", "KCP", "KNS", "RES", "ACT%"],
        title="Table 5 - Experimental results",
    )

    def _percent(value):
        return None if value is None else f"{value:.1f}"

    for (os_name, server), result in results_by_combo.items():
        reference = result.profile_mode or result.baseline
        if reference is not None:
            # RES and ACT% are "-" for the baseline row: no faults, so
            # neither audits nor activations exist.
            table.add_row(os_name, server, "Baseline Perf.",
                          f"{reference.spc:.1f}", f"{reference.thr:.1f}",
                          f"{reference.rtm_ms:.1f}", "0", "0", "0", "0",
                          None, None)
        for iteration in result.iterations:
            row = iteration.as_row()
            table.add_row(
                os_name, server, f"Iteration {iteration.iteration}",
                f"{row['SPC']:.1f}", f"{row['THR']:.1f}",
                f"{row['RTM']:.1f}", f"{row['ER%']:.1f}",
                str(row["MIS"]), str(row["KCP"]), str(row["KNS"]),
                row["RES"], _percent(row.get("ACT%")),
            )
        average = result.average_row()
        if average:
            table.add_row(
                os_name, server, "Average (all iter)",
                f"{average['SPC']:.1f}", f"{average['THR']:.1f}",
                f"{average['RTM']:.1f}", f"{average['ER%']:.1f}",
                f"{average['MIS']:.1f}", f"{average['KCP']:.1f}",
                f"{average['KNS']:.1f}", average.get("RES"),
                _percent(average.get("ACT%")),
            )
    return table


def sequential_strata_table(sequential):
    """Per-stratum stopping summary of a sequential campaign.

    ``sequential`` is the manifest's ``sequential`` block (or
    ``BenchmarkResult.sequential``).  One row per (iteration, stratum)
    with the executed/planned slot counts, the stop reason, and each
    tracked metric as ``mean ±half-width`` — "-" for an interval that
    never became defined (a stratum of fewer than two batches).
    """
    metric_columns = ["SPCf", "THRf", "RTMf", "ADMf", "ER%f"]
    table = TableBuilder(
        ["Iter", "Fault type", "Slots", "Planned", "Stop reason"]
        + [f"{metric} (CI±)" for metric in metric_columns],
        title="Sequential sampling - per-stratum stopping summary",
    )

    def _interval(stratum, metric):
        mean = stratum.get("means", {}).get(metric)
        width = stratum.get("half_widths", {}).get(metric)
        if mean is None:
            return None
        if width is None:
            return f"{mean:.2f} ±-"
        return f"{mean:.2f} ±{width:.2f}"

    for number, iteration in enumerate(
            sequential.get("per_iteration", []), start=1):
        for stratum in iteration.get("strata", []):
            table.add_row(
                str(number),
                stratum["fault_type"],
                str(stratum["executed_slots"]),
                str(stratum["planned_slots"]),
                stratum.get("stop_reason") or "-",
                *[_interval(stratum, metric)
                  for metric in metric_columns],
            )
    return table


def figure5_series(dependability_by_combo):
    """Figure 5: the comparison series, as plottable data.

    ``dependability_by_combo`` maps (os_display, server_name) to a
    :class:`~repro.harness.metrics.DependabilityMetrics`.  Returns a dict
    of series name -> {combo: value}, matching the panels of the paper's
    figure (baseline vs faulty SPC/THR/RTM, ER%f, ADMf and its parts).
    """
    series = {
        "SPC_baseline": {}, "SPCf": {},
        "THR_baseline": {}, "THRf": {},
        "RTM_baseline": {}, "RTMf": {},
        "ER%f": {}, "ADMf": {},
        "MIS": {}, "KNS": {}, "KCP": {},
    }
    for combo, metrics in dependability_by_combo.items():
        series["SPC_baseline"][combo] = metrics.spc_baseline
        series["SPCf"][combo] = metrics.spcf
        series["THR_baseline"][combo] = metrics.thr_baseline
        series["THRf"][combo] = metrics.thrf
        series["RTM_baseline"][combo] = metrics.rtm_baseline_ms
        series["RTMf"][combo] = metrics.rtmf_ms
        series["ER%f"][combo] = metrics.erf_percent
        series["ADMf"][combo] = metrics.admf
        series["MIS"][combo] = metrics.mis
        series["KNS"][combo] = metrics.kns
        series["KCP"][combo] = metrics.kcp
    return series
