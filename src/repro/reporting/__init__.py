"""Reporting: tables, figure series, and paper-vs-measured comparisons."""

from repro.reporting.tables import TableBuilder, format_table
from repro.reporting.paper import PAPER
from repro.reporting.report import (
    table1_fault_types,
    table2_api_usage,
    table3_faultload_details,
    table4_intrusiveness,
    table5_results,
    figure5_series,
)
from repro.reporting.compare import ShapeCheck, compare_shape
from repro.reporting.export import (
    export_campaign,
    export_faultload_summary,
)
from repro.reporting.figures import bar_chart, figure5_panels

__all__ = [
    "PAPER",
    "ShapeCheck",
    "TableBuilder",
    "bar_chart",
    "compare_shape",
    "export_campaign",
    "export_faultload_summary",
    "figure5_panels",
    "figure5_series",
    "format_table",
    "table1_fault_types",
    "table2_api_usage",
    "table3_faultload_details",
    "table4_intrusiveness",
    "table5_results",
]
