"""Plain-text figure rendering.

The paper's Figure 5 is a panel of bar charts; the bench regenerates the
numbers, and this module renders them as aligned ASCII bars so the
comparison is *visible* in terminal output and in committed bench logs.
"""

__all__ = ["bar_chart", "figure5_panels"]

_BAR_WIDTH = 40


def bar_chart(title, values, width=_BAR_WIDTH, unit=""):
    """Render one labelled bar chart.

    ``values`` is an ordered mapping label -> number.  Bars are scaled to
    the maximum value; zero/negative values render as empty bars.
    """
    lines = [title]
    if not values:
        lines.append("  (no data)")
        return "\n".join(lines)
    peak = max(max(values.values()), 0.0)
    label_width = max(len(str(label)) for label in values)
    for label, value in values.items():
        if peak > 0 and value > 0:
            filled = max(1, round(width * value / peak))
        else:
            filled = 0
        bar = "#" * filled
        lines.append(
            f"  {str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.1f}{unit}"
        )
    return "\n".join(lines)


def figure5_panels(series, combos=None):
    """Render the Figure 5 panels from
    :func:`repro.reporting.report.figure5_series` output."""
    if combos is None:
        combos = list(next(iter(series.values())))
    panels = []
    panel_specs = [
        ("SPC: baseline vs faultload",
         [("SPC_baseline", " base"), ("SPCf", " fault")], ""),
        ("THR: baseline vs faultload",
         [("THR_baseline", " base"), ("THRf", " fault")], " ops/s"),
        ("RTM: baseline vs faultload",
         [("RTM_baseline", " base"), ("RTMf", " fault")], " ms"),
        ("ER%f (error rate under faults)", [("ER%f", "")], " %"),
        ("ADMf (administrator interventions)", [("ADMf", "")], ""),
    ]
    for title, rows, unit in panel_specs:
        values = {}
        for combo in combos:
            combo_label = "/".join(str(part) for part in combo)
            for series_name, suffix in rows:
                values[f"{combo_label}{suffix}"] = (
                    series[series_name][combo]
                )
        panels.append(bar_chart(title, values, unit=unit))
    return "\n\n".join(panels)
