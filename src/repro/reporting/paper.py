"""The paper's published numbers, for shape comparison.

These are the values printed in Durães & Madeira, DSN 2004 ("Generic
Faultloads Based on Software Faults for Dependability Benchmarking").  The
reproduction is not expected to match them absolutely — the substrate here
is a simulator, not the authors' two-machine Windows testbed — but the
*shape* claims derived from them are checked by the benches.
"""

__all__ = ["PAPER"]

PAPER = {
    # Table 1 — fault type field coverage (percent of all field faults).
    "table1": {
        "MVI": 2.25, "MVAV": 2.25, "MVAE": 3.0, "MIA": 4.32,
        "MLAC": 7.89, "MFC": 8.64, "MIFS": 9.96, "MLPC": 3.19,
        "WVAV": 2.44, "WLEC": 3.0, "WAEP": 2.25, "WPFV": 1.5,
        "total": 50.69,
    },
    # Table 2 — the function set selected by profiling, with the average
    # share of all API calls each carries, and the total call coverage.
    "table2": {
        "functions": {
            ("Ntdll", "NtClose"): 1.9,
            ("Ntdll", "NtCreateFile"): 0.43,
            ("Ntdll", "NtOpenFile"): 0.9,
            ("Ntdll", "NtProtectVirtualMemory"): 2.95,
            ("Ntdll", "NtQueryVirtualMemory"): 1.43,
            ("Ntdll", "NtReadFile"): 2.28,
            ("Ntdll", "NtWriteFile"): 0.4,
            ("Ntdll", "RtlAllocateHeap"): 13.5,
            ("Ntdll", "RtlDosPathNameToNtPathName_U"): 1.55,
            ("Ntdll", "RtlEnterCriticalSection"): 2.43,
            ("Ntdll", "RtlFreeHeap"): 18.4,
            ("Ntdll", "RtlFreeUnicodeString"): 0.65,
            ("Ntdll", "RtlInitAnsiString"): 0.9,
            ("Ntdll", "RtlInitUnicodeString"): 3.23,
            ("Ntdll", "RtlLeaveCriticalSection"): 2.43,
            ("Ntdll", "RtlUnicodeToMultiByteN"): 11.35,
            ("Kernel32", "CloseHandle"): 0.78,
            ("Kernel32", "GetLongPathNameW"): 0.1,
            ("Kernel32", "ReadFile"): 2.2,
            ("Kernel32", "SetFilePointer"): 0.15,
            ("Kernel32", "WriteFile"): 0.38,
        },
        "total_call_coverage": 68.34,
        "profiled_servers": ["Apache", "Abyss", "Samba", "Savant"],
    },
    # Table 3 — faults per type per OS build.
    "table3": {
        "win2000": {
            "MVI": 149, "MVAV": 4, "MVAE": 129, "MIA": 497, "MLAC": 147,
            "MFC": 392, "MIFS": 200, "MLPC": 50, "WVAV": 33, "WLEC": 71,
            "WAEP": 11, "WPFV": 31, "total": 1714,
        },
        "winxp": {
            "MVI": 192, "MVAV": 5, "MVAE": 117, "MIA": 899, "MLAC": 253,
            "MFC": 629, "MIFS": 471, "MLPC": 94, "WVAV": 59, "WLEC": 163,
            "WAEP": 11, "WPFV": 34, "total": 2927,
        },
    },
    # Table 4 — max performance vs profile mode (intrusiveness).
    # Keys: (os, server) -> {metric: (max_perf, profile_mode)}.
    "table4": {
        ("win2000", "apache"): {
            "SPC": (37, 37), "CC%": (100, 100),
            "THR": (104.2, 103.0), "RTM": (354.2, 358.1),
        },
        ("win2000", "abyss"): {
            "SPC": (34, 34), "CC%": (100, 100),
            "THR": (95.9, 95.3), "RTM": (355.5, 358.1),
        },
        ("winxp", "apache"): {
            "SPC": (34, 34), "CC%": (100, 100),
            "THR": (93.9, 92.9), "RTM": (361.2, 365.5),
        },
        ("winxp", "abyss"): {
            "SPC": (33, 33), "CC%": (100, 100),
            "THR": (93.7, 92.0), "RTM": (352.5, 359.4),
        },
        "worst_degradation_percent": 1.96,
    },
    # Table 5 — averages over the three iterations (plus baselines).
    # Keys: (os, server) -> row.
    "table5": {
        ("win2000", "apache"): {
            "SPC_baseline": 37, "THR_baseline": 103.0,
            "RTM_baseline": 358.1,
            "SPC": 13.4, "THR": 98.1, "RTM": 367.2, "ER%": 7.7,
            "MIS": 60, "KCP": 1, "KNS": 69,
        },
        ("win2000", "abyss"): {
            "SPC_baseline": 34, "THR_baseline": 95.3,
            "RTM_baseline": 358.1,
            "SPC": 9.1, "THR": 91.5, "RTM": 363.2, "ER%": 21.9,
            "MIS": 130.3, "KCP": 0, "KNS": 38.7,
        },
        ("winxp", "apache"): {
            "SPC_baseline": 34, "THR_baseline": 92.9,
            "RTM_baseline": 365.5,
            "SPC": 13.7, "THR": 90.0, "RTM": 370.8, "ER%": 5.7,
            "MIS": 85, "KCP": 1, "KNS": 103,
        },
        ("winxp", "abyss"): {
            "SPC_baseline": 33, "THR_baseline": 92.0,
            "RTM_baseline": 359.4,
            "SPC": 8.9, "THR": 88.6, "RTM": 364.3, "ER%": 14.5,
            "MIS": 163.3, "KCP": 0, "KNS": 59.3,
        },
    },
    # Experiment scale facts quoted in the text.
    "facts": {
        "slot_seconds": 10,
        "iterations": 3,
        "faultload_generation_minutes": 5,
        "profiling_minutes_per_server": 100,
        "full_experiment_hours": 24,
    },
}
