"""Faultload fine-tuning (Section 2.4 of the paper).

Restricts a raw scanned faultload to the locations inside the API functions
selected by cross-target profiling.  Internal helper functions of a module
stay in the faultload whenever at least one of the module's selected
exports exists — at machine-code level that helper code *is* part of the
selected services (called or inlined subroutines), so excluding it would
under-approximate the injectable surface.
"""

from repro.profiling.usage import DEFAULT_NEGLIGIBLE_PERCENT, UsageTable

__all__ = ["FineTuner", "tuned_faultload"]


def tuned_faultload(raw_faultload, selected_functions, build):
    """Restrict ``raw_faultload`` to ``selected_functions`` (+ helpers)."""
    allowed = set(selected_functions)
    for _display, module in build.modules:
        exports = set(module.__exports__)
        if exports & allowed:
            allowed |= set(getattr(module, "__internal__", []))
    return raw_faultload.restrict_to_functions(allowed)


class FineTuner:
    """End-to-end fine-tuning: tracers in, tuned faultload out."""

    def __init__(self, build,
                 negligible_percent=DEFAULT_NEGLIGIBLE_PERCENT):
        self.build = build
        self.negligible_percent = negligible_percent
        self.usage_table = None

    def analyze(self, tracers):
        """Build the usage table from ``{target_name: tracer}``."""
        self.usage_table = UsageTable.from_tracers(tracers)
        return self.usage_table

    def selected_functions(self):
        if self.usage_table is None:
            raise RuntimeError("call analyze() before selected_functions()")
        return self.usage_table.selected_function_names(
            self.negligible_percent
        )

    def tune(self, raw_faultload):
        """Apply the selection to a raw faultload."""
        return tuned_faultload(
            raw_faultload, self.selected_functions(), self.build
        )
