"""Profiling and faultload fine-tuning.

Implements Section 2.4 / 3.3 of the paper: trace the OS API calls each
benchmark target makes under the benchmark workload, keep the functions
that (a) every target of the category uses and (b) carry a non-negligible
share of the calls, and restrict the faultload to locations inside that
function set.  The selection maximizes fault activation while keeping the
experiment time bounded, and using the *intersection* across targets keeps
the benchmark fair.
"""

from repro.profiling.tracer import ApiCallTracer
from repro.profiling.usage import UsageRow, UsageTable
from repro.profiling.finetune import FineTuner, tuned_faultload

__all__ = [
    "ApiCallTracer",
    "FineTuner",
    "UsageRow",
    "UsageTable",
    "tuned_faultload",
]
