"""Cross-target API usage analysis (the paper's Table 2).

Combines the per-target tracers into one table of usage percentages, then
applies the two selection rules of the methodology:

* only functions used by **all** observed targets are eligible (the
  intersection rule — it keeps the faultload fair across targets);
* functions responsible for a negligible share of the calls are dropped
  (they would contribute faults that almost never activate).
"""

from dataclasses import dataclass, field

__all__ = ["UsageRow", "UsageTable"]

DEFAULT_NEGLIGIBLE_PERCENT = 0.1


@dataclass
class UsageRow:
    """One API function's usage across all profiled targets."""

    module: str
    function: str
    per_target: dict = field(default_factory=dict)

    def average(self):
        if not self.per_target:
            return 0.0
        return sum(self.per_target.values()) / len(self.per_target)

    def used_by_all(self, target_names):
        return all(self.per_target.get(name, 0.0) > 0.0
                   for name in target_names)


class UsageTable:
    """Usage percentages of every observed API function per target."""

    def __init__(self, target_names):
        self.target_names = list(target_names)
        self._rows = {}

    @classmethod
    def from_tracers(cls, tracers):
        """Build a table from ``{target_name: ApiCallTracer}``."""
        table = cls(list(tracers))
        for target_name, tracer in tracers.items():
            for (module, function), pct in tracer.percentages().items():
                row = table._rows.get((module, function))
                if row is None:
                    row = UsageRow(module=module, function=function)
                    table._rows[(module, function)] = row
                row.per_target[target_name] = pct
        return table

    def rows(self):
        """All rows sorted by (module, function) for stable reports."""
        return [self._rows[key] for key in sorted(self._rows)]

    def row(self, module, function):
        """The row for one function, or None when never observed."""
        return self._rows.get((module, function))

    # ------------------------------------------------------------------
    # Selection (the fine-tuning rules)
    # ------------------------------------------------------------------
    def select_relevant(self, negligible_percent=DEFAULT_NEGLIGIBLE_PERCENT):
        """Rows passing both rules: used by all targets, non-negligible.

        A function is negligible when its *average* share across targets
        is at or below ``negligible_percent``.
        """
        selected = []
        for row in self.rows():
            if not row.used_by_all(self.target_names):
                continue
            if row.average() <= negligible_percent:
                continue
            selected.append(row)
        return selected

    def selected_function_names(
        self, negligible_percent=DEFAULT_NEGLIGIBLE_PERCENT
    ):
        """Names of the selected functions (the FIT subset)."""
        return [row.function
                for row in self.select_relevant(negligible_percent)]

    def total_call_coverage(
        self, negligible_percent=DEFAULT_NEGLIGIBLE_PERCENT
    ):
        """Average share of all calls covered by the selected set.

        The paper reports 68.34% for the four web servers — the headline
        that a small function set still dominates the OS traffic.
        """
        selected = self.select_relevant(negligible_percent)
        return sum(row.average() for row in selected)

    def __len__(self):
        return len(self._rows)

    def __repr__(self):
        return (
            f"UsageTable(targets={self.target_names}, "
            f"functions={len(self._rows)})"
        )
