"""API call tracing.

The analogue of the API tracing tool the paper uses in Section 3.3: attach
an :class:`ApiCallTracer` to an :class:`~repro.ossim.dispatch.OsInstance`
and every call that flows through the API dispatch — including the calls
the Win32 layer forwards to ``ntdll`` — is counted per function.
"""

__all__ = ["ApiCallTracer"]


class ApiCallTracer:
    """Counts API calls per (module, function)."""

    def __init__(self, label=""):
        self.label = label
        self.counts = {}
        self.total_calls = 0
        self.enabled = True

    def record(self, module_display, function_name):
        """Called by the dispatcher on every API call."""
        if not self.enabled:
            return
        key = (module_display, function_name)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.total_calls += 1

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def percentage(self, module_display, function_name):
        """Share of total calls for one function, in percent."""
        if self.total_calls == 0:
            return 0.0
        count = self.counts.get((module_display, function_name), 0)
        return 100.0 * count / self.total_calls

    def percentages(self):
        """Mapping (module, function) -> percentage of total calls."""
        if self.total_calls == 0:
            return {}
        return {
            key: 100.0 * count / self.total_calls
            for key, count in self.counts.items()
        }

    def functions(self):
        """Sorted set of (module, function) keys observed."""
        return sorted(self.counts)

    def reset(self):
        self.counts.clear()
        self.total_calls = 0

    def merge(self, other):
        """Fold another tracer's counts into this one."""
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        self.total_calls += other.total_calls

    def __repr__(self):
        return (
            f"ApiCallTracer(label={self.label!r}, "
            f"functions={len(self.counts)}, total={self.total_calls})"
        )
