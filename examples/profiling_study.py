"""The profiling phase: which OS services do web servers actually use?

Reproduces the methodology's fine-tuning study (the paper's Table 2):
trace the OS API calls of four different web servers under the same
workload, apply the two selection rules (used by *all* servers,
non-negligible share of calls), and restrict the faultload to the
selected services.

Run with:  python examples/profiling_study.py
"""

from repro import ExperimentConfig
from repro.harness.experiment import profile_servers
from repro.pipeline import FaultloadPipeline
from repro.profiling.usage import UsageTable
from repro.reporting.report import table2_api_usage
from repro.webservers.registry import PROFILING_SERVERS


def main():
    config = ExperimentConfig.scaled(connections=10)

    print(f"Profiling {', '.join(PROFILING_SERVERS)} under the "
          f"SPECWeb-like workload...")
    tracers = profile_servers(config, PROFILING_SERVERS, seconds=30.0)
    for name, tracer in tracers.items():
        print(f"  {name:7s}: {tracer.total_calls} API calls, "
              f"{len(tracer.counts)} distinct functions")

    usage = UsageTable.from_tracers(tracers)
    print()
    print(table2_api_usage(usage).render())

    selected = usage.select_relevant()
    print(f"\n{len(selected)} functions selected "
          f"(used by all four servers, non-negligible traffic), "
          f"covering {usage.total_call_coverage():.1f}% of all calls.")

    rejected_examples = sorted(
        row.function for row in usage.rows()
        if row not in selected
    )[:8]
    print(f"Examples of rejected functions: "
          f"{', '.join(rejected_examples)}")

    # Apply the selection to the faultload (the full pipeline caches the
    # profiling result we already have).
    pipeline = FaultloadPipeline(config)
    pipeline.scan()
    pipeline.usage_table = usage
    tuned = pipeline.tune()
    print(f"\nFaultload: {len(pipeline.raw_faultload)} raw locations "
          f"-> {len(tuned)} after fine-tuning "
          f"({100 * len(tuned) / len(pipeline.raw_faultload):.0f}% kept)")


if __name__ == "__main__":
    main()
