"""The paper's case study, end to end: Apache vs Abyss on two OS builds.

Runs the complete dependability benchmark at laptop scale — baseline,
profile-mode intrusiveness check, and three fault-injection iterations
per server/OS combination — then prints the Table 5 analogue, the derived
dependability metrics, and the Figure 5 comparison series.

Run with:  python examples/webserver_benchmark.py          (scaled, ~2 min)
           python examples/webserver_benchmark.py --quick  (tiny, ~30 s)
"""

import argparse

from repro import ExperimentConfig, WebServerExperiment
from repro.harness.metrics import DependabilityMetrics
from repro.ossim.builds import get_build
from repro.reporting.report import figure5_series, table5_results
from repro.reporting.compare import compare_shape, table5_shape_checks


def run(faults, connections):
    results = {}
    for os_codename in ("nt50", "nt51"):
        for server_name in ("apache", "abyss"):
            config = ExperimentConfig.scaled(
                fault_sample=faults, connections=connections
            )
            config.os_codename = os_codename
            config.server_name = server_name
            build = get_build(os_codename)
            print(f"... benchmarking {server_name} on "
                  f"{build.display_name}")
            experiment = WebServerExperiment(config)
            results[(os_codename, server_name)] = (
                experiment.run_campaign()
            )
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny configuration (~30 s)")
    parser.add_argument("--faults", type=int, default=None)
    parser.add_argument("--connections", type=int, default=None)
    args = parser.parse_args()
    faults = args.faults or (24 if args.quick else 72)
    connections = args.connections or (8 if args.quick else 12)

    results = run(faults, connections)

    display = {
        (get_build(os_codename).display_name, server): result
        for (os_codename, server), result in results.items()
    }
    print()
    print(table5_results(display).render())

    metrics = {
        combo: DependabilityMetrics.from_results(result)
        for combo, result in results.items()
    }
    print("\nDerived dependability metrics:")
    for (os_codename, server), metric in metrics.items():
        print(f"  {server:7s} on {os_codename}: "
              f"SPCf/SPC={metric.spc_relative:.2f} "
              f"THRf/THR={metric.thr_relative:.2f} "
              f"ER%f={metric.erf_percent:.1f} "
              f"ADMf={metric.admf:.1f} "
              f"(MIS={metric.mis:.0f} KNS={metric.kns:.0f} "
              f"KCP={metric.kcp:.0f})")

    print("\nFigure 5 series (per combo):")
    series = figure5_series({
        (get_build(os_codename).display_name, server): metric
        for (os_codename, server), metric in metrics.items()
    })
    for name in ("SPCf", "ER%f", "ADMf"):
        print(f"  {name}: " + ", ".join(
            f"{os_name.split()[1]}/{server}={value:.1f}"
            for (os_name, server), value in series[name].items()
        ))

    print("\nPaper shape claims:")
    _passed, report = compare_shape(table5_shape_checks(metrics))
    print(report)


if __name__ == "__main__":
    main()
