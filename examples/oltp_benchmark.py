"""The methodology on a second domain: OLTP dependability benchmarking.

The paper closes by claiming its faultloads "can be used in other
experimental contexts, for example, DBMS dependability benchmarking".
This example does it: the same OS build and the same G-SWFIT engine
benchmark two transactional database engines — WalnutDB (write-ahead
logging, supervised) against BreezyDB (write-back cache, no WAL) — and
the client audits *integrity* on top of the performance measures: does a
crash lose transactions the engine had already acknowledged?

Run with:  python examples/oltp_benchmark.py
"""

from repro.harness.config import ExperimentConfig
from repro.oltp import OltpExperiment
from repro.reporting.tables import TableBuilder


def main():
    # Step 1+2 of the methodology, re-done for this domain: profile the
    # database engines (not the web servers!) and fine-tune the faultload
    # to the API functions both engines actually exercise.
    base_config = ExperimentConfig.scaled(
        fault_sample=56, connections=10
    )
    base_config.server_name = "walnut"
    print("Fine-tuning the faultload for the OLTP domain...")
    tuned = OltpExperiment(base_config).domain_tuned_faultload(
        profile_seconds=20.0
    )
    print(f"  {len(tuned)} fault locations in the engines' common "
          f"API footprint: {', '.join(tuned.functions()[:6])}, ...")

    table = TableBuilder(
        ["Engine", "Row", "TPS", "RTM(ms)", "ER%",
         "violations", "MIS", "KNS", "KCP"],
        title="OLTP dependability benchmark (NT 5.0, same faultload)",
    )
    for engine in ("walnut", "breezy"):
        config = base_config.with_target(server_name=engine)
        experiment = OltpExperiment(config)
        print(f"... benchmarking {engine}")
        baseline = experiment.run_baseline()
        table.add_row(engine, "baseline",
                      f"{baseline.tps:.1f}", f"{baseline.rtm_ms:.1f}",
                      f"{baseline.er_percent:.2f}",
                      baseline.integrity_violations, 0, 0, 0)
        for iteration in (1, 2):
            result = experiment.run_injection(
                faultload=tuned, iteration=iteration
            )
            metrics = result.metrics
            table.add_row(engine, f"iteration {iteration}",
                          f"{metrics.tps:.1f}", f"{metrics.rtm_ms:.1f}",
                          f"{metrics.er_percent:.2f}",
                          metrics.integrity_violations,
                          result.mis, result.kns, result.kcp)
    print()
    print(table.render())
    print(
        "\nReading: BreezyDB is faster when nothing goes wrong, but "
        "under the same software faultload it silently loses "
        "acknowledged transactions (the violations column), while "
        "WalnutDB's write-ahead log keeps integrity at zero — at the "
        "price of lower baseline throughput.  The faultload method is "
        "the paper's; only the benchmark targets changed."
    )


if __name__ == "__main__":
    main()
