"""Quickstart: scan an OS build, inject one software fault, watch it bite.

Walks the three core moves of the library in about a minute:

1. G-SWFIT step 1 — scan the simulated OS for fault locations;
2. G-SWFIT step 2 — hot-swap one mutation into the *running* OS;
3. observe the consequence end to end through a web server under load.

Run with:  python examples/quickstart.py
"""

from repro import ExperimentConfig, FaultInjector, scan_build
from repro.faults.types import FaultType
from repro.gswfit.mutator import mutated_source
from repro.harness.machine import ServerMachine
from repro.ossim.builds import NT50


def main():
    # ------------------------------------------------------------------
    # 1. Scan the FIT (the OS build) for injectable fault locations.
    # ------------------------------------------------------------------
    faultload = scan_build(NT50)
    print(f"Scanned {NT50.display_name}: {len(faultload)} fault locations")
    counts = faultload.counts_by_type()
    top3 = sorted(counts, key=counts.get, reverse=True)[:3]
    print("Most common fault types:",
          ", ".join(f"{ft.value} ({counts[ft]})" for ft in top3))

    # Pick one MIA fault in the file-read service: a missing 'if' around
    # its end-of-file guard.
    location = next(
        loc for loc in faultload
        if loc.function == "NtReadFile"
        and loc.fault_type is FaultType.MIA
    )
    print(f"\nChosen fault: {location.fault_id}")
    print(f"  {location.description} (line {location.lineno})")

    # ------------------------------------------------------------------
    # 2. Boot a machine: OS + Apache-like server + SPECWeb-like client.
    # ------------------------------------------------------------------
    config = ExperimentConfig.smoke()
    machine = ServerMachine(config)
    machine.boot()
    machine.client.start()
    machine.run_for(10.0)  # healthy warm-up
    healthy_ops = machine.client.total_ops()
    print(f"\nHealthy server: {healthy_ops} operations served, "
          f"{machine.client.total_errors()} errors")

    # ------------------------------------------------------------------
    # 3. Inject the fault into the live OS, then restore it.
    # ------------------------------------------------------------------
    injector = FaultInjector(os_instances=[machine.os_instance])
    with injector.injected(location):
        machine.run_for(10.0)
    faulty_errors = machine.client.total_errors()
    print(f"With the fault injected for 10 s: "
          f"{faulty_errors} errors accumulated")

    machine.run_for(10.0)
    print(f"After restoration: "
          f"{machine.client.total_errors() - faulty_errors} new errors "
          f"(the OS code is pristine again)")

    # Show what the mutation actually did to the OS source.
    print("\nFirst lines of the mutated NtReadFile:")
    for line in mutated_source(location).splitlines()[:12]:
        print(f"    {line}")


if __name__ == "__main__":
    main()
