"""Building and inspecting custom faultloads.

Faultloads are plain, serializable artifacts: you can scan, filter by
fault type or target function, save them to JSON, reload them on another
machine, and inspect exactly which mutation any entry performs — the
properties that make a faultload a *benchmark component* rather than a
test run.

Run with:  python examples/custom_faultload.py
"""

import difflib
import inspect
import tempfile
import textwrap
from pathlib import Path

from repro import Faultload, scan_build
from repro.faults.types import FaultType
from repro.gswfit.mutator import mutated_source, resolve_function
from repro.ossim.builds import NT51


def main():
    # ------------------------------------------------------------------
    # Scan and slice.
    # ------------------------------------------------------------------
    raw = scan_build(NT51)
    print(f"Raw faultload for {NT51.display_name}: {len(raw)} faults")

    checking_only = raw.restrict_to_types(
        [FaultType.MIA, FaultType.MLAC, FaultType.WLEC]
    )
    print(f"Checking-class faults only (MIA/MLAC/WLEC): "
          f"{len(checking_only)}")

    heap_only = raw.restrict_to_functions(
        ["RtlAllocateHeap", "RtlFreeHeap", "RtlSizeHeap"]
    )
    print(f"Heap-service faults only: {len(heap_only)} in "
          f"{heap_only.functions()}")

    small = raw.sample(25, seed=7).interleave_types()
    print(f"Stratified 25-fault sample keeps "
          f"{sum(1 for c in small.counts_by_type().values() if c)} "
          f"of 12 fault types")

    # ------------------------------------------------------------------
    # Serialize and reload: the faultload is the portable artifact.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "heap_faults.json"
        heap_only.save(path)
        reloaded = Faultload.load(path)
        assert [l.fault_id for l in reloaded] == [
            l.fault_id for l in heap_only
        ]
        print(f"\nSaved and reloaded {len(reloaded)} faults "
              f"({path.stat().st_size} bytes of JSON)")

    # ------------------------------------------------------------------
    # Inspect a mutant as a source diff.
    # ------------------------------------------------------------------
    location = heap_only[0]
    print(f"\nMutation performed by {location.fault_id}:")
    print(f"  ({location.description})\n")
    function = resolve_function(location)
    original = textwrap.dedent(inspect.getsource(function)).splitlines()
    mutant = mutated_source(location).splitlines()
    for line in difflib.unified_diff(
        original, mutant, lineterm="",
        fromfile="pristine", tofile="mutated", n=2,
    ):
        print(f"    {line}")


if __name__ == "__main__":
    main()
