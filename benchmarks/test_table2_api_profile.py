"""Bench: regenerate Table 2 (relevant API calls).

The profiling phase of the methodology: run all four web servers under
the SPECWeb-like workload with the API tracer attached, keep the functions
every server uses with non-negligible frequency, and report per-server
usage percentages plus the total call coverage of the selected set.

Shape targets: the selected set is small but covers most OS traffic
(paper: 68.3%; our servers are leaner than the real binaries, so coverage
lands higher), the usage pattern is stable across servers, and the
selected set overlaps strongly with the paper's 21 functions.
"""

import pytest

from _bench_common import bench_config

from repro.harness.experiment import profile_servers
from repro.profiling.usage import UsageTable
from repro.reporting.paper import PAPER
from repro.reporting.report import table2_api_usage
from repro.webservers.registry import PROFILING_SERVERS


def _regenerate():
    config = bench_config()
    tracers = profile_servers(config, PROFILING_SERVERS, seconds=30.0)
    return UsageTable.from_tracers(tracers)


def test_table2_api_profile(benchmark):
    usage = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(table2_api_usage(usage).render())

    selected = usage.select_relevant()
    coverage = usage.total_call_coverage()
    paper_functions = {
        name for _module, name in PAPER["table2"]["functions"]
    }
    our_functions = {row.function for row in selected}

    # The selection rules held: everything selected is used by all four
    # servers and carries non-negligible traffic.
    for row in selected:
        assert row.used_by_all(usage.target_names)
        assert row.average() > 0.1

    # Strong overlap with the paper's function set.
    overlap = paper_functions & our_functions
    assert len(overlap) >= 15, (
        f"only {sorted(overlap)} of the paper's set selected"
    )

    # A small set of functions still dominates the call volume.
    assert len(selected) < 40
    assert coverage > 60.0
    print(f"\nselected {len(selected)} functions, "
          f"total call coverage {coverage:.2f}% (paper: 68.34%)")
