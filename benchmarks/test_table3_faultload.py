"""Bench: regenerate Table 3 (faultload details per OS build).

Runs the full faultload-definition pipeline (scan + profile + fine-tune)
for both OS builds and prints the number of faults per fault type.

Shape targets (vs the paper's 1714/2927 faults): the XP-analogue faultload
is substantially larger than the 2000-analogue; MIA is the most frequent
type on both; MVAV and WAEP are among the rarest.
"""

import pytest

from _bench_common import bench_config

from repro.pipeline import FaultloadPipeline
from repro.reporting.compare import compare_shape, table3_shape_checks
from repro.reporting.paper import PAPER
from repro.reporting.report import table3_faultload_details
from repro.ossim.builds import get_build


def _regenerate():
    faultloads = {}
    for os_codename in ("nt50", "nt51"):
        config = bench_config(os_codename=os_codename)
        pipeline = FaultloadPipeline(config, profile_seconds=15.0)
        faultloads[os_codename] = pipeline.run()
    return faultloads


def test_table3_faultload(benchmark):
    faultloads = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    display = {
        get_build(codename).display_name: faultload
        for codename, faultload in faultloads.items()
    }
    print()
    print(table3_faultload_details(display).render())
    print(f"(paper: {PAPER['table3']['win2000']['total']} faults on "
          f"Windows 2000, {PAPER['table3']['winxp']['total']} on XP)")

    checks = table3_shape_checks(
        faultloads["nt50"].counts_by_type(),
        faultloads["nt51"].counts_by_type(),
        len(faultloads["nt50"]),
        len(faultloads["nt51"]),
    )
    passed, report = compare_shape(checks)
    print(report)
    assert passed
