"""Bench: regenerate Table 5 (the dependability benchmark results).

The headline experiment: for each server/OS combination, three iterations
over the (sampled) faultload with 10-second injection slots, the watchdog
producing MIS/KNS/KCP, and the SPECWeb-like client producing SPC, THR,
RTM and ER%.

Shape targets (the paper's comparison claims, checked per OS and across
OSes): Apache degrades less than Abyss on ER% and relative SPC, Abyss
dies unrecovered far more often (MIS), Apache needs no more administrator
interventions overall, throughput stays close to baseline for both, KCP
is rare, and the winner is the same on both OS builds (portability).
"""

import pytest

from _bench_common import OS_CODENAMES, os_display

from repro.harness.metrics import DependabilityMetrics
from repro.reporting.compare import compare_shape, table5_shape_checks
from repro.reporting.paper import PAPER
from repro.reporting.report import table5_results
from repro.webservers.registry import BENCHMARKED_SERVERS


def test_table5_injection(benchmark, campaign_results):
    results = benchmark.pedantic(
        lambda: campaign_results, rounds=1, iterations=1
    )
    display = {
        (os_display(os_codename), server_name): result
        for (os_codename, server_name), result in results.items()
    }
    print()
    print(table5_results(display).render())

    paper = PAPER["table5"][("win2000", "apache")]
    print(f"(paper, W2k/Apache average: SPC {paper['SPC']}, "
          f"THR {paper['THR']}, ER% {paper['ER%']}, MIS {paper['MIS']}, "
          f"KNS {paper['KNS']})")

    metrics = {
        combo: DependabilityMetrics.from_results(result)
        for combo, result in results.items()
    }

    # Per-iteration repeatability: iterations resemble each other.
    for combo, result in results.items():
        ers = [it.metrics.er_percent for it in result.iterations]
        assert max(ers) - min(ers) < max(6.0, 0.9 * max(ers)), (
            f"iterations diverge wildly for {combo}: {ers}"
        )

    # KCP is rare (paper: 0-2 per campaign).
    for combo, metric in metrics.items():
        assert metric.kcp <= 3, f"KCP unexpectedly common for {combo}"

    passed, report = compare_shape(table5_shape_checks(metrics))
    print(report)
    assert passed
