"""Ablation: fault-activation rate with and without fine-tuning.

DESIGN.md decision #3.  The profiling-based fine-tuning exists to maximize
the probability that an injected fault is *activated* (its mutated code
actually executes) during the slot.  This bench measures the activation
rate of a tuned faultload against an untuned one that includes locations
in functions the workload rarely or never touches.

Activation is observed via code coverage of the mutated function: the
fault is counted as activated when the target function is called at least
once while the mutation is applied.
"""

import pytest

from _bench_common import bench_config

from repro.gswfit.scanner import scan_build
from repro.harness.experiment import WebServerExperiment
from repro.harness.machine import ServerMachine
from repro.gswfit.injector import FaultInjector
from repro.ossim.builds import NT50
from repro.pipeline import FaultloadPipeline
from repro.profiling.tracer import ApiCallTracer
from repro.reporting.tables import TableBuilder

SAMPLE = 48
SLOT_SECONDS = 4.0


def _activation_rate(faultload, config):
    """Fraction of faults whose target function ran while injected."""
    machine = ServerMachine(config)
    tracer = ApiCallTracer()
    machine.attach_tracer(tracer)
    assert machine.boot()
    injector = FaultInjector(os_instances=[machine.os_instance])
    machine.client.start()
    machine.run_for(5.0)
    activated = 0
    for location in faultload:
        tracer.reset()
        with injector.injected(location):
            machine.run_for(SLOT_SECONDS)
        called = any(
            name == location.function
            for _module, name in tracer.counts
        )
        # Internal helpers run inside their exported callers; count the
        # module as exercised when any of its exports ran.
        if not called and location.function.startswith("_"):
            called = tracer.total_calls > 0
        if called:
            activated += 1
        if machine.runtime.is_dead():
            machine.runtime.restart()
    return activated / len(faultload)


def _run_ablation():
    config = bench_config()
    raw = scan_build(NT50)
    pipeline = FaultloadPipeline(config, profile_seconds=10.0)
    tuned = pipeline.run()
    tuned_ids = {loc.fault_id for loc in tuned}
    excluded = [loc for loc in raw if loc.fault_id not in tuned_ids]

    tuned_rate = _activation_rate(
        tuned.sample(SAMPLE, seed=4), config
    )
    if excluded:
        from repro.faults.faultload import Faultload

        excluded_faultload = Faultload("nt50", excluded)
        excluded_rate = _activation_rate(
            excluded_faultload.sample(SAMPLE, seed=4), config
        )
    else:
        excluded_rate = 0.0
    return tuned_rate, excluded_rate


def test_ablation_finetuning(benchmark):
    tuned_rate, excluded_rate = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1
    )
    table = TableBuilder(
        ["Faultload", "Activation rate"],
        title="Ablation - activation rate with/without fine-tuning",
    )
    table.add_row("fine-tuned (selected functions)",
                  f"{100 * tuned_rate:.1f}%")
    table.add_row("rejected by fine-tuning",
                  f"{100 * excluded_rate:.1f}%")
    print()
    print(table.render())

    assert tuned_rate > 0.6, "tuned faultload should mostly activate"
    assert tuned_rate > 3 * excluded_rate, (
        "fine-tuning must improve the activation rate decisively"
    )
