"""Ablation: fault-activation rate with and without fine-tuning.

DESIGN.md decision #3.  The profiling-based fine-tuning exists to maximize
the probability that an injected fault is *activated* (its mutated code
actually executes) during the slot.  This bench measures the activation
rate of a tuned faultload against the locations fine-tuning rejected —
faults in functions the workload rarely or never touches.

Activation is observed directly: every mutant carries the gswfit entry
probe (DESIGN.md §11), so a fault counts as activated exactly when its
mutated code ran while injected — no API-trace heuristics.  The slot
walk is the real one (:meth:`WebServerExperiment.run_slots`), watchdog
and all.

Results are written to ``BENCH_activation.json`` at the repo root; the
CI activation-gate compares the fine-tuned rate against the checked-in
record via ``benchmarks/compare_bench.py``.  Set ``REPRO_BENCH_SMOKE=1``
to shrink the sample and relax the thresholds.
"""

import json
import os
import sys
from pathlib import Path

from _bench_common import bench_config

from repro.faults.faultload import Faultload
from repro.gswfit.scanner import scan_build
from repro.harness.experiment import WebServerExperiment
from repro.ossim.builds import NT50
from repro.pipeline import FaultloadPipeline
from repro.reporting.tables import TableBuilder

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SAMPLE = 16 if SMOKE else 48
TUNED_RATE_FLOOR = 0.5 if SMOKE else 0.6
SEPARATION_FACTOR = 1.0 if SMOKE else 2.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_activation.json"
RESULTS = {}


def _activation_rate(faultload, config):
    """Probe-measured activation rate over one real slot walk."""
    faultload.prepared = True  # inject exactly this sample
    run = WebServerExperiment(config).run_slots(faultload, iteration=1)
    assert run.activation_enabled, "activation tracking must be on"
    if not run.faults_injected:
        return 0.0, run
    return run.faults_activated / run.faults_injected, run


def _run_ablation():
    config = bench_config()
    raw = scan_build(NT50)
    pipeline = FaultloadPipeline(config, profile_seconds=10.0)
    tuned = pipeline.run()
    tuned_ids = {loc.fault_id for loc in tuned}
    excluded = [loc for loc in raw if loc.fault_id not in tuned_ids]

    tuned_rate, tuned_run = _activation_rate(
        tuned.sample(SAMPLE, seed=4), config
    )
    if excluded:
        excluded_rate, excluded_run = _activation_rate(
            Faultload("nt50", excluded).sample(SAMPLE, seed=4), config
        )
    else:
        excluded_rate, excluded_run = 0.0, None
    RESULTS["activation"] = {
        "rate": round(tuned_rate, 4),
        "excluded_rate": round(excluded_rate, 4),
        "sample": SAMPLE,
        "tuned_injected": tuned_run.faults_injected,
        "tuned_activated": tuned_run.faults_activated,
        "excluded_injected": (
            excluded_run.faults_injected if excluded_run else 0
        ),
        "excluded_activated": (
            excluded_run.faults_activated if excluded_run else 0
        ),
    }
    return tuned_rate, excluded_rate


def test_ablation_finetuning(benchmark):
    tuned_rate, excluded_rate = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1
    )
    table = TableBuilder(
        ["Faultload", "Activation rate"],
        title="Ablation - activation rate with/without fine-tuning",
    )
    table.add_row("fine-tuned (selected functions)",
                  f"{100 * tuned_rate:.1f}%")
    table.add_row("rejected by fine-tuning",
                  f"{100 * excluded_rate:.1f}%")
    print()
    print(table.render())

    assert tuned_rate >= TUNED_RATE_FLOOR, (
        "tuned faultload should mostly activate"
    )
    assert tuned_rate >= SEPARATION_FACTOR * excluded_rate, (
        "fine-tuning must improve the activation rate decisively"
    )


# ----------------------------------------------------------------------
# Emit the checked-in record (runs last in this file)
# ----------------------------------------------------------------------
def test_write_bench_json():
    assert RESULTS, "run the ablation bench before the JSON writer"
    payload = {
        "bench": "activation",
        "python": sys.version.split()[0],
        "smoke": SMOKE,
        **RESULTS,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
