"""Pytest wiring for the benches (fixtures live in _bench_common)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_common import campaign_results  # noqa: F401  (session fixture)
