"""Bench: regenerate Figure 5 (Apache vs Abyss under software faults).

Figure 5 shows, side by side for both OSes, the baseline and
under-faultload values of SPC/THR/RTM plus ER%f and the administration
counters.  This bench prints the same series and asserts the figure's
visual claims: the SPC collapse under faults, the mild THR dip, Abyss's
higher error rate and heavier administration needs, and the stability of
the relative ordering across OS builds.
"""

import pytest

from _bench_common import os_display

from repro.harness.metrics import DependabilityMetrics
from repro.reporting.report import figure5_series
from repro.reporting.tables import TableBuilder


def test_figure5_comparison(benchmark, campaign_results):
    metrics = benchmark.pedantic(
        lambda: {
            combo: DependabilityMetrics.from_results(result)
            for combo, result in campaign_results.items()
        },
        rounds=1, iterations=1,
    )
    display = {
        (os_display(os_codename), server): metric
        for (os_codename, server), metric in metrics.items()
    }
    series = figure5_series(display)

    table = TableBuilder(
        ["Series"] + [f"{os_name}/{server}"
                      for os_name, server in display],
        title="Figure 5 - Apache vs Abyss in the presence of faults",
    )
    for name, values in series.items():
        table.add_row(name, *[f"{values[combo]:.1f}"
                              for combo in display])
    print()
    print(table.render())
    from repro.reporting.figures import figure5_panels

    print()
    print(figure5_panels(series))

    for os_codename in ("nt50", "nt51"):
        apache = metrics[(os_codename, "apache")]
        abyss = metrics[(os_codename, "abyss")]
        # SPC collapses under faults for both servers...
        assert apache.spc_relative < 0.95
        assert abyss.spc_relative < 0.8
        # ...but throughput only dips.
        assert apache.thr_relative > 0.75
        assert abyss.thr_relative > 0.75
        # Panel ordering: Apache above Abyss everywhere.
        assert apache.spc_relative > abyss.spc_relative
        assert apache.erf_percent < abyss.erf_percent
        assert apache.admf <= abyss.admf
        assert abyss.mis > apache.mis

    # The relative difference is a property of the servers, not the OS:
    # same winner, same direction, on both builds.
    gap_nt50 = (metrics[("nt50", "abyss")].erf_percent
                - metrics[("nt50", "apache")].erf_percent)
    gap_nt51 = (metrics[("nt51", "abyss")].erf_percent
                - metrics[("nt51", "apache")].erf_percent)
    assert gap_nt50 > 0 and gap_nt51 > 0
