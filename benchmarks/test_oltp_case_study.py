"""Bench (extension): the methodology generalized to OLTP.

The paper's abstract claims the methodology "can be used to generate
faultloads for the evaluation of any software product such as OLTP
systems".  This bench runs the full loop on the database domain: profile
the two engines, fine-tune the faultload to their common API footprint,
inject, and compare — with the client auditing durability (acknowledged
transactions surviving crashes) on top of the usual measures.

Shape targets: clean baselines for both engines; under the same
faultload the WAL engine (walnut) keeps integrity violations at zero
while the write-back engine (breezy) loses acknowledged transactions;
breezy is faster at baseline (the classic safety/performance trade).
"""

import pytest

from _bench_common import bench_config

from repro.oltp import OltpExperiment
from repro.reporting.tables import TableBuilder


def _run_case_study():
    config = bench_config(server_name="walnut")
    config.fault_sample = 48
    tuned = OltpExperiment(config).domain_tuned_faultload(
        profile_seconds=15.0
    )
    results = {}
    for engine in ("walnut", "breezy"):
        engine_config = config.with_target(server_name=engine)
        experiment = OltpExperiment(engine_config)
        baseline = experiment.run_baseline()
        injection = experiment.run_injection(
            faultload=tuned, iteration=1
        )
        results[engine] = (baseline, injection)
    return tuned, results


def test_oltp_case_study(benchmark):
    tuned, results = benchmark.pedantic(
        _run_case_study, rounds=1, iterations=1
    )
    table = TableBuilder(
        ["Engine", "Row", "TPS", "RTM(ms)", "ER%", "violations",
         "MIS", "KNS", "KCP"],
        title="OLTP case study - same faultload, different domain",
    )
    for engine, (baseline, injection) in results.items():
        table.add_row(engine, "baseline", f"{baseline.tps:.1f}",
                      f"{baseline.rtm_ms:.1f}",
                      f"{baseline.er_percent:.2f}",
                      baseline.integrity_violations, 0, 0, 0)
        metrics = injection.metrics
        table.add_row(engine, "faultload", f"{metrics.tps:.1f}",
                      f"{metrics.rtm_ms:.1f}",
                      f"{metrics.er_percent:.2f}",
                      metrics.integrity_violations,
                      injection.mis, injection.kns, injection.kcp)
    print()
    print(table.render())
    print(f"({len(tuned)} OLTP-domain fault locations)")

    walnut_base, walnut_fault = results["walnut"]
    breezy_base, breezy_fault = results["breezy"]

    # Clean baselines: no errors, no violations, real throughput.
    for baseline in (walnut_base, breezy_base):
        assert baseline.er_percent == 0.0
        assert baseline.integrity_violations == 0
        assert baseline.tps > 50
    # The safety/performance trade at baseline.
    assert breezy_base.tps > walnut_base.tps
    # The headline: same faultload, WAL preserves acknowledged
    # transactions, write-back loses them.
    assert walnut_fault.metrics.integrity_violations == 0
    assert breezy_fault.metrics.integrity_violations > 0
    # Both engines visibly degrade under faults.
    assert walnut_fault.metrics.tps < walnut_base.tps
    assert walnut_fault.admf + breezy_fault.admf > 0
