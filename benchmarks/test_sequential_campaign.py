"""Bench: sequential statistical injection vs exhaustive execution.

The claim (ROADMAP item 1, DESIGN.md §14): on the nt51 build a
sequential campaign reaches every reachable target interval while
executing **>= 30% fewer slots** than the exhaustive run of the same
faultload — at fixed metric error, meaning the sequential estimates of
the tracked derived metrics stay inside the configured confidence band
of the exhaustive values.  The slot reduction is recorded in
``BENCH_sequential.json`` for the bench-regression gate, and digest
parity between worker counts is asserted inline (the sequential-gate CI
job re-checks it across backends on every push).
"""

import json
import os
import sys
import time
from pathlib import Path

from _bench_common import bench_config

from repro.harness.campaign import ParallelCampaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SEQUENTIAL_WORKERS = max(2, min(4, os.cpu_count() or 2))
# The acceptance floor: the sequential campaign must skip at least this
# fraction of the exhaustive slot count.
REDUCTION_FLOOR = 0.30
CI_TARGET = 0.2
# The sequential estimate of every tracked metric must stay within this
# relative band of the exhaustive value.  The per-stratum intervals are
# built at CI_TARGET; the campaign-level aggregate re-weights strata by
# executed (not planned) slots, so the band is the interval target plus
# that mix shift — everything below is deterministic for a fixed seed.
ERROR_CEILING = 2.0 * CI_TARGET
BENCH_SEQUENTIAL_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_sequential.json"
)


def _sequential_config(sequential):
    config = bench_config("apache", "nt51")
    config.rules = type(config.rules)(
        warmup_seconds=5.0, rampup_seconds=2.0, rampdown_seconds=2.0,
        iterations=1, slot_seconds=6.0, slot_gap_seconds=2.0,
        baseline_seconds=30.0,
    )
    # Full faultload: the exhaustive baseline the paper's methodology
    # would brute-force.  Smoke mode keeps the shape at a fraction of
    # the cost (not comparable to full records — compare_bench refuses).
    config.fault_sample = 96 if SMOKE else None
    config.sequential = sequential
    if sequential:
        config.ci_target = CI_TARGET
        config.sequential_batch_slots = 4
    return config


def _run(sequential, workers):
    campaign = ParallelCampaign(
        _sequential_config(sequential), workers=workers
    )
    started = time.perf_counter()
    result = campaign.run(
        include_baseline=False, include_profile_mode=False
    )
    return result, campaign.manifest, time.perf_counter() - started


def _relative_error(reference, value):
    """The stopping rule's own distance: relative with a 1.0 floor."""
    return abs(reference - value) / max(abs(reference), 1.0)


def test_sequential_slot_reduction(benchmark):
    def regenerate():
        exhaustive = _run(sequential=False, workers=SEQUENTIAL_WORKERS)
        serial = _run(sequential=True, workers=1)
        parallel = _run(sequential=True, workers=SEQUENTIAL_WORKERS)
        return exhaustive, serial, parallel

    (
        (exhaustive, exhaustive_manifest, exhaustive_s),
        (_serial, serial_manifest, _serial_s),
        (sequential, sequential_manifest, sequential_s),
    ) = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    block = sequential_manifest.sequential
    planned = block["planned_slots"]
    executed = block["executed_slots"]
    reduction = 1.0 - executed / planned
    assert planned == exhaustive_manifest.slots

    # Digest parity: the executed slot set (and hence the digest) is a
    # pure function of the stopping schedule, not of the worker count.
    assert serial_manifest.metrics_digest == (
        sequential_manifest.metrics_digest
    ), "sequential digest diverged across worker counts"
    assert serial_manifest.sequential == block

    # Every stratum reached a principled stop: its target interval, or
    # the end of its planned slots (where the exhaustive run has no
    # more information either).
    reasons = {
        reason
        for per_iteration in block["stop_reasons"].values()
        for reason in per_iteration
    }
    assert reasons <= {"confidence", "exhausted"}, reasons
    assert "confidence" in reasons, (
        "no stratum stopped on confidence — stopping rule never fired"
    )

    # Fixed metric error: the sequential estimates sit inside the error
    # band of the exhaustive values.
    a = exhaustive.iterations[0]
    b = sequential.iterations[0]
    errors = {
        "SPCf": _relative_error(a.metrics.spc, b.metrics.spc),
        "THRf": _relative_error(a.metrics.thr, b.metrics.thr),
        "RTMf": _relative_error(a.metrics.rtm_ms, b.metrics.rtm_ms),
        "ER%f": _relative_error(
            a.metrics.er_percent, b.metrics.er_percent
        ),
        "ADMf": _relative_error(
            a.admf / exhaustive_manifest.slots, b.admf / max(executed, 1)
        ),
    }
    max_error = max(errors.values())

    print()
    print(f"sequential injection on nt51: {executed} of {planned} "
          f"slot(s) executed ({100 * reduction:.1f}% fewer), "
          f"exhaustive {exhaustive_s:.1f}s -> sequential "
          f"{sequential_s:.1f}s, max metric error "
          f"{max_error:.3f} (ceiling {ERROR_CEILING})")

    payload = {
        "bench": "sequential",
        "python": sys.version.split()[0],
        "smoke": SMOKE,
        "sequential_injection": {
            "os": "nt51",
            "ci_target": CI_TARGET,
            "batch_slots": 4,
            "planned_slots": planned,
            "executed_slots": executed,
            "slot_reduction_percent": round(100.0 * reduction, 3),
            "max_metric_error": round(max_error, 6),
            "wall_seconds_exhaustive": round(exhaustive_s, 3),
            "wall_seconds_sequential": round(sequential_s, 3),
            "errors": {key: round(value, 6)
                       for key, value in errors.items()},
        },
    }
    BENCH_SEQUENTIAL_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert max_error <= ERROR_CEILING, (
        f"sequential estimates drifted {max_error:.3f} from the "
        f"exhaustive values (ceiling {ERROR_CEILING}): {errors}"
    )
    if not SMOKE:
        assert reduction >= REDUCTION_FLOOR, (
            f"sequential campaign executed only {100 * reduction:.1f}% "
            f"fewer slots (floor {100 * REDUCTION_FLOOR:.0f}%)"
        )
    else:
        # Smoke strata are a handful of batches each; just require the
        # mechanism to have skipped something.
        assert executed < planned
