"""Bench: regenerate Table 4 (injector intrusiveness).

For every server/OS combination: a max-performance run (no injector) and
a profile-mode run (injector attached, doing everything but the final
code swap).  The paper's claim: the injector's perturbation is small —
worst-case degradation under 2% and no errors introduced.
"""

import pytest

from _bench_common import OS_CODENAMES, bench_config, os_display

from repro.harness.experiment import WebServerExperiment
from repro.reporting.compare import compare_shape, table4_shape_checks
from repro.reporting.paper import PAPER
from repro.reporting.report import table4_intrusiveness
from repro.webservers.registry import BENCHMARKED_SERVERS


def _regenerate():
    results = {}
    for os_codename in OS_CODENAMES:
        for server_name in BENCHMARKED_SERVERS:
            config = bench_config(server_name, os_codename)
            experiment = WebServerExperiment(config)
            max_perf = experiment.run_baseline()
            profile = experiment.run_profile_mode()
            results[(os_display(os_codename), server_name)] = (
                max_perf, profile
            )
    return results


def test_table4_intrusiveness(benchmark):
    results = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(table4_intrusiveness(results).render())
    print(f"(paper worst-case degradation: "
          f"{PAPER['table4']['worst_degradation_percent']}%)")

    degradations = {}
    for combo, (max_perf, profile) in results.items():
        assert profile.er_percent == 0.0, (
            f"profile mode introduced errors for {combo}"
        )
        thr_degradation = (
            100.0 * (max_perf.thr - profile.thr) / max_perf.thr
        )
        degradations[combo] = thr_degradation

    passed, report = compare_shape(table4_shape_checks(degradations))
    print(report)
    assert passed
