"""Bench: the campaign hot paths.

Four claims, one per layer of the campaign's steady state:

* **Repeat injection** — injecting a fault location whose mutant is
  already in the precompilation cache is >= 5x faster than a cold
  inject (in practice orders of magnitude: the warm path is two dict
  lookups plus the ``__code__`` swap, the cold path re-parses and
  re-compiles the target function).
* **Single-pass scan** — discovering every operator's sites in one
  indexed AST walk is >= 3x faster than the historical one-traversal-
  per-operator scan, for byte-identical output (equivalence is asserted
  in tier-1; here we assert the speed).
* **Zero-overhead dispatch** — with no tracer attached, the API wrapper
  carries *no* tracer reference at all (asserted structurally), so the
  untraced steady state of a campaign pays nothing for the profiling
  instrumentation.
* **Epoch setup** — restoring a warmed-up machine from its snapshot
  (DESIGN.md §12) is >= 5x faster than booting and warming a fresh one,
  which is what makes pristine-per-slot runs (the paper's Fig. 4
  protocol) affordable.

Results are written to ``BENCH_hot_path.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job does) to shrink the
workloads and relax the thresholds — smoke mode checks the machinery,
not the numbers.
"""

import json
import os
import sys
import time
from itertools import repeat
from pathlib import Path
from statistics import median

from repro.gswfit.astutils import FunctionImage
from repro.harness.config import ExperimentConfig
from repro.harness.machine import ServerMachine
from repro.harness.snapshot import MachineSnapshot, snapshot_key
from repro.gswfit.cache import clear_mutant_cache
from repro.gswfit.injector import FaultInjector
from repro.gswfit.operators import collect_sites, operator_library
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT50, NT51
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.profiling.tracer import ApiCallTracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
INJECT_SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0
SCAN_SPEEDUP_FLOOR = 1.2 if SMOKE else 3.0
EPOCH_SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0
INJECT_SLOTS = 12 if SMOKE else 48
WARM_ROUNDS = 2 if SMOKE else 5
SCAN_ROUNDS = 1 if SMOKE else 3
DISPATCH_CALLS = 20_000 if SMOKE else 200_000
EPOCH_BOOT_ROUNDS = 2 if SMOKE else 3
EPOCH_RESTORE_ROUNDS = 3 if SMOKE else 7

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hot_path.json"
RESULTS = {}


def _fit_functions(build):
    for _display_name, module in build.modules:
        names = list(module.__exports__)
        names.extend(getattr(module, "__internal__", []))
        for name in names:
            yield module, getattr(module, name)


# ----------------------------------------------------------------------
# Repeat injection: warm cache vs cold compile
# ----------------------------------------------------------------------
def test_repeat_injection_speedup(benchmark):
    locations = list(scan_build(NT50))[:INJECT_SLOTS]

    def one_pass(injector):
        for location in locations:
            injector.inject(location)
            injector.restore(location)

    def regenerate():
        injector = FaultInjector()
        clear_mutant_cache()
        started = time.perf_counter()
        one_pass(injector)  # every slot compiles its mutant
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(WARM_ROUNDS):  # every slot hits the memo
            one_pass(injector)
        warm = (time.perf_counter() - started) / WARM_ROUNDS
        return cold, warm

    cold, warm = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    speedup = cold / max(warm, 1e-9)
    slots = len(locations)
    RESULTS["repeat_injection"] = {
        "slots": slots,
        "cold_ms_per_slot": round(cold / slots * 1e3, 4),
        "warm_ms_per_slot": round(warm / slots * 1e3, 4),
        "speedup": round(speedup, 1),
    }
    print()
    print(f"inject: cold={cold / slots * 1e3:.3f}ms/slot  "
          f"warm={warm / slots * 1e3:.4f}ms/slot  "
          f"speedup={speedup:.0f}x")
    assert speedup >= INJECT_SPEEDUP_FLOOR, (
        f"warm injection only {speedup:.1f}x faster than cold"
    )


# ----------------------------------------------------------------------
# Site discovery: single pass vs one traversal per operator
# ----------------------------------------------------------------------
def test_single_pass_scan_speedup(benchmark):
    functions = [
        (module, function)
        for build in (NT50, NT51)
        for module, function in _fit_functions(build)
    ]
    operators = list(operator_library().values())

    def fresh_images():
        # Untimed: parsing is common to both strategies (and a campaign
        # pays it once, through the scan cache).  Fresh images per
        # measurement keep the per-image lazy caches cold.
        return [
            FunctionImage(function, module_name=module.__name__)
            for module, function in functions
        ]

    def regenerate():
        single = multi = 0.0
        sites_single = sites_multi = 0
        for _ in range(SCAN_ROUNDS):
            images = fresh_images()
            started = time.perf_counter()
            for image in images:
                buckets = collect_sites(image, operators)
                sites_single += sum(map(len, buckets.values()))
            single += time.perf_counter() - started
            images = fresh_images()
            started = time.perf_counter()
            for image in images:
                for operator in operators:
                    sites_multi += len(operator.find_sites(image))
            multi += time.perf_counter() - started
        return single / SCAN_ROUNDS, multi / SCAN_ROUNDS, (
            sites_single, sites_multi
        )

    single, multi, (sites_single, sites_multi) = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    assert sites_single == sites_multi  # same faultload, both ways
    speedup = multi / max(single, 1e-9)
    RESULTS["single_pass_scan"] = {
        "functions": len(functions),
        "operators": len(operators),
        "single_pass_ms": round(single * 1e3, 2),
        "per_operator_ms": round(multi * 1e3, 2),
        "speedup": round(speedup, 2),
    }
    print()
    print(f"scan: single-pass={single * 1e3:.1f}ms  "
          f"12-pass={multi * 1e3:.1f}ms  speedup={speedup:.2f}x")
    assert speedup >= SCAN_SPEEDUP_FLOOR, (
        f"single-pass scan only {speedup:.2f}x faster than per-operator"
    )


# ----------------------------------------------------------------------
# Dispatch: the untraced fast path
# ----------------------------------------------------------------------
def test_dispatch_untraced_fast_path(benchmark):
    osi = OsInstance(NT50, SimKernel())
    ctx = osi.new_process()

    def regenerate():
        untraced_call = ctx.api.GetLastError
        started = time.perf_counter()
        for _ in repeat(None, DISPATCH_CALLS):
            untraced_call()
        untraced = time.perf_counter() - started
        tracer = ApiCallTracer()
        osi.attach_tracer(tracer)
        traced_call = ctx.api.GetLastError
        started = time.perf_counter()
        for _ in repeat(None, DISPATCH_CALLS):
            traced_call()
        traced = time.perf_counter() - started
        osi.attach_tracer(None)
        return untraced, traced

    untraced, traced = benchmark.pedantic(regenerate, rounds=1,
                                          iterations=1)
    # The zero-overhead claim is structural, not statistical: the
    # untraced wrapper must contain no tracer reference anywhere.
    wrapper = ctx.api.GetLastError
    cells = [cell.cell_contents for cell in wrapper.__closure__]
    assert not any(isinstance(cell, ApiCallTracer) for cell in cells)
    assert "tracer" not in wrapper.__code__.co_names
    RESULTS["dispatch"] = {
        "calls": DISPATCH_CALLS,
        "untraced_us_per_call": round(untraced / DISPATCH_CALLS * 1e6, 4),
        "traced_us_per_call": round(traced / DISPATCH_CALLS * 1e6, 4),
        "tracing_overhead_pct": round((traced - untraced) / untraced * 100,
                                      1),
    }
    print()
    print(f"dispatch: untraced={untraced / DISPATCH_CALLS * 1e6:.3f}us  "
          f"traced={traced / DISPATCH_CALLS * 1e6:.3f}us per call")
    assert untraced / DISPATCH_CALLS < 50e-6, "dispatch slower than 50us"


# ----------------------------------------------------------------------
# Epoch setup: snapshot restore vs boot + warm-up
# ----------------------------------------------------------------------
def test_epoch_setup_speedup(benchmark):
    """A restored epoch costs a pickle round-trip, not a boot."""
    config = (ExperimentConfig.smoke() if SMOKE
              else ExperimentConfig.scaled())

    def boot_and_warm():
        machine = ServerMachine(config, iteration=1)
        assert machine.boot()
        machine.client.start()
        machine.run_for(
            config.rules.warmup_seconds + config.rules.rampup_seconds
        )
        return machine

    def regenerate():
        boots = []
        for _ in range(EPOCH_BOOT_ROUNDS):
            started = time.perf_counter()
            machine = boot_and_warm()
            boots.append(time.perf_counter() - started)
        snapshot = MachineSnapshot.capture(
            snapshot_key(config, 1), machine
        )
        restores = []
        for _ in range(EPOCH_RESTORE_ROUNDS):
            started = time.perf_counter()
            snapshot.restore()
            restores.append(time.perf_counter() - started)
        return median(boots), median(restores), snapshot.image_bytes

    boot, restore, image_bytes = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    speedup = boot / max(restore, 1e-9)
    RESULTS["epoch_setup"] = {
        "boot_ms": round(boot * 1e3, 3),
        "restore_ms": round(restore * 1e3, 3),
        "image_kb": round(image_bytes / 1024, 1),
        "speedup": round(speedup, 1),
    }
    print()
    print(f"epoch: boot+warm={boot * 1e3:.1f}ms  "
          f"restore={restore * 1e3:.2f}ms  "
          f"image={image_bytes / 1024:.0f}KB  speedup={speedup:.1f}x")
    assert speedup >= EPOCH_SPEEDUP_FLOOR, (
        f"snapshot restore only {speedup:.1f}x faster than boot+warm-up"
    )


# ----------------------------------------------------------------------
# Emit the checked-in record (runs last in this file)
# ----------------------------------------------------------------------
def test_write_bench_json():
    assert RESULTS, "run the hot-path benches before the JSON writer"
    payload = {
        "bench": "hot_path",
        "python": sys.version.split()[0],
        "smoke": SMOKE,
        **RESULTS,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
