"""Shared helpers for the paper-regeneration benches.

Every bench regenerates one exhibit of the paper (tables 1-5, figure 5)
or one ablation from DESIGN.md.  The heavyweight campaign data (used by
table 4, table 5 and figure 5) is computed once per session and shared.

Scale: the default configuration compresses the paper's 24-hour campaign
into a couple of host minutes (fewer connections, a stratified faultload
sample) while preserving its structure.  Set ``REPRO_BENCH_FAULTS`` /
``REPRO_BENCH_CONNECTIONS`` to raise the scale (0 faults = the full
faultload, as in the paper).
"""

import os

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.ossim.builds import get_build
from repro.webservers.registry import BENCHMARKED_SERVERS

BENCH_FAULTS = int(os.environ.get("REPRO_BENCH_FAULTS", "72"))
BENCH_CONNECTIONS = int(os.environ.get("REPRO_BENCH_CONNECTIONS", "12"))
OS_CODENAMES = ("nt50", "nt51")


def bench_config(server_name="apache", os_codename="nt50"):
    config = ExperimentConfig.scaled(
        fault_sample=BENCH_FAULTS if BENCH_FAULTS > 0 else None,
        connections=BENCH_CONNECTIONS,
    )
    config.server_name = server_name
    config.os_codename = os_codename
    return config


@pytest.fixture(scope="session")
def campaign_results():
    """Full campaigns for every (os, server) combo — computed once."""
    results = {}
    for os_codename in OS_CODENAMES:
        for server_name in BENCHMARKED_SERVERS:
            config = bench_config(server_name, os_codename)
            experiment = WebServerExperiment(config)
            results[(os_codename, server_name)] = (
                experiment.run_campaign()
            )
    return results


def os_display(os_codename):
    return get_build(os_codename).display_name
