"""Compare two bench records and fail on regression.

CI uses this for two gates:

* **bench-regression** — ``BENCH_hot_path.json``: the checked-in record
  is the baseline, the record the bench job just produced is the
  candidate, and a drop of more than ``--tolerance`` (default 30%) in
  either tracked speedup fails the build.
* **activation-gate** — ``BENCH_activation.json``: the fine-tuned
  campaign's overall fault-activation rate must not drop more than
  ``--tolerance`` below the recorded floor.

It also understands ``BENCH_fabric.json`` (fabric loopback scaling),
``BENCH_sequential.json`` (sequential-injection slot reduction) and
``BENCH_dsl.json`` (DSL-operator scan relative throughput), all wired
into the same bench-regression job.

Speedups are ratios (warm vs cold on the *same* host) and activation
rates are workload facts, so both are largely machine-independent —
which is what makes a cross-host comparison against a checked-in record
meaningful at all.  Records taken in different modes (smoke vs full)
are *not* comparable: smoke mode shrinks the workloads below the
metrics' stable regime, so the script refuses the comparison instead of
producing noise.

A *missing*, unparseable, or older-schema **baseline** is a warning,
not a failure: the gate degrades to "nothing to compare against" (exit
0) so a freshly added bench — whose record lands in the same PR — does
not fail CI before its baseline exists.  A broken **fresh** record is
always a failure: the bench that just ran must produce its metrics.

Usage::

    python benchmarks/compare_bench.py baseline.json fresh.json
"""

import argparse
import json
import sys

# bench kind -> (section, key, label) for every metric that kind gates
# on.  Lower values fail; all tracked metrics are higher-is-better.
BENCH_KINDS = {
    "hot_path": [
        ("repeat_injection", "speedup", "warm-inject speedup"),
        ("single_pass_scan", "speedup", "single-pass-scan speedup"),
        ("epoch_setup", "speedup", "epoch restore speedup"),
    ],
    "activation": [
        ("activation", "rate", "fine-tuned activation rate"),
    ],
    "fabric": [
        ("fabric_scaling", "speedup",
         "fabric 4-worker loopback speedup"),
    ],
    "sequential": [
        ("sequential_injection", "slot_reduction_percent",
         "sequential-injection slot reduction"),
    ],
    "dsl": [
        ("dsl_scan", "relative_throughput",
         "DSL-operator scan relative throughput"),
    ],
}


def load_record(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(tracked, baseline, fresh, tolerance):
    """Returns a list of (label, base, new, ok) rows."""
    rows = []
    for section, key, label in tracked:
        base = baseline.get(section, {}).get(key)
        new = fresh.get(section, {}).get(key)
        if base is None or new is None:
            rows.append((label, base, new, False))
            continue
        floor = base * (1.0 - tolerance)
        rows.append((label, base, new, new >= floor))
    return rows


def _warn_skip(reason):
    print(f"WARNING: {reason} — skipping bench comparison",
          file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in bench record")
    parser.add_argument("fresh", help="record from the current build")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional drop before failing (default: 0.30)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_record(args.baseline)
    except FileNotFoundError:
        return _warn_skip(f"baseline record {args.baseline!r} not found")
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as error:
        return _warn_skip(
            f"baseline record {args.baseline!r} unreadable ({error})"
        )
    if not isinstance(baseline, dict):
        return _warn_skip(
            f"baseline record {args.baseline!r} is not a JSON object"
        )

    fresh = load_record(args.fresh)
    kind = fresh.get("bench")
    tracked = BENCH_KINDS.get(kind)
    if tracked is None:
        print(f"unknown bench kind {kind!r} in fresh record "
              f"(expected one of {sorted(BENCH_KINDS)})", file=sys.stderr)
        return 2
    if baseline.get("bench") != kind:
        # Pre-"bench"-field records and records of another kind alike:
        # an older schema is a stale floor, not a regression.
        return _warn_skip(
            f"baseline record {args.baseline!r} is not a {kind!r} bench "
            f"(bench={baseline.get('bench')!r}; older schema?)"
        )
    if baseline.get("smoke") != fresh.get("smoke"):
        print(
            "bench records not comparable: one is a smoke run "
            f"(baseline smoke={baseline.get('smoke')}, "
            f"fresh smoke={fresh.get('smoke')})",
            file=sys.stderr,
        )
        return 2

    rows = compare(tracked, baseline, fresh, args.tolerance)
    failed = False
    for label, base, new, ok in rows:
        if base is None:
            print(f"WARNING: {label} missing from baseline record — "
                  f"skipped", file=sys.stderr)
            continue
        if new is None:
            print(f"FAIL {label}: missing from fresh record")
            failed = True
            continue
        delta = (new - base) / base * 100.0
        status = "ok" if ok else "REGRESSION"
        print(f"{status:>10}  {label}: {base:.4g} -> {new:.4g} "
              f"({delta:+.1f}%)")
        failed = failed or not ok
    if failed:
        print(
            f"bench regression beyond {args.tolerance:.0%} tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
