"""Compare two ``BENCH_hot_path.json`` records and fail on regression.

CI uses this as the bench-regression gate: the checked-in record is the
baseline, the record the bench job just produced is the candidate, and
a drop of more than ``--tolerance`` (default 30%) in either tracked
speedup fails the build.

Speedups are ratios (warm vs cold on the *same* host), so they are
largely machine-independent — which is what makes a cross-host
comparison against a checked-in record meaningful at all.  Records
taken in different modes (smoke vs full) are *not* comparable: smoke
mode shrinks the workloads below the ratio's stable regime, so the
script refuses the comparison instead of producing noise.

Usage::

    python benchmarks/compare_bench.py baseline.json fresh.json
"""

import argparse
import json
import sys

# (section, key, label) for every speedup the gate tracks.
TRACKED = [
    ("repeat_injection", "speedup", "warm-inject speedup"),
    ("single_pass_scan", "speedup", "single-pass-scan speedup"),
]


def load_record(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(baseline, fresh, tolerance):
    """Returns a list of (label, base, new, ok) rows."""
    rows = []
    for section, key, label in TRACKED:
        base = baseline.get(section, {}).get(key)
        new = fresh.get(section, {}).get(key)
        if base is None or new is None:
            rows.append((label, base, new, False))
            continue
        floor = base * (1.0 - tolerance)
        rows.append((label, base, new, new >= floor))
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in bench record")
    parser.add_argument("fresh", help="record from the current build")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional drop before failing (default: 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_record(args.baseline)
    fresh = load_record(args.fresh)
    if baseline.get("smoke") != fresh.get("smoke"):
        print(
            "bench records not comparable: one is a smoke run "
            f"(baseline smoke={baseline.get('smoke')}, "
            f"fresh smoke={fresh.get('smoke')})",
            file=sys.stderr,
        )
        return 2

    rows = compare(baseline, fresh, args.tolerance)
    failed = False
    for label, base, new, ok in rows:
        if base is None or new is None:
            print(f"FAIL {label}: missing from "
                  f"{'baseline' if base is None else 'fresh'} record")
            failed = True
            continue
        delta = (new - base) / base * 100.0
        status = "ok" if ok else "REGRESSION"
        print(f"{status:>10}  {label}: {base:.1f}x -> {new:.1f}x "
              f"({delta:+.1f}%)")
        failed = failed or not ok
    if failed:
        print(
            f"bench regression beyond {args.tolerance:.0%} tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
