"""Bench: regenerate Table 1 (representative fault types).

Table 1 is the field-data foundation of the faultload: the twelve fault
types, their ODC classes and their share of all residual field faults,
totalling ~50.69%.
"""

import pytest

from repro.faults.fielddata import total_field_coverage
from repro.faults.types import fault_type_info, iter_fault_types
from repro.reporting.paper import PAPER
from repro.reporting.report import table1_fault_types


def _regenerate():
    table = table1_fault_types()
    coverage = total_field_coverage()
    return table, coverage


def test_table1_fault_types(benchmark):
    table, coverage = benchmark(_regenerate)
    print()
    print(table.render())
    # Exact agreement is expected here: Table 1 is field data the
    # reproduction embeds, not something measured on the simulator.
    assert coverage == pytest.approx(PAPER["table1"]["total"], abs=0.01)
    for fault_type in iter_fault_types():
        info = fault_type_info(fault_type)
        assert info.field_coverage_percent == pytest.approx(
            PAPER["table1"][fault_type.value]
        )
