"""Bench (extension): software vs hardware vs operator faults.

The paper's conclusion sketches the full dependability benchmark as the
software faultload *plus* hardware and operator fault models.  This bench
runs all three classes against the same Apache/NT5.0 machine with the
same slot structure and prints the familiar measures per class — the
comparison the sketched benchmark would report.
"""

import pytest

from _bench_common import bench_config

from repro.extensions.experiment import ExtendedFaultCampaign
from repro.extensions.statefaults import standard_extension_faultload
from repro.harness.experiment import WebServerExperiment
from repro.reporting.tables import TableBuilder


def _run_all_classes():
    config = bench_config()
    config.fault_sample = 36

    software = WebServerExperiment(config).run_injection(iteration=1)

    campaign = ExtendedFaultCampaign(
        config, faults=standard_extension_faultload(repetitions=6)
    )
    state_results = campaign.run(iteration=1)
    return software, state_results


def test_extension_fault_models(benchmark):
    software, state_results = benchmark.pedantic(
        _run_all_classes, rounds=1, iterations=1
    )
    table = TableBuilder(
        ["Fault class", "faults", "SPC", "THR", "ER%",
         "MIS", "KNS", "KCP"],
        title="Extension - fault classes compared (apache on NT 5.0)",
    )
    table.add_row(
        "software (G-SWFIT)", software.faults_injected,
        f"{software.metrics.spc:.1f}", f"{software.metrics.thr:.1f}",
        f"{software.metrics.er_percent:.1f}",
        software.mis, software.kns, software.kcp,
    )
    for fault_class, result in sorted(state_results.items()):
        table.add_row(
            fault_class, result.faults_injected,
            f"{result.metrics.spc:.1f}", f"{result.metrics.thr:.1f}",
            f"{result.metrics.er_percent:.1f}",
            result.mis, result.kns, result.kcp,
        )
    print()
    print(table.render())

    operator = state_results["operator"]
    hardware = state_results["hardware"]
    # Every mistaken kill needs an administrator: operator faults are
    # intervention-heavy relative to their error footprint.
    assert operator.mis >= 6  # one per MistakenProcessKill repetition
    # Hardware faults corrupt service (errors) more than they kill it.
    assert hardware.metrics.er_percent > 0
    assert hardware.mis <= operator.mis
    # The software faultload degrades service too (sanity anchor).
    assert software.metrics.er_percent > 0
