"""Microbenchmarks of the core engine (feasibility, Section 4).

The paper reports the cost of the methodology's steps: faultload
generation under 5 minutes, low injector overhead, injection itself "a
very simple and low intrusive task".  These microbenchmarks put numbers
on the reproduction's equivalents and back the feasibility claims.
"""

import pytest

from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import build_mutant
from repro.gswfit.scanner import scan_build, scan_function
from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.modules import ntdll50
from repro.sim.kernel import Simulator


def test_scan_full_build(benchmark):
    """Faultload generation for one OS build (paper: < 5 minutes)."""
    faultload = benchmark(scan_build, NT50)
    assert len(faultload) > 200


def test_scan_single_function(benchmark):
    locations = benchmark(
        scan_function, ntdll50.NtCreateFile, None, "Ntdll"
    )
    assert locations


def test_build_one_mutant(benchmark):
    location = scan_function(ntdll50.RtlAllocateHeap)[0]
    _function, code = benchmark(build_mutant, location)
    assert code is not None


def test_inject_restore_cycle(benchmark):
    """Step 2 cost: one hot swap plus its restoration."""
    location = scan_function(ntdll50.RtlAllocateHeap)[0]
    injector = FaultInjector()

    def cycle():
        injector.inject(location)
        injector.restore(location)

    benchmark(cycle)


def test_os_call_throughput(benchmark):
    """A full open/read/close against the simulated OS."""
    kernel = SimKernel()
    kernel.vfs.mkdir("/d", parents=True)
    kernel.vfs.create_file("/d/f", size=4096)
    ctx = OsInstance(NT50, kernel).new_process()

    def cycle():
        handle = ctx.api.CreateFileW("/d/f", "r", 3)
        ctx.api.ReadFile(handle, 4096)
        ctx.api.CloseHandle(handle)

    benchmark(cycle)


def test_event_loop_throughput(benchmark):
    """Raw discrete-event dispatch rate."""

    def run():
        sim = Simulator()
        count = 1000

        def tick():
            nonlocal count
            count -= 1
            if count > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 1000


def test_simulated_second_of_workload(benchmark):
    """Host cost of one simulated second of a loaded server machine."""
    from repro.harness.config import ExperimentConfig
    from repro.harness.machine import ServerMachine

    config = ExperimentConfig.smoke()
    machine = ServerMachine(config)
    machine.boot()
    machine.client.start()
    machine.run_for(5.0)  # warm

    def one_second():
        machine.run_for(1.0)

    benchmark.pedantic(one_second, rounds=10, iterations=1)
    assert machine.client.total_ops() > 0
