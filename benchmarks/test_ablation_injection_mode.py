"""Ablation: G-SWFIT mutation vs classic error interception.

DESIGN.md decision #1.  The paper argues mutation emulates the *fault*
while interception emulates only one pre-chosen *symptom*.  This bench
drives the same OS workload under (a) a sample of G-SWFIT mutants and
(b) interception stubs on the same functions, classifies the observable
outcome of each injection, and compares the diversity of failure modes.

Expected shape: mutation produces a spread across outcome classes —
including silent/latent faults and wrong-result runs, which interception
cannot produce at all (every interception is an immediate, loud failure).
"""

import pytest

from _bench_common import bench_config

from repro.gswfit.injector import FaultInjector
from repro.gswfit.interception import (
    InterceptionFault,
    InterceptionInjector,
)
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.status import NtStatus
from repro.reporting.tables import TableBuilder
from repro.sim.errors import SimulationError

SAMPLE = 120

# The OS services the probe below exercises *and checks*: interception
# stubs are planted only here so both techniques get activated faults.
_PROBE_FOOTPRINT = (
    "CreateFileW", "RtlDosPathNameToNtPathName_U", "NtCreateFile",
    "ReadFile", "NtReadFile", "CloseHandle", "NtClose",
    "RtlAllocateHeap", "RtlFreeHeap", "RtlEnterCriticalSection",
)


def _probe(os_instance):
    """Drive one canonical OS workload; classify what happened."""
    ctx = os_instance.new_process()
    try:
        handle = ctx.api.CreateFileW("/d/f", "r", 3)
        if handle == 0:
            return "error_status"
        ok, buffer, count = ctx.api.ReadFile(handle, 300)
        closed = ctx.api.CloseHandle(handle)
        address = ctx.api.RtlAllocateHeap(128, 0)
        freed = ctx.api.RtlFreeHeap(address) if address else False
        ctx.api.RtlEnterCriticalSection("probe")
        ctx.api.RtlLeaveCriticalSection("probe")
    except SimulationError as exc:
        return type(exc).__name__
    if not ok or not closed or address == 0 or not freed:
        return "error_status"
    if count != 300 or buffer is None:
        return "wrong_result"
    return "silent"


def _outcome_distribution(inject, restore, faults):
    distribution = {}
    for fault in faults:
        kernel = SimKernel()
        kernel.vfs.mkdir("/d", parents=True)
        kernel.vfs.create_file("/d/f", size=300)
        os_instance = OsInstance(NT50, kernel)
        inject(fault, os_instance)
        try:
            outcome = _probe(os_instance)
        finally:
            restore(fault)
        distribution[outcome] = distribution.get(outcome, 0) + 1
    return distribution


def _run_ablation():
    faultload = scan_build(NT50).sample(SAMPLE, seed=9)
    mutation_injector = FaultInjector()

    def inject_mutation(location, os_instance):
        mutation_injector.os_instances = [os_instance]
        mutation_injector.inject(location)

    def restore_mutation(location):
        mutation_injector.restore(location)

    mutation = _outcome_distribution(
        inject_mutation, restore_mutation, list(faultload)
    )

    interception_injector = InterceptionInjector()
    modules_by_function = {
        loc.function: loc.module for loc in scan_build(NT50)
    }
    interceptions = []
    for function in _PROBE_FOOTPRINT:
        module = modules_by_function[function]
        for mode in ("error", "exception"):
            interceptions.append(
                InterceptionFault(module, function, mode=mode)
            )

    def inject_interception(fault, os_instance):
        interception_injector.os_instances = [os_instance]
        interception_injector.inject(fault)

    interception = _outcome_distribution(
        inject_interception, interception_injector.restore, interceptions
    )
    return mutation, interception


def test_ablation_injection_mode(benchmark):
    mutation, interception = benchmark.pedantic(
        _run_ablation, rounds=1, iterations=1
    )
    table = TableBuilder(
        ["Outcome", "G-SWFIT mutation", "Interception"],
        title="Ablation - failure-mode diversity per injection technique",
    )
    outcomes = sorted(set(mutation) | set(interception))
    for outcome in outcomes:
        table.add_row(outcome, mutation.get(outcome, 0),
                      interception.get(outcome, 0))
    print()
    print(table.render())

    total_mutation = sum(mutation.values())
    total_interception = sum(interception.values())
    # Interception forces a pre-chosen symptom: every activated stub is
    # loud.  Mutation emulates the fault itself, so most mutants are
    # latent on any single probe — the paper's accuracy argument.
    silent_mutation = mutation.get("silent", 0) / total_mutation
    silent_interception = (
        interception.get("silent", 0) / total_interception
    )
    assert silent_mutation > silent_interception
    # Interception can never hand back a *wrong* (but well-formed)
    # result; its stubs return contract-shaped errors or raise.
    assert interception.get("wrong_result", 0) == 0
    # Mutation covers at least as many distinct failure modes, and they
    # are not all crashes.
    assert len(mutation) >= len(interception)
    assert mutation.get("error_status", 0) > 0
