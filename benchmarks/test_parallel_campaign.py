"""Bench: the parallel campaign engine and the scan cache.

Four claims, all load-bearing for production-scale campaigns:

* **Equivalence + speedup** — a sharded campaign run with several
  workers produces metrics bit-identical to the single-worker run, and
  finishes faster (each worker simulates its shards concurrently).
* **Fabric scaling** — the socket coordinator/worker backend
  (``--backend fabric``) scales the same way in loopback mode, with
  byte-identical digests between 1 and N workers; its wall-clock at 4
  workers is recorded in ``BENCH_fabric.json`` for the bench-regression
  gate.
* **Adaptive slots** — activation-aware slot scheduling
  (``--adaptive-slots``) cuts campaign wall-clock by >= 25% at equal
  worker count on a *generic* (non-fine-tuned) faultload, because slots
  whose fault never activates are truncated at the faulted function's
  profiled deadline instead of simulating the full window.
* **Scan caching** — the second scan of the same build through
  :func:`repro.gswfit.cache.scan_build_cached` is >= 10x faster than a
  cold scan (in-process memo; the disk tier additionally survives
  process restarts, which is what the campaign workers hit).
"""

import json
import os
import sys
import time
from pathlib import Path

from _bench_common import bench_config

from repro.faults.faultload import Faultload
from repro.gswfit.cache import (
    clear_scan_cache,
    scan_build_cached,
    warm_mutant_cache,
)
from repro.gswfit.scanner import scan_build
from repro.harness.campaign import ParallelCampaign
from repro.harness.experiment import profile_servers
from repro.harness.machine import ServerMachine
from repro.ossim.builds import NT50, NT51

CAMPAIGN_WORKERS = max(2, min(4, os.cpu_count() or 2))
ADAPTIVE_REDUCTION_FLOOR = 0.25

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
FABRIC_WORKERS = 4
FABRIC_SPEEDUP_FLOOR = 2.5
FABRIC_OVERHEAD_CEILING = 1.7
BENCH_FABRIC_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_fabric.json"
)


def _campaign_config():
    config = bench_config("apache", "nt50")
    config.rules = type(config.rules)(
        warmup_seconds=5.0, rampup_seconds=2.0, rampdown_seconds=2.0,
        iterations=2, slot_seconds=6.0, slot_gap_seconds=2.0,
        baseline_seconds=30.0,
    )
    config.fault_sample = 48
    return config


def _run_campaign(workers):
    config = _campaign_config()
    started = time.perf_counter()
    result = ParallelCampaign(config, workers=workers).run(
        include_baseline=False, include_profile_mode=False
    )
    return result, time.perf_counter() - started


def test_parallel_campaign_equivalence_and_speedup(benchmark):
    def regenerate():
        serial = _run_campaign(workers=1)
        parallel = _run_campaign(workers=CAMPAIGN_WORKERS)
        return serial, parallel

    (serial, serial_s), (parallel, parallel_s) = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    print()
    print(f"campaign wall-clock: workers=1 {serial_s:.1f}s, "
          f"workers={CAMPAIGN_WORKERS} {parallel_s:.1f}s "
          f"({serial_s / parallel_s:.2f}x on {os.cpu_count()} cpus)")
    assert len(serial.iterations) == len(parallel.iterations)
    for a, b in zip(serial.iterations, parallel.iterations):
        assert a.metrics == b.metrics, (
            "parallel campaign diverged from serial"
        )
        assert (a.mis, a.kns, a.kcp) == (b.mis, b.kns, b.kcp)
        assert a.faults_injected == b.faults_injected
    if (os.cpu_count() or 1) >= CAMPAIGN_WORKERS:
        # Enough cores: the sharded run must actually be faster.
        assert parallel_s < serial_s
    else:
        # Single-core host: no speedup is possible, so just bound the
        # pool's overhead — the mechanism must stay near-free.
        assert parallel_s < serial_s * 1.6


# ----------------------------------------------------------------------
# Fabric scaling (1 vs 4 loopback workers) — emits BENCH_fabric.json
# ----------------------------------------------------------------------
def _fabric_config():
    config = bench_config("apache", "nt50")
    config.rules = type(config.rules)(
        warmup_seconds=5.0, rampup_seconds=2.0, rampdown_seconds=2.0,
        iterations=1, slot_seconds=6.0, slot_gap_seconds=2.0,
        baseline_seconds=30.0,
    )
    config.fault_sample = 16 if SMOKE else 48
    return config


def _run_fabric_campaign(workers):
    config = _fabric_config()
    campaign = ParallelCampaign(config, workers=workers,
                                backend="fabric")
    started = time.perf_counter()
    campaign.run(include_baseline=False, include_profile_mode=False)
    return campaign.manifest, time.perf_counter() - started


def test_fabric_scaling(benchmark):
    """Loopback fabric: digest parity between 1 and 4 workers, and the
    wall-clock scaling recorded for the regression gate."""
    def regenerate():
        return _run_fabric_campaign(1), _run_fabric_campaign(FABRIC_WORKERS)

    (single, single_s), (multi, multi_s) = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    speedup = single_s / multi_s
    cpus = os.cpu_count() or 1
    print()
    print(f"fabric loopback: workers=1 {single_s:.1f}s, "
          f"workers={FABRIC_WORKERS} {multi_s:.1f}s "
          f"({speedup:.2f}x on {cpus} cpus)")
    assert single.metrics_digest == multi.metrics_digest, (
        "fabric campaign digest diverged across worker counts"
    )
    assert multi.fabric["backend"] == "fabric"
    assert multi.fabric["worker_deaths"] == 0
    assert multi.fabric["results"] >= 1
    payload = {
        "bench": "fabric",
        "python": sys.version.split()[0],
        "smoke": SMOKE,
        "fabric_scaling": {
            "workers": FABRIC_WORKERS,
            "cpus": cpus,
            "wall_seconds_1": round(single_s, 3),
            "wall_seconds_n": round(multi_s, 3),
            "speedup": round(speedup, 3),
            "steals": multi.fabric["steals"],
        },
    }
    BENCH_FABRIC_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    if cpus >= FABRIC_WORKERS and not SMOKE:
        # Enough cores: the fabric must deliver real scaling.
        assert speedup >= FABRIC_SPEEDUP_FLOOR, (
            f"fabric at {FABRIC_WORKERS} workers only {speedup:.2f}x "
            f"over 1 (floor {FABRIC_SPEEDUP_FLOOR}x)"
        )
    else:
        # Core-starved host: no speedup is possible, so bound the
        # coordinator's overhead instead — the wire must stay cheap.
        assert multi_s < single_s * FABRIC_OVERHEAD_CEILING


ADAPTIVE_SAMPLE = 48


def _adaptive_config():
    config = bench_config("apache", "nt50")
    config.rules = type(config.rules)(
        warmup_seconds=4.0, rampup_seconds=1.5, rampdown_seconds=1.5,
        iterations=1, slot_seconds=8.0, slot_gap_seconds=1.0,
        baseline_seconds=30.0,
    )
    config.fault_sample = None  # explicit generic faultload below
    config.activation_profile_seconds = 8.0
    return config


def _executed_functions(config, seconds=8.0):
    """Ground-truth coverage: the FIT functions the workload executes.

    The API-usage tracer only sees dispatch-level calls — internal
    helpers the exports call never appear in it.  Dormancy is a property
    of the *executed code*, so the bench measures it directly: one
    uninjected trace under ``sys.setprofile``, collecting the code
    objects of every FIT-module function that runs.
    """
    fit_code = {}
    for module in NT50.fit_modules():
        for name, value in vars(module).items():
            code = getattr(value, "__code__", None)
            if code is not None:
                fit_code[code] = name
    executed = set()
    machine = ServerMachine(config, iteration=0)
    if not machine.boot():
        raise RuntimeError(f"{config.server_name} failed to start")
    machine.client.start()

    def profiler(frame, event, arg):
        if event == "call":
            name = fit_code.get(frame.f_code)
            if name is not None:
                executed.add(name)

    sys.setprofile(profiler)
    try:
        machine.run_for(config.rules.warmup_seconds + seconds)
    finally:
        sys.setprofile(None)
    machine.client.pause()
    return executed


def _generic_faultload(config):
    """Stratified generic-faultload scenario for the adaptive bench.

    A generic faultload is scanned from the *whole* build, so much of it
    sits in code the benchmark workload never reaches — that dormancy is
    the reason the paper fine-tunes at all, and the regime adaptive
    slots exist for.  Our simulated workloads happen to execute ~3/4 of
    the build's fault sites (real OS workloads reach far less), so the
    bench restores a paper-representative mix explicitly: half the
    sample from functions the workload executes, half from functions it
    never runs — an overall activation rate in the ~50% band reported
    for generic faultloads.
    """
    raw = scan_build(NT50)
    executed = _executed_functions(config)
    traced = {
        function
        for (_module, function), count in profile_servers(
            config, [config.server_name], seconds=8.0
        )[config.server_name].counts.items()
        if count > 0
    }
    # A few API names are dispatch-routed away from the scanned function
    # of the same name: the trace logs them, the code never runs.  The
    # deadline table (built from the same trace) keeps those slots at
    # full length, so they belong to neither stratum.
    live = [loc for loc in raw if loc.function in executed]
    dormant = [
        loc for loc in raw
        if loc.function not in executed and loc.function not in traced
    ]
    half = ADAPTIVE_SAMPLE // 2
    mixed = []
    for pool in (live, dormant):
        mixed.extend(
            Faultload(raw.os_codename, pool).sample(half, seed=config.seed)
        )
    faultload = Faultload(
        raw.os_codename, mixed, name="generic-mixed"
    ).interleave_types()
    faultload.prepared = True
    return faultload


def test_adaptive_slots_speedup(benchmark):
    """Adaptive slots must cut campaign wall-clock by >= 25%."""
    def run(config, faultload):
        campaign = ParallelCampaign(config, workers=1, slots_per_shard=24)
        started = time.perf_counter()
        result = campaign.run(
            faultload=faultload,
            include_baseline=False, include_profile_mode=False,
        )
        return result, campaign.manifest, time.perf_counter() - started

    def regenerate():
        # Scenario setup and mutant compilation happen once, outside the
        # timed region, so the comparison isolates the slot scheduler.
        # The adaptive run still pays its own deadline-profiling trace
        # inside the timed region — the saving must clear that overhead.
        faultload = _generic_faultload(_adaptive_config())
        warm_mutant_cache(faultload, probed=True)
        fixed_config = _adaptive_config()
        adaptive_config = _adaptive_config()
        adaptive_config.adaptive_slots = True
        return run(fixed_config, faultload), run(adaptive_config, faultload)

    (
        (fixed, fixed_manifest, fixed_s),
        (adaptive, adaptive_manifest, adaptive_s),
    ) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    reduction = 1.0 - adaptive_s / fixed_s
    summary = adaptive_manifest.activation
    print()
    print(f"adaptive slots: fixed {fixed_s:.1f}s -> adaptive "
          f"{adaptive_s:.1f}s ({100 * reduction:.1f}% reduction, "
          f"{summary['slots_truncated']} slot(s) truncated, "
          f"{summary['sim_seconds_saved']:.1f} sim-seconds saved)")
    # Same faults injected; truncation only skips post-deadline idle
    # time of never-activated slots.
    fixed_it, adaptive_it = fixed.iterations[0], adaptive.iterations[0]
    assert fixed_it.faults_injected == adaptive_it.faults_injected
    assert summary["slots_truncated"] > 0, (
        "adaptive campaign truncated nothing — deadline table missing?"
    )
    assert reduction >= ADAPTIVE_REDUCTION_FLOOR, (
        f"adaptive slots saved only {100 * reduction:.1f}% wall-clock "
        f"(floor {100 * ADAPTIVE_REDUCTION_FLOOR:.0f}%)"
    )


def test_scan_cache_speedup(benchmark, tmp_path):
    def regenerate():
        clear_scan_cache()
        timings = {}
        started = time.perf_counter()
        cold50 = scan_build(NT50)
        cold51 = scan_build(NT51)
        timings["cold"] = time.perf_counter() - started

        clear_scan_cache()
        started = time.perf_counter()
        warm_a50 = scan_build_cached(NT50, cache_dir=tmp_path)
        warm_a51 = scan_build_cached(NT51, cache_dir=tmp_path)
        timings["first_through_cache"] = time.perf_counter() - started

        started = time.perf_counter()
        warm_b50 = scan_build_cached(NT50, cache_dir=tmp_path)
        warm_b51 = scan_build_cached(NT51, cache_dir=tmp_path)
        timings["second_through_cache"] = time.perf_counter() - started

        clear_scan_cache()  # fresh process analogue: disk tier only
        started = time.perf_counter()
        disk50 = scan_build_cached(NT50, cache_dir=tmp_path)
        timings["disk_reload"] = time.perf_counter() - started

        faultloads = (cold50, warm_a50, warm_b50, disk50,
                      cold51, warm_a51, warm_b51)
        return timings, faultloads

    timings, faultloads = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    cold50, warm_a50, warm_b50, disk50 = faultloads[:4]
    cold51, warm_a51, warm_b51 = faultloads[4:]
    for other in (warm_a50, warm_b50, disk50):
        assert [l.fault_id for l in other] == [
            l.fault_id for l in cold50
        ]
    assert [l.fault_id for l in warm_b51] == [
        l.fault_id for l in cold51
    ]
    speedup = timings["cold"] / max(timings["second_through_cache"], 1e-9)
    print()
    print(f"scan: cold={timings['cold'] * 1000:.1f}ms  "
          f"cached={timings['second_through_cache'] * 1000:.3f}ms  "
          f"disk reload={timings['disk_reload'] * 1000:.1f}ms  "
          f"speedup={speedup:.0f}x")
    assert speedup >= 10.0, (
        f"cached rescan only {speedup:.1f}x faster than cold"
    )
