"""Bench: the parallel campaign engine and the scan cache.

Two claims, both load-bearing for production-scale campaigns:

* **Equivalence + speedup** — a sharded campaign run with several
  workers produces metrics bit-identical to the single-worker run, and
  finishes faster (each worker simulates its shards concurrently).
* **Scan caching** — the second scan of the same build through
  :func:`repro.gswfit.cache.scan_build_cached` is >= 10x faster than a
  cold scan (in-process memo; the disk tier additionally survives
  process restarts, which is what the campaign workers hit).
"""

import os
import time

from _bench_common import bench_config

from repro.gswfit.cache import clear_scan_cache, scan_build_cached
from repro.gswfit.scanner import scan_build
from repro.harness.campaign import ParallelCampaign
from repro.ossim.builds import NT50, NT51

CAMPAIGN_WORKERS = max(2, min(4, os.cpu_count() or 2))


def _campaign_config():
    config = bench_config("apache", "nt50")
    config.rules = type(config.rules)(
        warmup_seconds=5.0, rampup_seconds=2.0, rampdown_seconds=2.0,
        iterations=2, slot_seconds=6.0, slot_gap_seconds=2.0,
        baseline_seconds=30.0,
    )
    config.fault_sample = 48
    return config


def _run_campaign(workers):
    config = _campaign_config()
    started = time.perf_counter()
    result = ParallelCampaign(config, workers=workers).run(
        include_baseline=False, include_profile_mode=False
    )
    return result, time.perf_counter() - started


def test_parallel_campaign_equivalence_and_speedup(benchmark):
    def regenerate():
        serial = _run_campaign(workers=1)
        parallel = _run_campaign(workers=CAMPAIGN_WORKERS)
        return serial, parallel

    (serial, serial_s), (parallel, parallel_s) = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    print()
    print(f"campaign wall-clock: workers=1 {serial_s:.1f}s, "
          f"workers={CAMPAIGN_WORKERS} {parallel_s:.1f}s "
          f"({serial_s / parallel_s:.2f}x on {os.cpu_count()} cpus)")
    assert len(serial.iterations) == len(parallel.iterations)
    for a, b in zip(serial.iterations, parallel.iterations):
        assert a.metrics == b.metrics, (
            "parallel campaign diverged from serial"
        )
        assert (a.mis, a.kns, a.kcp) == (b.mis, b.kns, b.kcp)
        assert a.faults_injected == b.faults_injected
    if (os.cpu_count() or 1) >= CAMPAIGN_WORKERS:
        # Enough cores: the sharded run must actually be faster.
        assert parallel_s < serial_s
    else:
        # Single-core host: no speedup is possible, so just bound the
        # pool's overhead — the mechanism must stay near-free.
        assert parallel_s < serial_s * 1.6


def test_scan_cache_speedup(benchmark, tmp_path):
    def regenerate():
        clear_scan_cache()
        timings = {}
        started = time.perf_counter()
        cold50 = scan_build(NT50)
        cold51 = scan_build(NT51)
        timings["cold"] = time.perf_counter() - started

        clear_scan_cache()
        started = time.perf_counter()
        warm_a50 = scan_build_cached(NT50, cache_dir=tmp_path)
        warm_a51 = scan_build_cached(NT51, cache_dir=tmp_path)
        timings["first_through_cache"] = time.perf_counter() - started

        started = time.perf_counter()
        warm_b50 = scan_build_cached(NT50, cache_dir=tmp_path)
        warm_b51 = scan_build_cached(NT51, cache_dir=tmp_path)
        timings["second_through_cache"] = time.perf_counter() - started

        clear_scan_cache()  # fresh process analogue: disk tier only
        started = time.perf_counter()
        disk50 = scan_build_cached(NT50, cache_dir=tmp_path)
        timings["disk_reload"] = time.perf_counter() - started

        faultloads = (cold50, warm_a50, warm_b50, disk50,
                      cold51, warm_a51, warm_b51)
        return timings, faultloads

    timings, faultloads = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    cold50, warm_a50, warm_b50, disk50 = faultloads[:4]
    cold51, warm_a51, warm_b51 = faultloads[4:]
    for other in (warm_a50, warm_b50, disk50):
        assert [l.fault_id for l in other] == [
            l.fault_id for l in cold50
        ]
    assert [l.fault_id for l in warm_b51] == [
        l.fault_id for l in cold51
    ]
    speedup = timings["cold"] / max(timings["second_through_cache"], 1e-9)
    print()
    print(f"scan: cold={timings['cold'] * 1000:.1f}ms  "
          f"cached={timings['second_through_cache'] * 1000:.3f}ms  "
          f"disk reload={timings['disk_reload'] * 1000:.1f}ms  "
          f"speedup={speedup:.0f}x")
    assert speedup >= 10.0, (
        f"cached rescan only {speedup:.1f}x faster than cold"
    )
