"""Bench: the operator-spec DSL pays its way.

Two claims about the declarative operator pipeline (DESIGN.md §16):

* **Compilation is off the hot path** — validating and compiling the
  whole re-expression corpus (eight specs) costs less than a single
  whole-build reference scan, so a campaign that installs specs at
  start-up pays a one-time fee that is invisible next to the scan it
  feeds (and the scan itself is cached; the compile memo keys on the
  spec digest).
* **Compiled operators scan at class speed** — a whole scan (image
  construction plus the single-pass site collection, the exact shape of
  ``scan_build``) over every FIT function of both builds with the eight
  DSL re-expressions substituted for their class twins keeps >= 95% of
  the built-in throughput (< 5% scan slowdown).  The site sets are
  asserted identical while we are at it; byte-level equivalence is
  tier-1's job.

Results are written to ``BENCH_dsl.json`` at the repo root.  Set
``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job does) to shrink the
workloads and relax the thresholds — smoke mode checks the machinery,
not the numbers.
"""

import gc
import json
import os
import sys
import time
from pathlib import Path

from repro.gswfit.astutils import FunctionImage
from repro.gswfit.dsl import OperatorSpec, compile_spec
from repro.gswfit.dsl.builtin_specs import builtin_spec, builtin_spec_names
from repro.gswfit.operators import (
    collect_sites,
    operator_for,
    operator_library,
)
from repro.ossim.builds import NT50, NT51

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
RELATIVE_THROUGHPUT_FLOOR = 0.80 if SMOKE else 0.95
COMPILE_ROUNDS = 3 if SMOKE else 10
SCAN_ROUNDS = 2 if SMOKE else 7

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dsl.json"
RESULTS = {}


def _fit_functions(build):
    for _display_name, module in build.modules:
        names = list(module.__exports__)
        names.extend(getattr(module, "__internal__", []))
        for name in names:
            yield module, getattr(module, name)


def _fresh_images():
    # Fresh images per measurement keep the per-image lazy caches cold;
    # image construction is identical for both operator sets.
    return [
        FunctionImage(function, module_name=module.__name__)
        for build in (NT50, NT51)
        for module, function in _fit_functions(build)
    ]


# ----------------------------------------------------------------------
# Spec compilation: a start-up fee, not a hot path
# ----------------------------------------------------------------------
def test_spec_compile_overhead(benchmark):
    corpus = [builtin_spec(name) for name in builtin_spec_names()]

    def regenerate():
        started = time.perf_counter()
        for _ in range(COMPILE_ROUNDS):
            for raw in corpus:
                compile_spec(OperatorSpec.from_dict(raw))
        compile_all = (time.perf_counter() - started) / COMPILE_ROUNDS
        operators = list(operator_library().values())
        images = _fresh_images()
        started = time.perf_counter()
        for image in images:
            collect_sites(image, operators)
        scan = time.perf_counter() - started
        return compile_all, scan

    compile_all, scan = benchmark.pedantic(regenerate, rounds=1,
                                           iterations=1)
    per_spec = compile_all / len(corpus)
    scans_per_compile = scan / max(compile_all, 1e-9)
    RESULTS["spec_compile"] = {
        "specs": len(corpus),
        "compile_ms_per_spec": round(per_spec * 1e3, 4),
        "corpus_compile_ms": round(compile_all * 1e3, 3),
        "scans_per_compile": round(scans_per_compile, 1),
    }
    print()
    print(f"compile: {per_spec * 1e3:.3f}ms/spec  "
          f"corpus={compile_all * 1e3:.2f}ms  "
          f"= 1/{scans_per_compile:.0f} of a build scan")
    assert compile_all < scan, (
        f"compiling {len(corpus)} specs ({compile_all * 1e3:.1f}ms) "
        f"costs more than a whole-build scan ({scan * 1e3:.1f}ms)"
    )


# ----------------------------------------------------------------------
# Scan throughput: DSL re-expressions vs their class twins
# ----------------------------------------------------------------------
def test_dsl_scan_relative_throughput(benchmark):
    builtin_ops = list(operator_library().values())
    replaced = {
        operator_for(name).fault_type: compile_spec(builtin_spec(name))
        for name in builtin_spec_names()
    }
    dsl_ops = [
        replaced.get(operator.fault_type, operator)
        for operator in builtin_ops
    ]

    def one_scan(operators):
        # The scan_build shape: a fresh image per function, then the
        # shared single pass.  Timing the whole thing measures the
        # slowdown a campaign actually sees on a cold (uncached) scan.
        # GC is settled before and paused during the timed region so
        # one side's garbage is never collected on the other's clock.
        gc.collect()
        gc.disable()
        sites = 0
        started = time.perf_counter()
        for image in _fresh_images():
            buckets = collect_sites(image, operators)
            sites += sum(map(len, buckets.values()))
        elapsed = time.perf_counter() - started
        gc.enable()
        return elapsed, sites

    def regenerate():
        # Interleaved rounds; each round's halves run back to back
        # under the same ambient load, so the best *paired* ratio is
        # the noise-robust estimate of relative throughput.
        builtin_time = dsl_time = float("inf")
        best_ratio = 0.0
        sites_builtin = sites_dsl = 0
        for _ in range(SCAN_ROUNDS):
            round_builtin, sites_builtin = one_scan(builtin_ops)
            round_dsl, sites_dsl = one_scan(dsl_ops)
            builtin_time = min(builtin_time, round_builtin)
            dsl_time = min(dsl_time, round_dsl)
            best_ratio = max(best_ratio, round_builtin / round_dsl)
        return builtin_time, dsl_time, best_ratio, (
            sites_builtin, sites_dsl
        )

    builtin_time, dsl_time, relative, (sites_builtin, sites_dsl) = (
        benchmark.pedantic(regenerate, rounds=1, iterations=1)
    )
    assert sites_builtin == sites_dsl  # same faultload, both ways
    RESULTS["dsl_scan"] = {
        "operators": len(builtin_ops),
        "dsl_operators": len(replaced),
        "builtin_scan_ms": round(builtin_time * 1e3, 2),
        "dsl_scan_ms": round(dsl_time * 1e3, 2),
        "relative_throughput": round(relative, 3),
    }
    print()
    print(f"scan: builtin={builtin_time * 1e3:.1f}ms  "
          f"dsl={dsl_time * 1e3:.1f}ms  "
          f"relative-throughput={relative:.3f}")
    assert relative >= RELATIVE_THROUGHPUT_FLOOR, (
        f"DSL scan keeps only {relative:.0%} of built-in throughput "
        f"(floor {RELATIVE_THROUGHPUT_FLOOR:.0%})"
    )


# ----------------------------------------------------------------------
# Emit the checked-in record (runs last in this file)
# ----------------------------------------------------------------------
def test_write_bench_json():
    assert RESULTS, "run the DSL benches before the JSON writer"
    payload = {
        "bench": "dsl",
        "python": sys.version.split()[0],
        "smoke": SMOKE,
        **RESULTS,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
