"""Integration tests for the experiment harness (smoke-scale)."""

import dataclasses

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment, profile_servers
from repro.harness.machine import ServerMachine
from repro.harness.metrics import DependabilityMetrics
from repro.harness.results import average_iterations


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def experiment(config):
    return WebServerExperiment(config)


@pytest.fixture(scope="module")
def baseline(experiment):
    return experiment.run_baseline()


@pytest.fixture(scope="module")
def injection(experiment):
    return experiment.run_injection(iteration=1)


def test_machine_boots_with_full_environment(config):
    machine = ServerMachine(config)
    assert machine.boot()
    vfs = machine.kernel.vfs
    assert vfs.lookup("/etc/apache.conf") is not None
    assert vfs.lookup("/logs") is not None
    assert vfs.count_files() > config.fileset_directories * 36


def test_environment_has_only_active_server_files(config):
    # Only the deployed server's /etc files exist: dead config files
    # for servers that never run would bloat every machine snapshot
    # and widen the VFS audit surface for nothing.
    machine = ServerMachine(config)
    assert machine.boot()
    vfs = machine.kernel.vfs
    assert vfs.lookup("/etc/abyss.conf") is None
    assert vfs.lookup("/etc/abyss.mime") is None

    abyss_config = dataclasses.replace(config, server_name="abyss")
    abyss_machine = ServerMachine(abyss_config)
    assert abyss_machine.boot()
    abyss_vfs = abyss_machine.kernel.vfs
    # Abyss reads its mime map with open-always semantics, so it must
    # be materialized (with a realistic size) before startup.
    assert abyss_vfs.lookup("/etc/abyss.conf") is not None
    assert abyss_vfs.lookup("/etc/abyss.mime") is not None
    assert abyss_vfs.lookup("/etc/apache.conf") is None


def test_baseline_is_clean(baseline):
    assert baseline.er_percent == 0.0
    assert baseline.total_ops > 100
    assert baseline.spc > 0
    assert 0.1 < baseline.rtm_ms / 1000 < 1.0


def test_profile_mode_close_to_baseline(experiment, baseline):
    profile = experiment.run_profile_mode()
    assert profile.er_percent == 0.0
    # Intrusiveness: small THR/RTM degradation (paper: < 2%).
    assert profile.thr == pytest.approx(baseline.thr, rel=0.06)
    assert profile.rtm_ms == pytest.approx(baseline.rtm_ms, rel=0.06)


def test_injection_degrades_service(experiment, baseline, injection):
    metrics = injection.metrics
    assert metrics.er_percent > baseline.er_percent
    assert injection.faults_injected == len(
        experiment.prepared_faultload()
    )
    assert injection.admf >= 0


def test_injection_repeatable_with_same_seed(config, injection):
    again = WebServerExperiment(config).run_injection(iteration=1)
    assert again.metrics.total_ops == injection.metrics.total_ops
    assert again.mis == injection.mis
    assert again.kns == injection.kns
    assert again.metrics.er_percent == pytest.approx(
        injection.metrics.er_percent
    )


def test_iterations_vary_but_resemble(experiment, injection):
    other = experiment.run_injection(iteration=2)
    # Different draws...
    assert other.metrics.total_ops != injection.metrics.total_ops
    # ...same magnitude of behavior.
    assert other.metrics.thr == pytest.approx(
        injection.metrics.thr, rel=0.35
    )


def test_fit_code_pristine_after_injection_run(experiment, injection):
    """No mutation residue after a full pass (repeatability)."""
    import inspect

    from repro.gswfit.mutator import resolve_function

    for location in experiment.prepared_faultload():
        function = resolve_function(location)
        # Original functions come from the module source file; mutants
        # from synthetic <gswfit:...> filenames.
        assert function.__code__.co_filename.endswith(".py")


def test_average_iterations_math():
    class FakeIteration:
        def __init__(self, spc):
            self.spc = spc

        def as_row(self):
            return {"SPC": self.spc, "THR": 0, "RTM": 0, "ER%": 0,
                    "MIS": 1, "KCP": 0, "KNS": 2}

    average = average_iterations([FakeIteration(10), FakeIteration(20)])
    assert average["SPC"] == 15
    assert average["KNS"] == 2
    assert average_iterations([]) == {}


def test_campaign_produces_complete_result(config):
    campaign_config = ExperimentConfig.smoke()
    campaign_config.fault_sample = 6
    campaign_config.rules = type(campaign_config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=2, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    result = WebServerExperiment(campaign_config).run_campaign()
    assert result.baseline is not None
    assert result.profile_mode is not None
    assert len(result.iterations) == 2
    average = result.average_row()
    assert set(average) == {"SPC", "THR", "RTM", "ER%", "MIS", "KCP",
                            "KNS", "RES", "ACT%"}
    metrics = DependabilityMetrics.from_results(result)
    assert metrics.spc_baseline == result.profile_mode.spc
    assert metrics.admf == pytest.approx(
        average["MIS"] + average["KNS"] + average["KCP"]
    )


def test_dependability_metrics_relative_views():
    from repro.harness.results import BenchmarkResult, InjectionIteration
    from repro.specweb.metrics import SpecWebMetrics

    def metrics(spc, thr, rtm):
        return SpecWebMetrics(
            spc=spc, cc_percent=0, thr=thr, rtm_ms=rtm, er_percent=5,
            total_ops=100, total_errors=5, measured_seconds=10,
        )

    result = BenchmarkResult("apache", "nt50", "W2k")
    result.baseline = metrics(30, 100, 350)
    result.add_iteration(InjectionIteration(
        iteration=1, metrics=metrics(10, 90, 380),
        mis=5, kns=3, kcp=1, faults_injected=10,
    ))
    dep = DependabilityMetrics.from_results(result)
    assert dep.spc_relative == pytest.approx(1 / 3)
    assert dep.thr_relative == pytest.approx(0.9)
    assert dep.rtm_relative == pytest.approx(380 / 350)
    assert dep.admf == 9
    data = dep.as_dict()
    assert data["ADMf"] == 9


def test_prepared_faultload_is_idempotent(config):
    """Regression: run_campaign prepared the faultload, then
    run_profile_mode/run_injection prepared it *again*, re-applying
    sample()+interleave_types() and mangling the name
    (``...-sampledN-interleaved-sampledM-interleaved``)."""
    experiment = WebServerExperiment(config)
    once = experiment.prepared_faultload()
    assert once.prepared
    twice = experiment.prepared_faultload(once)
    assert twice is once
    assert [l.fault_id for l in twice] == [l.fault_id for l in once]
    assert twice.name.count("-sampled") == 1
    assert twice.name.count("-interleaved") == 1


def test_campaign_and_single_run_see_same_slot_order(config):
    """The slot order must not depend on who prepared the faultload."""
    experiment = WebServerExperiment(config)
    campaign_prepared = experiment.prepared_faultload()
    # A single run handed the campaign's faultload must inject the very
    # same slots in the very same order.
    single_run_view = WebServerExperiment(config).prepared_faultload(
        campaign_prepared
    )
    fresh = WebServerExperiment(config).prepared_faultload()
    assert [l.fault_id for l in single_run_view] == [
        l.fault_id for l in campaign_prepared
    ] == [l.fault_id for l in fresh]


def test_measured_windows_do_not_drift(config):
    """Regression: accumulating ``t += slot_seconds`` in floating point
    gained/lost a window on long baselines (0.1 repeats in binary)."""
    experiment = WebServerExperiment(config)
    windows = experiment._measured_windows(1000.0, 100.0, 0.1)
    assert len(windows) == 1000
    start, end = windows[-1]
    assert start == 1000.0 + 999 * 0.1
    assert end == 1000.0 + 1000 * 0.1
    # Degenerate case: duration shorter than a slot -> one full window.
    assert experiment._measured_windows(0.0, 3.0, 5.0) == [(0.0, 3.0)]


def test_run_slots_quiesces_machine_even_on_error(config, monkeypatch):
    """Regression: an exception mid-run left the watchdog polling (and
    the client running) — run_slots must always quiesce in finally."""
    import repro.harness.experiment as experiment_module
    from repro.harness.watchdog import Watchdog

    created = []

    class RecordingWatchdog(Watchdog):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created.append(self)

    monkeypatch.setattr(experiment_module, "Watchdog", RecordingWatchdog)
    experiment = WebServerExperiment(config)
    faultload = experiment.prepared_faultload()

    class Boom(RuntimeError):
        pass

    class ExplodingFaultload:
        prepared = True

        def __iter__(self):
            yield faultload[0]
            raise Boom()

    with pytest.raises(Boom):
        experiment.run_slots(ExplodingFaultload(), iteration=1)
    assert len(created) == 1
    watchdog = created[0]
    assert not watchdog._running
    assert watchdog._poll_event is None


def test_profile_servers_returns_tracer_per_server(config):
    tracers = profile_servers(config, ["apache", "abyss"], seconds=5.0)
    assert set(tracers) == {"apache", "abyss"}
    for tracer in tracers.values():
        assert tracer.total_calls > 100


def test_config_presets_and_helpers():
    paper = ExperimentConfig.paper_scale()
    assert paper.rules.warmup_seconds == 1200.0
    assert paper.fault_sample is None
    scaled = ExperimentConfig.scaled(fault_sample=10)
    assert scaled.fault_sample == 10
    other = scaled.with_target(server_name="abyss", os_codename="nt51")
    assert other.server_name == "abyss"
    assert scaled.server_name == "apache"  # original untouched
    assert scaled.iteration_seed(1) != scaled.iteration_seed(2)
