"""DSL operators through the campaign stack (tier-1).

The in-tree version of the ``dsl-gate`` CI job: a campaign run with the
built-in operator classes and the same campaign run with the DSL
re-expressions installed must land on the same ``metrics_digest`` —
identical fault ids, identical mutants, identical slot timeline.  Plus
the plumbing around it: ``operator_specs`` in the campaign key, in
service specs, and the CLI's rc-2 validation path.
"""

import json

import pytest

from repro.faults.types import reset_dynamic_fault_types
from repro.gswfit.dsl.builtin_specs import (
    builtin_spec,
    builtin_spec_names,
    write_builtin_specs,
)
from repro.gswfit.operators import reset_dynamic_operators
from repro.harness.campaign import ParallelCampaign, campaign_key
from tests.harness.test_supervised_campaign import tiny_config


@pytest.fixture
def dsl_registry():
    yield
    reset_dynamic_operators()
    reset_dynamic_fault_types()
    from repro.gswfit.cache import clear_mutant_cache, clear_scan_cache

    clear_scan_cache()
    clear_mutant_cache()


def _all_replacement_specs():
    return tuple(
        builtin_spec(name) for name in builtin_spec_names()
    )


def _run(tmp_path, name, config):
    campaign = ParallelCampaign(
        config, workers=1,
        journal_path=tmp_path / name / "journal.jsonl",
    )
    campaign.run(include_baseline=False, include_profile_mode=False)
    return campaign


def test_digest_parity_builtin_vs_dsl(tmp_path, dsl_registry):
    config = tiny_config()
    reference = _run(tmp_path, "builtin", config)

    dsl_config = tiny_config()
    dsl_config.operator_specs = _all_replacement_specs()
    dsl = _run(tmp_path, "dsl", dsl_config)

    assert (dsl.manifest.metrics_digest
            == reference.manifest.metrics_digest)
    # The campaign identity differs (the spec digests are part of it),
    # so the two runs cannot share a journal by accident...
    assert dsl.manifest.campaign_key != reference.manifest.campaign_key
    # ...and the library fingerprint differs for the same reason.
    assert (dsl.manifest.build_fingerprint
            != reference.manifest.build_fingerprint)


def test_campaign_key_sensitive_to_operator_specs(dsl_registry):
    from repro.harness.experiment import WebServerExperiment

    config = tiny_config()
    faultload = WebServerExperiment(config).prepared_faultload()
    base_key = campaign_key(config, faultload)
    config.operator_specs = (builtin_spec("MVI"),)
    assert campaign_key(config, faultload) != base_key


def test_service_spec_accepts_operator_specs_list(tmp_path):
    from repro.harness.service.spec import namespace_from_spec

    paths = write_builtin_specs(tmp_path / "specs")
    args = namespace_from_spec({
        "server": "apache",
        "faults": 8,
        "operator_specs": [str(path) for path in paths],
    })
    assert args.operator_specs == [str(path) for path in paths]


def test_service_spec_rejects_bad_spec_file(tmp_path):
    from repro.harness.service.spec import SpecError, namespace_from_spec

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "fault_type": "MVI",
        "replaces": True,
        "pattern": {"node_types": ["Assgn"]},
        "mutation": {"kind": "delete-node"},
    }))
    with pytest.raises(SpecError, match=r"\$\.pattern\.node_types\[0\]"):
        namespace_from_spec({
            "server": "apache",
            "operator_specs": [str(bad)],
        })


def test_service_spec_rejects_non_scalar_list_items():
    from repro.harness.service.spec import SpecError, namespace_from_spec

    with pytest.raises(SpecError, match="must be scalars"):
        namespace_from_spec({
            "server": "apache",
            "operator_specs": [{"nested": "object"}],
        })


def test_cli_campaign_rejects_malformed_spec_rc2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "fault_type": "MVI",
        "replaces": True,
        "pattern": {"node_types": ["Assgn"]},
        "mutation": {"kind": "delete-node"},
    }))
    code = main([
        "campaign", "--faults", "8", "--workers", "1",
        "--no-baseline", "--no-profile",
        "--operator-spec", str(bad),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "$.pattern.node_types[0]" in err
    assert str(bad) in err


def test_cli_campaign_rejects_missing_spec_file_rc2(capsys):
    from repro.cli import main

    code = main([
        "campaign", "--operator-spec", "/nonexistent/spec.json",
    ])
    assert code == 2
    assert "--operator-spec" in capsys.readouterr().err


def test_cli_campaign_rejects_duplicate_fault_type_rc2(
        tmp_path, capsys):
    from repro.cli import main

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(builtin_spec("MVI")))
    b.write_text(json.dumps(builtin_spec("MVI")))
    code = main([
        "campaign",
        "--operator-spec", str(a), "--operator-spec", str(b),
    ])
    assert code == 2
    assert "duplicate spec" in capsys.readouterr().err


def test_cli_scan_with_operator_spec(tmp_path, capsys, dsl_registry):
    from repro.cli import main

    (tmp_path / "mvi.json").write_text(
        json.dumps(builtin_spec("MVI"))
    )
    code = main([
        "scan", "--os", "nt50",
        "--operator-spec", str(tmp_path / "mvi.json"),
    ])
    assert code == 0
    assert "fault locations" in capsys.readouterr().out
